"""Figure 6: BTIO Class B — lock contention and cold-cache RMW."""

from conftest import run_experiment


def test_fig6a_initial_write(benchmark, repro_scale):
    table = run_experiment(benchmark, "fig6a", repro_scale)
    for procs in (4, 9, 16, 25):
        raid1 = table.cell(procs, "raid1")
        raid5 = table.cell(procs, "raid5")
        hybrid = table.cell(procs, "hybrid")
        # RAID1's doubled bytes make it the worst scheme throughout.
        assert raid1 < 0.75 * raid5
        assert raid1 < 0.75 * hybrid
    # RAID5 and Hybrid are comparable at low process counts...
    assert table.cell(4, "raid5") > 0.85 * table.cell(4, "hybrid")
    # ...but RAID5 falls behind as unaligned writers multiply (the paper
    # attributes the 25-process drop to parity-lock synchronization).
    assert table.cell(25, "raid5") < table.cell(25, "hybrid")
    assert table.cell(25, "raid5") < 0.92 * table.cell(4, "raid5")


def test_fig6b_overwrite(benchmark, repro_scale):
    table = run_experiment(benchmark, "fig6b", repro_scale)
    # Cold caches turn every partial-stripe write into disk reads:
    # RAID5 collapses as process count (and partial-stripe count) grows,
    # ending below even RAID1; Hybrid never read-modifies-writes.
    assert table.cell(25, "raid5") < 0.55 * table.cell(4, "raid5")
    assert table.cell(25, "raid5") < 1.1 * table.cell(25, "raid1")
    for procs in (16, 25):
        assert table.cell(procs, "hybrid") > 1.5 * table.cell(procs, "raid5")
    # The other schemes only lose a little (partial *block* effects).
    assert table.cell(25, "hybrid") > 0.8 * table.cell(4, "hybrid")
