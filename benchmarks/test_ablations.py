"""Ablations: write buffering (§5.2), parity kernel (Swift), stripe unit."""

from conftest import run_experiment


def test_write_buffering_ablation(benchmark, repro_scale):
    table = run_experiment(benchmark, "ablation-writebuf", repro_scale)
    buffered = table.cell("buffered", "bandwidth_mbps")
    unbuffered = table.cell("unbuffered", "bandwidth_mbps")
    # The Section 5.2 fix: buffering recovers bandwidth by eliminating
    # most partial-block read-before-write operations.
    assert buffered > 1.15 * unbuffered
    assert table.cell("unbuffered", "partial_block_reads") > \
        2 * table.cell("buffered", "partial_block_reads")


def test_parity_kernel_ablation(benchmark, repro_scale):
    table = run_experiment(benchmark, "ablation-parity", repro_scale)
    word = table.cell("word-at-a-time", "bandwidth_mbps")
    byte = table.cell("byte-at-a-time", "bandwidth_mbps")
    # The Swift/RAID lesson the paper repeats: byte-at-a-time parity
    # computation costs a large fraction of delivered write bandwidth.
    assert byte < 0.75 * word


def test_collective_io_ablation(benchmark, repro_scale):
    table = run_experiment(benchmark, "ablation-collective", repro_scale)
    for scheme in ("raid5", "hybrid"):
        coll = [r for r in table.rows if r[0] == "collective"
                and r[1] == scheme][0][2]
        indep = [r for r in table.rows if r[0] == "independent"
                 and r[1] == scheme][0][2]
        # Two-phase I/O is worth a large factor for tiny strided records.
        assert coll > 3 * indep


def test_stripe_unit_ablation(benchmark, repro_scale):
    table = run_experiment(benchmark, "ablation-stripe-unit", repro_scale)
    ratios = dict(zip(table.column("stripe_unit"),
                      table.column("hybrid_vs_raid1")))
    # Small stripe units keep Hybrid below RAID1 for FLASH; large ones
    # push it above (Table 2's 16K vs 64K contrast).
    assert ratios[8] < 1.0
    assert ratios[64] > 1.05


def test_recovery_extension(benchmark, repro_scale):
    table = run_experiment(benchmark, "ext-recovery", repro_scale or 0.25)
    for row in table.rows:
        (_mb, raid1_t, raid5_t, hybrid_t, degraded, normal) = row
        # Parity rebuild reads every survivor: at least as costly as the
        # mirror copy, and rebuild time grows with data volume.
        assert raid5_t >= 0.95 * raid1_t
        assert hybrid_t >= 0.95 * raid5_t
        # Degraded reads pay the reconstruction tax but stay available.
        assert normal < degraded < 20 * normal
    times = table.column("hybrid_rebuild_s")
    assert times == sorted(times)


def test_scrub_interference_extension(benchmark, repro_scale):
    table = run_experiment(benchmark, "ext-scrub", repro_scale or 0.25)
    for row in table.rows:
        scheme, alone, with_scrub, slowdown, scrub_time = row
        # Scrubbing costs something but never cripples the foreground.
        assert 1.0 <= slowdown < 2.0
        assert scrub_time > 0
        del scheme, alone, with_scrub
