"""Performance of the reproduction itself (regression guard).

Unlike the figure benchmarks (one pedantic round each, asserting paper
shapes), these measure the hot paths of the simulator with real repeated
rounds: kernel event throughput, parity kernels, extent-map operations,
and end-to-end simulated-bandwidth per wall-clock second.
"""

import numpy as np

from repro import CSARConfig, Payload, System
from repro.sim import Environment, Resource
from repro.units import KiB, MiB
from repro.util.intervals import ExtentMap
from repro.util.parity import xor_bytes


def test_engine_event_throughput(benchmark):
    def run_events():
        env = Environment()

        def ticker():
            for _ in range(200):
                yield env.timeout(1.0)

        for _ in range(50):
            env.process(ticker())
        env.run()
        return env.now

    assert benchmark(run_events) == 200.0


def test_resource_contention_throughput(benchmark):
    def run_contention():
        env = Environment()
        res = Resource(env, capacity=2)

        def worker():
            for _ in range(50):
                with res.request() as req:
                    yield req
                    yield env.timeout(0.1)

        for _ in range(20):
            env.process(worker())
        env.run()
        return res.total_waits

    assert benchmark(run_contention) > 0


def test_parity_kernel_throughput(benchmark):
    blocks = [np.random.default_rng(i).integers(0, 256, 1 * MiB,
                                                dtype=np.uint8)
              for i in range(5)]

    result = benchmark(xor_bytes, blocks)
    assert len(result) == 1 * MiB


def test_extent_map_churn(benchmark):
    def churn():
        m = ExtentMap()
        for i in range(2000):
            base = (i * 7919) % 100_000
            m.add(base, base + 512)
            if i % 3 == 0:
                m.remove(base + 100, base + 200)
        return m.total()

    assert benchmark(churn) > 0


def test_end_to_end_simulated_write_throughput(benchmark):
    """Simulated bytes pushed through the full CSAR stack per wall call."""

    def run_stream():
        system = System(CSARConfig(scheme="hybrid", num_servers=6,
                                   num_clients=1, stripe_unit=64 * KiB,
                                   content_mode=False))
        client = system.client()
        span = system.layout.group_span
        chunk = 12 * span

        def work():
            yield from client.create("f")
            for i in range(8):
                yield from client.write("f", i * chunk,
                                        Payload.virtual(chunk))

        elapsed, _ = system.timed(work())
        return 8 * chunk / elapsed

    assert benchmark(run_stream) > 0
