"""Performance of the reproduction itself (regression guard).

Unlike the figure benchmarks (one pedantic round each, asserting paper
shapes), these measure the hot paths of the simulator with real repeated
rounds: kernel event throughput, parity kernels, extent-map operations,
and end-to-end simulated-bandwidth per wall-clock second.

The scenario bodies live in :mod:`repro.perf.bench` so that
``csar-repro bench`` (the perf-trajectory harness behind
``BENCH_simulator.json``) and this pytest-benchmark suite measure
exactly the same work.
"""

from repro.perf import bench
from repro.units import MiB


def test_engine_event_throughput(benchmark):
    assert benchmark(bench.engine_events_once) == 200.0


def test_resource_contention_throughput(benchmark):
    assert benchmark(bench.resource_contention_once) > 0


def test_parity_kernel_throughput(benchmark):
    assert benchmark(bench.parity_kernel_once) == 1 * MiB


def test_extent_map_churn(benchmark):
    assert benchmark(bench.extent_map_churn_once) > 0


def test_end_to_end_simulated_write_throughput(benchmark):
    """Simulated bytes pushed through the full CSAR stack per wall call."""
    assert benchmark(bench.end_to_end_write_once) > 0


def test_content_mode_write_throughput(benchmark):
    """Real-bytes hybrid write path: the zero-copy scatter-gather guard."""
    assert benchmark(bench.content_mode_write_once) > 0


def test_content_mode_degraded_read(benchmark):
    """Whole-file reconstruction read with one server failed."""
    assert benchmark(bench.content_mode_degraded_read_once) > 0


def test_payload_sg_churn(benchmark):
    """Payload slice/concat/assemble/xor_at/overlay algebra."""
    assert benchmark(bench.payload_sg_churn_once) > 0
