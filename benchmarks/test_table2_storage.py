"""Table 2: storage requirement of the redundancy schemes."""

import pytest

from conftest import run_experiment


def test_table2_storage(benchmark, repro_scale):
    table = run_experiment(benchmark, "table2", repro_scale)
    for row in table.rows:
        label, raid0, raid1, raid5, hybrid = row
        # Invariants that hold for every workload at 6 I/O servers:
        assert raid1 == pytest.approx(2.0 * raid0, rel=0.01)
        assert raid5 == pytest.approx(1.2 * raid0, rel=0.03)
        # Hybrid always costs at least RAID5 and is bounded by RAID1 plus
        # overflow padding/fragmentation.
        assert raid5 <= hybrid * 1.001
        assert hybrid < 2.6 * raid0
        del label

    # Workload-dependent highlights the paper calls out:
    # BTIO Class A at 4 processes is exactly stripe-aligned (per-rank
    # share = 8 spans), so Hybrid degenerates to RAID5 — the paper's
    # 503 = 503 MB row.
    assert table.cell("BTIO Class A", "hybrid") == pytest.approx(
        table.cell("BTIO Class A", "raid5"), rel=1e-6)
    # Hartree-Fock (16 KB sequential writes, all overflow) lands at
    # exactly RAID1's footprint — the paper's 299 vs 298 MB.
    assert table.cell("Hartree-Fock", "hybrid") == pytest.approx(
        table.cell("Hartree-Fock", "raid1"), rel=0.01)
    # FLASH at a 64 KB stripe unit costs *more* than RAID1 (overflow slot
    # churn from metadata rewrites)...
    assert table.cell("FLASH 4p 64K", "hybrid") > \
        table.cell("FLASH 4p 64K", "raid1")
    # ...and less at a 16 KB unit (more full stripes, smaller slots).
    assert table.cell("FLASH 4p 16K", "hybrid") < \
        table.cell("FLASH 4p 64K", "hybrid")
    # Large-write workloads sit near RAID5, far from RAID1.
    for label in ("BTIO Class B", "BTIO Class C", "CACTUS/BenchIO"):
        assert table.cell(label, "hybrid") < 1.45 * table.cell(label, "raid0")
