"""Figure 8: application output time normalized to RAID0."""

import pytest

from conftest import run_experiment


def test_fig8_applications(benchmark, repro_scale):
    table = run_experiment(benchmark, "fig8", repro_scale)
    for row in table.rows:
        app, raid0, raid1, raid5, hybrid = row
        assert raid0 == pytest.approx(1.0)
        # The paper's conclusion: Hybrid performs comparably to or better
        # than the best of RAID1 and RAID5 for every application.
        assert hybrid <= 1.15 * min(raid1, raid5)
    # Hartree-Fock: the kernel-module overhead levels the schemes.
    hf = {h: table.cell("HartreeFock", h)
          for h in ("raid1", "raid5", "hybrid")}
    assert max(hf.values()) < 1.3
    assert hf["hybrid"] == pytest.approx(hf["raid1"], rel=0.05)
    # Large-write apps: parity schemes beat mirroring clearly.
    for app in ("Cactus", "BTIO-B"):
        assert table.cell(app, "raid5") < 0.8 * table.cell(app, "raid1")
        assert table.cell(app, "hybrid") < 0.8 * table.cell(app, "raid1")
    # Small-write app: RAID5 is the worst scheme.
    flash = {h: table.cell("FLASH", h)
             for h in ("raid1", "raid5", "hybrid")}
    assert flash["raid5"] == max(flash.values())
