"""Figure 4: full-stripe and small-write bandwidth vs I/O server count."""

import pytest

from conftest import run_experiment


def test_fig4a_full_stripe_writes(benchmark, repro_scale):
    table = run_experiment(benchmark, "fig4a", repro_scale)

    raid0 = {n: table.cell(n, "raid0") for n in (1, 2, 4, 6, 7)}
    raid1 = {n: table.cell(n, "raid1") for n in (1, 2, 4, 6, 7)}
    raid5 = {n: table.cell(n, "raid5") for n in (2, 4, 6, 7)}
    npc = {n: table.cell(n, "raid5_npc") for n in (4, 6, 7)}
    hybrid = {n: table.cell(n, "hybrid") for n in (4, 6, 7)}

    # Striping scales with server count until the client link saturates.
    assert raid0[6] > 3 * raid0[1]
    # RAID1 writes 2x the bytes: roughly half of RAID0 throughout, and the
    # worst scheme at every width.
    for n in (2, 4, 6):
        assert raid1[n] == pytest.approx(raid0[n] / 2, rel=0.15)
        if n >= 4:
            assert raid1[n] < raid5[n] < raid0[n]
    # Hybrid behaves exactly like RAID5 on this all-full-stripe workload.
    for n in (4, 6, 7):
        assert hybrid[n] == pytest.approx(raid5[n], rel=0.02)
    # Parity computation costs a few percent (paper: ~8%).
    for n in (6, 7):
        gain = (npc[n] - raid5[n]) / raid5[n]
        assert 0.02 < gain < 0.15
    # The paper's headline: RAID5/CSAR delivers ~73% of PVFS at 7 iods.
    assert 0.65 < raid5[7] / raid0[7] < 0.95


def test_fig4b_small_writes(benchmark, repro_scale):
    table = run_experiment(benchmark, "fig4b", repro_scale)
    for n in (3, 4, 5, 6, 7):
        raid1 = table.cell(n, "raid1")
        raid5 = table.cell(n, "raid5")
        hybrid = table.cell(n, "hybrid")
        # RAID1 and Hybrid are indistinguishable: two block writes, no
        # reads, no locks.
        assert hybrid == pytest.approx(raid1, rel=0.02)
        # RAID5 pays the read-modify-write round trip even with the old
        # data and parity warm in the server caches.
        assert raid5 < 0.7 * raid1
