"""Figure 7: BTIO Class C — RAID1's 2x bytes overflow the server caches."""

from conftest import run_experiment


def test_fig7a_initial_write(benchmark, repro_scale):
    table = run_experiment(benchmark, "fig7a", repro_scale)
    for procs in (4, 9, 16, 25):
        raid1 = table.cell(procs, "raid1")
        raid5 = table.cell(procs, "raid5")
        hybrid = table.cell(procs, "hybrid")
        # Twice 6.6 GB does not fit the page caches: RAID1 throttles to
        # disk speed, far below the parity schemes.
        assert raid1 < 0.65 * raid5
        assert raid1 < 0.85 * hybrid
        # Hybrid stays in RAID5's neighbourhood.
        assert hybrid > 0.55 * raid5


def test_fig7b_overwrite(benchmark, repro_scale):
    table = run_experiment(benchmark, "fig7b", repro_scale)
    for procs in (16, 25):
        raid1 = table.cell(procs, "raid1")
        raid5 = table.cell(procs, "raid5")
        hybrid = table.cell(procs, "hybrid")
        # The paper: Hybrid ≈ 230% of both other schemes.  Our model
        # reproduces the ordering (Hybrid best, both others degraded) at a
        # smaller margin — Class C is drain-bound end to end here, which
        # compresses the gap (see EXPERIMENTS.md).
        assert hybrid >= 0.98 * raid5
        assert hybrid > 1.5 * raid1
        assert raid5 < 0.75 * table.cell(procs, "raid0")
