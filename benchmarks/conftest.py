"""Shared plumbing for the figure/table benchmarks.

Every benchmark runs one experiment end to end (simulation included) via
``benchmark.pedantic(..., rounds=1)`` — the meaningful numbers are the
*simulated* bandwidths inside the returned table, which each test then
checks against the paper's qualitative claims; the pytest-benchmark
timing records how long the reproduction itself takes to run.

Scales are chosen so the full suite finishes in a few minutes; pass
``--repro-scale`` to override (1.0 = paper-size data volumes).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption("--repro-scale", type=float, default=None,
                     help="override the data-volume scale of every "
                          "figure/table benchmark (1.0 = paper size)")


@pytest.fixture
def repro_scale(request):
    return request.config.getoption("--repro-scale")


def run_experiment(benchmark, exp_id, scale):
    """Run one registered experiment under the benchmark fixture."""
    from repro.experiments import get_experiment

    exp = get_experiment(exp_id)
    effective = exp.default_scale if scale is None else scale
    table = benchmark.pedantic(exp.run, kwargs={"scale": effective},
                               rounds=1, iterations=1)
    print()
    print(table.format())
    return table
