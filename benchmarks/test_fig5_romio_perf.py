"""Figure 5: ROMIO perf — reads equal everywhere, writes favour parity."""

import pytest

from conftest import run_experiment


def test_fig5a_reads_identical_across_schemes(benchmark, repro_scale):
    table = run_experiment(benchmark, "fig5a", repro_scale)
    for row in table.rows:
        _clients, raid0, raid1, raid5, hybrid = row
        # Redundancy is never read: every scheme reads at RAID0 speed.
        for value in (raid1, raid5, hybrid):
            assert value == pytest.approx(raid0, rel=0.02)


def test_fig5b_large_writes_favour_parity_schemes(benchmark, repro_scale):
    table = run_experiment(benchmark, "fig5b", repro_scale)
    for row in table.rows:
        clients, raid0, raid1, raid5, hybrid = row
        # 4 MB writes: parity overhead (1/5) beats mirroring (1/1).
        assert raid5 > 1.2 * raid1
        assert hybrid > 1.2 * raid1
        assert raid0 > raid5
        del clients
