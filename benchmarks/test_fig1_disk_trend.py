"""Figure 1: time to fill a disk grows ~10x over fifteen years."""

from conftest import run_experiment


def test_fig1_disk_fill_trend(benchmark, repro_scale):
    table = run_experiment(benchmark, "fig1", repro_scale)
    minutes = table.column("fill_minutes")
    years = table.column("year")
    # Strictly growing fill time across eras.
    assert all(b > a for a, b in zip(minutes, minutes[1:]))
    # Roughly tenfold over the last fifteen years of the series.
    i1990 = years.index(1990)
    assert minutes[-1] / minutes[i1990] > 5.0
    # The underlying trend: capacity outgrew bandwidth.
    caps = table.column("capacity_gb")
    bws = table.column("bandwidth_mbps")
    assert caps[-1] / caps[0] > 100 * (bws[-1] / bws[0]) / 10
