"""Figure 3: parity-locking overhead under stripe sharing (~20%)."""

from conftest import run_experiment


def test_fig3_locking_overhead(benchmark, repro_scale):
    table = run_experiment(benchmark, "fig3", repro_scale)
    raid0 = table.cell("RAID0", "bandwidth_mbps")
    nolock = table.cell("R5 NO LOCK", "bandwidth_mbps")
    raid5 = table.cell("RAID5", "bandwidth_mbps")
    # RAID5's read-modify-write traffic makes the parity server a hot
    # spot: both RAID5 variants sit far below plain striping.
    assert raid0 > 2 * nolock
    # Locking costs on top of that — the paper measures about 20%.
    overhead = (nolock - raid5) / nolock
    assert 0.10 < overhead < 0.35
    # Only the locking configuration accumulates lock wait time.
    assert table.cell("RAID5", "lock_wait_s") > 0
    assert table.cell("R5 NO LOCK", "lock_wait_s") == 0
