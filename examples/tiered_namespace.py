#!/usr/bin/env python3
"""Per-file redundancy: one namespace, different guarantees per file.

An AutoRAID-flavoured extension of the paper's idea, one level up: the
*deployment* default is Hybrid, but each file can opt into a different
scheme at create time — RAID0 for regenerable scratch (PVFS's classic
role), RAID1 for latency-critical small-write files, Hybrid for
checkpoints.  Storage costs and failure behaviour follow the file.

Run:  python examples/tiered_namespace.py
"""

from repro import CSARConfig, DataLoss, Payload, System
from repro.units import KiB, MiB, fmt_bytes


def main() -> None:
    system = System(CSARConfig(scheme="hybrid", num_servers=6,
                               stripe_unit=64 * KiB, content_mode=True))
    client = system.client()
    size = 2 * MiB
    files = {
        "scratch.tmp": ("raid0", Payload.pattern(size, seed=1)),
        "journal.log": ("raid1", Payload.pattern(size, seed=2)),
        "checkpoint.dat": (None, Payload.pattern(size, seed=3)),  # hybrid
    }

    def populate():
        for name, (scheme, data) in files.items():
            yield from client.create(name, scheme=scheme)
            yield from client.write(name, 0, data)

    system.run(populate())

    print(f"{'file':<16} {'scheme':<8} {'stored':>10}  overhead")
    for name, (scheme, data) in files.items():
        report = system.storage_report(name)
        print(f"{name:<16} {scheme or 'hybrid':<8} "
              f"{fmt_bytes(report['total']):>10}  "
              f"{report['total'] / size:.2f}x")

    print("\nserver 2 fails:")
    system.fail_server(2)
    for name, (_scheme, data) in files.items():
        def read(name=name, data=data):
            out = yield from client.read(name, 0, data.length)
            return out

        try:
            out = system.run(read())
            status = "recovered byte-exact" if out == data else "MISMATCH"
        except DataLoss as err:
            status = f"lost ({err})"
        print(f"  {name:<16} {status}")


if __name__ == "__main__":
    main()
