#!/usr/bin/env python3
"""Run the paper's four applications under every redundancy scheme.

A miniature of Figure 8: FLASH I/O, Cactus BenchIO, Hartree-Fock argos
and BTIO Class B, reporting output time normalized to RAID0 (lower is
better).  Scaled to 10% data volume by default so it finishes in seconds.

Run:  python examples/checkpoint_applications.py [scale]
"""

import sys

from repro import CSARConfig, System
from repro.workloads import (
    btio_benchmark,
    cactus_benchio,
    flash_io_benchmark,
    hartree_fock_argos,
)

SCHEMES = ("raid0", "raid1", "raid5", "hybrid")


def build(scheme: str, clients: int, scale: float) -> System:
    return System(CSARConfig(scheme=scheme, num_servers=6,
                             num_clients=clients, content_mode=False,
                             scale=scale))


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    apps = {
        "FLASH I/O (4p)": (4, lambda s: flash_io_benchmark(
            s, nprocs=4, scale=scale, include_flush=False)),
        "Cactus BenchIO (8p)": (8, lambda s: cactus_benchio(
            s, scale=scale, include_flush=False)),
        "Hartree-Fock argos": (1, lambda s: hartree_fock_argos(
            s, scale=scale, include_flush=False)),
        "BTIO Class B (8p)": (8, lambda s: btio_benchmark(
            s, "B", scale=scale)),
    }
    print(f"{'application':<22}" + "".join(f"{s:>9}" for s in SCHEMES))
    for name, (clients, runner) in apps.items():
        times = {}
        for scheme in SCHEMES:
            system = build(scheme, clients, scale)
            times[scheme] = runner(system).elapsed
        base = times["raid0"]
        print(f"{name:<22}"
              + "".join(f"{times[s] / base:9.2f}" for s in SCHEMES))
    print("\n(output time normalized to RAID0; the paper's finding is that "
          "Hybrid\n matches or beats the best of RAID1/RAID5 on every "
          "application)")


if __name__ == "__main__":
    main()
