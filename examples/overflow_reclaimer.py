#!/usr/bin/env python3
"""The Section 6.7 background reclaimer: folding Hybrid overflow data
back into RAID5 form.

Writes a file with many small (partial-stripe) updates so the overflow
regions fill with mirrored and superseded versions, then runs the
reclaimer and shows storage converging to RAID5's footprint.

Run:  python examples/overflow_reclaimer.py
"""

from repro import CSARConfig, Payload, System
from repro.redundancy.reclaim import reclaim_file
from repro.redundancy.scrub import scrub
from repro.units import KiB, fmt_bytes


def report(tag: str, system: System) -> None:
    r = system.storage_report("ckpt")
    o = system.overflow_stats("ckpt")
    print(f"  {tag:<16} total={fmt_bytes(r['total'])} "
          f"(data={fmt_bytes(r['data'])} parity={fmt_bytes(r['red'])} "
          f"overflow={fmt_bytes(r['ovf'] + r['ovfm'])}, "
          f"{fmt_bytes(o['fragmentation'])} garbage)")


def main() -> None:
    system = System(CSARConfig(scheme="hybrid", num_servers=6,
                               stripe_unit=16 * KiB, content_mode=True))
    client = system.client()
    span = system.layout.group_span

    def churn():
        yield from client.create("ckpt")
        # A base checkpoint of full stripes...
        yield from client.write("ckpt", 0, Payload.pattern(8 * span, seed=1))
        # ...then rounds of small scattered updates (all partial-stripe).
        for round_ in range(5):
            for k in range(6):
                offset = (k * 17 + round_ * 3) % 7 * span // 2
                yield from client.write(
                    "ckpt", offset, Payload.pattern(9_000, seed=10 + k))

    system.run(churn())
    before = system.run(_snapshot_read(client, 8 * span))
    print("after churn:")
    report("hybrid", system)

    result = system.run(reclaim_file(system, "ckpt"))
    print("after reclaim:")
    report("hybrid", system)
    print(f"  overflow allocated: {fmt_bytes(result['before']['allocated'])}"
          f" -> {fmt_bytes(result['after']['allocated'])}")

    after = system.run(_snapshot_read(client, 8 * span))
    assert after == before, "reclaim changed file contents!"
    issues = scrub(system, "ckpt")
    print(f"  contents verified identical; scrub "
          f"{'clean' if not issues else issues}")


def _snapshot_read(client, size):
    out = yield from client.read("ckpt", 0, size)
    return out


if __name__ == "__main__":
    main()
