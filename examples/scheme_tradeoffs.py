#!/usr/bin/env python3
"""The paper's core idea, measured: Hybrid tracks the best scheme at
every write size.

Sweeps write sizes from one block to many stripes and prints the write
bandwidth of RAID1, RAID5 and Hybrid (plus RAID0 as the ceiling).  Small
writes: RAID5 pays the read-modify-write; large writes: RAID1 pays 2x
bytes; Hybrid switches per write and follows the winner.

Run:  python examples/scheme_tradeoffs.py
"""

from repro import CSARConfig, Payload, System
from repro.units import KiB, MB, fmt_bytes

SCHEMES = ("raid0", "raid1", "raid5", "hybrid")
SIZES = [16 * KiB, 64 * KiB, 320 * KiB, 1280 * KiB, 5 * 1280 * KiB]


def bandwidth(scheme: str, write_size: int, total: int = 24 * MB) -> float:
    system = System(CSARConfig(scheme=scheme, num_servers=6,
                               stripe_unit=64 * KiB, content_mode=False))
    client = system.client()
    count = max(1, total // write_size)

    def workload():
        yield from client.create("sweep")
        for i in range(count):
            yield from client.write("sweep", i * write_size,
                                    Payload.virtual(write_size))

    elapsed, _ = system.timed(workload())
    return count * write_size / elapsed / 1e6


def main() -> None:
    print(f"{'write size':>12}  " + "".join(f"{s:>8}" for s in SCHEMES)
          + "   winner(excl. raid0)")
    for size in SIZES:
        values = {s: bandwidth(s, size) for s in SCHEMES}
        redundant = {s: v for s, v in values.items() if s != "raid0"}
        winner = max(redundant, key=redundant.get)
        row = "".join(f"{values[s]:8.1f}" for s in SCHEMES)
        print(f"{fmt_bytes(size):>12}  {row}   {winner}")
    print("\n(64 KiB stripe unit, 6 I/O servers: one stripe = 320 KiB; "
          "Hybrid matches RAID1 below it and RAID5 above it)")


if __name__ == "__main__":
    main()
