#!/usr/bin/env python3
"""MPI-IO collective buffering and I/O trace characterization.

1. Generates BT's real non-contiguous checkpoint pattern (thousands of
   ~KB pieces per rank) and writes it through the two-phase collective
   layer, capturing the PVFS-level trace.
2. Characterizes the trace the way the paper characterizes workloads
   ("the PVFS layer sees large writes...").
3. Replays the same trace under every redundancy scheme and compares.

Run:  python examples/mpiio_and_traces.py
"""

from repro import CSARConfig, System
from repro.units import KiB, MiB, fmt_bytes
from repro.util.trace import TraceRecorder
from repro.workloads.btio_mpiio import btio_collective_benchmark


def make_system(scheme="hybrid"):
    return System(CSARConfig(scheme=scheme, num_servers=6, num_clients=4,
                             stripe_unit=64 * KiB, content_mode=False))


def main() -> None:
    # --- capture ----------------------------------------------------------
    system = make_system()
    recorder = TraceRecorder(system)
    result = btio_collective_benchmark(system, "A", steps=2,
                                       cb_buffer_size=4 * MiB)
    trace = recorder.detach()
    from repro.workloads.btio_mpiio import rank_pattern

    raw = rank_pattern(0, 4, 64)
    print("BT checkpoint, Class A, 4 ranks, 2 steps:")
    print(f"  raw pattern per rank : {len(raw.pieces)} pieces of "
          f"{fmt_bytes(raw.pieces[0][1])}")
    stats = trace.stats("write")
    print(f"  after collective I/O : {stats['count']} PVFS writes, "
          f"median {fmt_bytes(int(stats['median']))} "
          f"(what Section 6.5 calls 'large writes')")
    print(f"  write bandwidth      : {result.write_bandwidth:.1f} MB/s "
          "(hybrid)")

    # --- persist ----------------------------------------------------------
    import io

    buf = io.StringIO()
    trace.dump(buf)
    print(f"  trace serialized     : {len(buf.getvalue())} bytes of JSONL")

    # --- replay under every scheme -----------------------------------------
    print("\nreplaying the captured PVFS-level trace per scheme:")
    for scheme in ("raid0", "raid1", "raid5", "hybrid"):
        target = make_system(scheme)
        elapsed, _ = target.timed(trace.replay(target))
        bw = trace.stats("write")["bytes"] / elapsed / 1e6
        print(f"  {scheme:7s} {bw:7.1f} MB/s")
    print("\n(the ordering matches Figure 6a: hybrid ≈ raid5 > raid1)")


if __name__ == "__main__":
    main()
