#!/usr/bin/env python3
"""Failure injection, degraded reads, full rebuild, and scrubbing — for
each redundancy scheme, with real data verified byte for byte.

Run:  python examples/failure_and_recovery.py
"""

from repro import CSARConfig, DataLoss, Payload, System
from repro.redundancy.recovery import rebuild_server
from repro.redundancy.scrub import scrub
from repro.units import KiB


def exercise(scheme: str) -> None:
    system = System(CSARConfig(scheme=scheme, num_servers=6,
                               stripe_unit=16 * KiB, content_mode=True))
    client = system.client()
    span = system.layout.group_span
    pieces = [
        (0, Payload.pattern(3 * span, seed=1)),          # full stripes
        (3 * span + 123, Payload.pattern(10_000, seed=2)),  # small write
        (span // 2, Payload.pattern(span, seed=3)),      # unaligned mix
    ]
    size = max(off + p.length for off, p in pieces)
    expected = Payload.zeros(size)
    for off, p in pieces:
        expected = expected.overlay(off, p).slice(0, size)

    def write_all():
        yield from client.create("data")
        for off, p in pieces:
            yield from client.write("data", off, p)

    system.run(write_all())

    def read_all():
        out = yield from client.read("data", 0, size)
        return out

    print(f"--- {scheme} ---")
    system.fail_server(3)
    try:
        out = system.run(read_all())
        ok = out == expected
        print(f"  server 3 failed: degraded read "
              f"{'verified' if ok else 'MISMATCH'}")
    except DataLoss as err:
        print(f"  server 3 failed: {err}")
        return

    elapsed, _ = system.timed(rebuild_server(system, 3))
    issues = scrub(system, "data")
    print(f"  rebuilt in {elapsed * 1000:.0f} ms simulated; "
          f"scrub {'clean' if not issues else issues}")

    # The acid test: a *different* server fails after the rebuild.
    system.fail_server(0)
    out = system.run(read_all())
    print(f"  then server 0 failed: degraded read "
          f"{'verified' if out == expected else 'MISMATCH'}")


def main() -> None:
    for scheme in ("raid0", "raid1", "raid5", "hybrid"):
        exercise(scheme)


if __name__ == "__main__":
    main()
