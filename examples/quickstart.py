#!/usr/bin/env python3
"""Quickstart: build a CSAR cluster, store a file, survive a disk failure.

Run:  python examples/quickstart.py
"""

from repro import CSARConfig, Payload, System
from repro.units import KiB, MiB, fmt_bytes


def main() -> None:
    # The paper's main deployment: 6 I/O servers, 64 KiB stripe unit,
    # Hybrid redundancy, OSU-cluster hardware.  content_mode=True carries
    # real bytes end to end so we can verify what we read back.
    system = System(CSARConfig(scheme="hybrid", num_servers=6,
                               stripe_unit=64 * KiB, content_mode=True))
    client = system.client()

    data = Payload.pattern(4 * MiB, seed=42)      # 4 MiB of random bytes
    patch = Payload.pattern(100 * KiB, seed=7)    # a small unaligned update

    def workload():
        yield from client.create("results.dat")
        # A large write: full stripes go RAID5-style (parity), the
        # unaligned tail goes to the overflow region RAID1-style.
        yield from client.write("results.dat", 0, data)
        # A small overwrite: entirely partial-stripe, so entirely overflow.
        yield from client.write("results.dat", 1 * MiB + 300, patch)
        out = yield from client.read("results.dat", 0, data.length)
        return out

    elapsed, out = system.timed(workload())
    expected = data.overlay(1 * MiB + 300, patch).slice(0, data.length)
    assert out == expected, "read-back mismatch"

    print(f"wrote + overwrote + read {fmt_bytes(data.length)} "
          f"in {elapsed * 1000:.1f} ms of simulated time")
    report = system.storage_report("results.dat")
    print(f"storage: data={fmt_bytes(report['data'])} "
          f"parity={fmt_bytes(report['red'])} "
          f"overflow={fmt_bytes(report['ovf'])} "
          f"(+mirror {fmt_bytes(report['ovfm'])})")

    # Fail a server: reads keep working through on-the-fly reconstruction.
    system.fail_server(2)

    def degraded_read():
        out = yield from client.read("results.dat", 0, data.length)
        return out

    elapsed, out = system.timed(degraded_read())
    assert out == expected, "degraded read mismatch"
    print(f"server 2 failed: degraded read OK in {elapsed * 1000:.1f} ms "
          f"({int(system.metrics.get('client.degraded_reads'))} "
          "server-shares reconstructed)")

    # Repair: rebuild the failed server's local files from survivors.
    from repro.redundancy.recovery import rebuild_server
    elapsed, _ = system.timed(rebuild_server(system, 2))
    print(f"server 2 rebuilt in {elapsed * 1000:.1f} ms of simulated time")

    from repro.redundancy.scrub import scrub
    issues = scrub(system, "results.dat")
    print(f"scrub after rebuild: {'CLEAN' if not issues else issues}")


if __name__ == "__main__":
    main()
