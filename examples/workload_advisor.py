#!/usr/bin/env python3
"""From trace to decision: recommend a redundancy scheme per workload.

Captures each application's PVFS-level write trace, runs the closed-form
advisor (the paper's Section 2 reasoning as a cost model), then verifies
the advice by simulating all three schemes.

Run:  python examples/workload_advisor.py
"""

from repro import CSARConfig, StripeLayout, System
from repro.redundancy.advisor import advise
from repro.units import KiB
from repro.util.trace import TraceRecorder
from repro.workloads import cactus_benchio, flash_io_benchmark
from repro.workloads.hartree_fock import hartree_fock_argos

LAYOUT = StripeLayout(64 * KiB, 6)

APPS = {
    "FLASH I/O": (4, lambda s: flash_io_benchmark(
        s, nprocs=4, scale=0.5, include_flush=False)),
    "Cactus BenchIO": (4, lambda s: cactus_benchio(
        s, scale=0.05, include_flush=False)),
    "Hartree-Fock": (1, lambda s: hartree_fock_argos(
        s, scale=0.1, include_flush=False)),
}


def make_system(scheme, clients):
    return System(CSARConfig(scheme=scheme, num_servers=6,
                             num_clients=clients, stripe_unit=64 * KiB,
                             content_mode=False))


def main() -> None:
    for app, (clients, runner) in APPS.items():
        capture = make_system("raid0", clients)
        recorder = TraceRecorder(capture)
        runner(capture)
        trace = recorder.detach()
        stats = trace.stats("write")
        choice, estimates = advise(trace, LAYOUT)

        print(f"{app}: {stats['count']} writes, median "
              f"{stats['median']:,} B, "
              f"{stats['small_fraction_2k'] * 100:.0f}% under 2 KB")
        for est in estimates:
            marker = " <- advised" if est.scheme == choice else ""
            print(f"    {est.scheme:7s} predicted {est.network_amplification:.2f}x "
                  f"network, {est.storage_amplification:.2f}x storage"
                  f"{marker}")

        # Verify: replay the trace under each scheme and time it.
        times = {}
        for scheme in ("raid1", "raid5", "hybrid"):
            target = make_system(scheme, clients)
            elapsed, _ = target.timed(trace.replay(target))
            times[scheme] = elapsed
        measured_best = min(times, key=times.get)
        agreement = "agrees" if times[choice] <= 1.1 * times[measured_best] \
            else f"disagrees (simulation prefers {measured_best})"
        print(f"    simulated: " + "  ".join(
            f"{s}={t:.2f}s" for s, t in times.items())
            + f"  -> advisor {agreement}\n")


if __name__ == "__main__":
    main()
