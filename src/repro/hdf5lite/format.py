"""The on-disk layout of HDF5-lite.

Deliberately simple but real — every structure is packed to bytes and
parsed back:

::

    offset 0            SUPERBLOCK (512 B): magic, dataset count,
                        metadata end, data end
    offset 512          OBJECT HEADER TABLE: one 256 B header per
                        dataset (name, dtype size, shape, data address,
                        attribute count) — rewritten when the dataset
                        grows or gains attributes
    after headers       ATTRIBUTE HEAP: appended (name, value) records;
                        a dataset's header is rewritten to bump its
                        attribute count
    DATA_ALIGNMENT      RAW DATA: dataset chunks, appended aligned

The small-write behaviour the paper attributes to HDF5 falls out of this
layout: every ``create_dataset``/``extend``/``set_attribute`` call
rewrites a few hundred bytes near the start of the file.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ProtocolError

MAGIC = b"H5LT"
SUPERBLOCK_SIZE = 512
HEADER_SIZE = 256
#: raw data starts here; headers + heap must fit below
DATA_ALIGNMENT = 64 * 1024
NAME_LIMIT = 64

_SUPER = struct.Struct("<4sIQQQ")          # magic, ndatasets, meta_end,
                                           # data_end, heap_start
_HEADER = struct.Struct(f"<{NAME_LIMIT}sIIQQQI")   # name, dtype, ndims,
                                                   # nelems, addr, nbytes,
                                                   # nattrs


@dataclass
class DatasetInfo:
    """One dataset's object header, in memory."""

    name: str
    dtype_size: int
    shape: Tuple[int, ...]
    data_addr: int
    data_bytes: int
    n_attrs: int = 0

    @property
    def n_elems(self) -> int:
        out = 1
        for dim in self.shape:
            out *= dim
        return out


def pack_superblock(n_datasets: int, meta_end: int, data_end: int,
                    heap_start: int) -> bytes:
    raw = _SUPER.pack(MAGIC, n_datasets, meta_end, data_end, heap_start)
    return raw + b"\x00" * (SUPERBLOCK_SIZE - len(raw))


def unpack_superblock(raw: bytes) -> Tuple[int, int, int, int]:
    if len(raw) < _SUPER.size:
        raise ProtocolError("short superblock")
    magic, n_datasets, meta_end, data_end, heap_start = _SUPER.unpack(
        raw[: _SUPER.size])
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    return n_datasets, meta_end, data_end, heap_start


def pack_dataset_header(info: DatasetInfo) -> bytes:
    name = info.name.encode()
    if len(name) >= NAME_LIMIT:
        raise ProtocolError(f"dataset name too long: {info.name!r}")
    if len(info.shape) > 8:
        raise ProtocolError("too many dimensions")
    # Shape dims ride in the padding after the fixed part.
    fixed = _HEADER.pack(name, info.dtype_size, len(info.shape),
                         info.n_elems, info.data_addr, info.data_bytes,
                         info.n_attrs)
    dims = struct.pack(f"<{len(info.shape)}Q", *info.shape)
    raw = fixed + dims
    if len(raw) > HEADER_SIZE:
        raise ProtocolError("header overflow")
    return raw + b"\x00" * (HEADER_SIZE - len(raw))


def unpack_dataset_header(raw: bytes) -> DatasetInfo:
    if len(raw) < HEADER_SIZE:
        raise ProtocolError("short dataset header")
    name_raw, dtype_size, ndims, n_elems, addr, nbytes, n_attrs = \
        _HEADER.unpack(raw[: _HEADER.size])
    dims = struct.unpack(
        f"<{ndims}Q", raw[_HEADER.size: _HEADER.size + 8 * ndims])
    info = DatasetInfo(name=name_raw.rstrip(b"\x00").decode(),
                       dtype_size=dtype_size, shape=tuple(dims),
                       data_addr=addr, data_bytes=nbytes, n_attrs=n_attrs)
    if info.n_elems != n_elems:
        raise ProtocolError("inconsistent element count")
    return info


def pack_attribute(dataset_index: int, name: str, value: bytes) -> bytes:
    name_b = name.encode()
    return struct.pack("<HHH", dataset_index, len(name_b),
                       len(value)) + name_b + value


def unpack_attributes(raw: bytes) -> List[Tuple[int, str, bytes]]:
    """Parse the whole heap: (dataset index, name, value) in append order."""
    out: List[Tuple[int, str, bytes]] = []
    at = 0
    while at < len(raw):
        if at + 6 > len(raw):
            raise ProtocolError("truncated attribute heap")
        ds_index, nlen, vlen = struct.unpack_from("<HHH", raw, at)
        at += 6
        name = raw[at: at + nlen].decode()
        at += nlen
        value = raw[at: at + vlen]
        at += vlen
        out.append((ds_index, name, value))
    return out
