"""HDF5-lite: a minimal self-describing container format over CSAR.

The paper's applications (FLASH I/O, Cactus BenchIO) write through the
HDF5 parallel library; what CSAR sees is HDF5's characteristic mix of
large raw-data chunk writes and small *metadata rewrites* — the
superblock, object headers and attribute heap near the start of the file
are updated every time a dataset is created, extended or annotated.
Section 6.7's FLASH storage numbers hinge on exactly this behaviour.

This package implements the format for real (files written with
:class:`H5File` read back through :class:`H5Reader`, verified byte for
byte), so the access pattern the paper describes *emerges* from the
library instead of being scripted.
"""

from repro.hdf5lite.format import (
    DATA_ALIGNMENT,
    HEADER_SIZE,
    SUPERBLOCK_SIZE,
    DatasetInfo,
    pack_dataset_header,
    pack_superblock,
    unpack_dataset_header,
    unpack_superblock,
)
from repro.hdf5lite.writer import H5File, H5Reader

__all__ = [
    "H5File",
    "H5Reader",
    "DatasetInfo",
    "SUPERBLOCK_SIZE",
    "HEADER_SIZE",
    "DATA_ALIGNMENT",
    "pack_superblock",
    "unpack_superblock",
    "pack_dataset_header",
    "unpack_dataset_header",
]
