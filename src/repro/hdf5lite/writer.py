"""Writing and reading HDF5-lite files through CSAR clients.

Every method is a simulation-process body; the I/O it issues is exactly
what the paper's HDF5 applications present to the file system:

* ``create_dataset`` — one small header write plus a superblock rewrite;
* ``write_chunk`` — a large raw-data write (the dataset payload) plus a
  header rewrite recording the new extent;
* ``set_attribute`` — a tiny heap append plus a header rewrite.

So a FLASH-like checkpoint (24 variables, each annotated and written in
rank-sized chunks) organically produces the paper's mix of sub-2 KB
metadata requests and 100 KB+ data requests.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import FileExists, ProtocolError
from repro.hdf5lite import format as fmt
from repro.sim.engine import Event
from repro.storage.payload import Payload


class H5File:
    """A writable HDF5-lite file bound to one CSAR client."""

    def __init__(self, client, name: str) -> None:
        self.client = client
        self.name = name
        self.datasets: List[fmt.DatasetInfo] = []
        self._heap_start = 0
        self._heap_end = 0
        self._data_end = fmt.DATA_ALIGNMENT
        self._by_name: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def create(self, max_datasets: int = 64) -> Generator[Event, Any, None]:
        """Write a fresh superblock and reserve the header table."""
        try:
            yield from self.client.create(self.name)
        except FileExists:
            yield from self.client.open(self.name)
        self._heap_start = fmt.SUPERBLOCK_SIZE + \
            max_datasets * fmt.HEADER_SIZE
        self._heap_end = self._heap_start
        yield from self._write_superblock()

    def _write_superblock(self) -> Generator[Event, Any, None]:
        raw = fmt.pack_superblock(len(self.datasets), self._heap_end,
                                  self._data_end, self._heap_start)
        yield from self.client.write(self.name, 0, Payload.from_bytes(raw))

    def _write_header(self, index: int) -> Generator[Event, Any, None]:
        raw = fmt.pack_dataset_header(self.datasets[index])
        offset = fmt.SUPERBLOCK_SIZE + index * fmt.HEADER_SIZE
        yield from self.client.write(self.name, offset,
                                     Payload.from_bytes(raw))

    # ------------------------------------------------------------------
    def create_dataset(self, name: str, shape: Tuple[int, ...],
                       dtype_size: int = 8) -> Generator[Event, Any, int]:
        """Declare a dataset; returns its index.  Data space is reserved
        up front (HDF5 contiguous layout)."""
        if name in self._by_name:
            raise ProtocolError(f"dataset {name!r} exists")
        info = fmt.DatasetInfo(name=name, dtype_size=dtype_size,
                               shape=shape, data_addr=self._data_end,
                               data_bytes=0)
        index = len(self.datasets)
        if fmt.SUPERBLOCK_SIZE + (index + 1) * fmt.HEADER_SIZE \
                > self._heap_start:
            raise ProtocolError("header table full")
        self.datasets.append(info)
        self._by_name[name] = index
        self._data_end += info.n_elems * dtype_size
        yield from self._write_header(index)
        yield from self._write_superblock()
        return index

    def write_chunk(self, dataset: str, elem_offset: int,
                    payload: Payload) -> Generator[Event, Any, None]:
        """Write part of a dataset's raw data (element-addressed)."""
        index = self._by_name[dataset]
        info = self.datasets[index]
        byte_off = elem_offset * info.dtype_size
        if byte_off + payload.length > info.n_elems * info.dtype_size:
            raise ProtocolError("chunk outside dataset extent")
        yield from self.client.write(self.name, info.data_addr + byte_off,
                                     payload)
        new_extent = byte_off + payload.length
        if new_extent > info.data_bytes:
            info.data_bytes = new_extent
            yield from self._write_header(index)

    def set_attribute(self, dataset: str, name: str,
                      value: bytes) -> Generator[Event, Any, None]:
        """Annotate a dataset (units, timestamps, runtime parameters)."""
        index = self._by_name[dataset]
        record = fmt.pack_attribute(index, name, value)
        if self._heap_end + len(record) > fmt.DATA_ALIGNMENT:
            raise ProtocolError("attribute heap full")
        yield from self.client.write(self.name, self._heap_end,
                                     Payload.from_bytes(record))
        self._heap_end += len(record)
        self.datasets[index].n_attrs += 1
        yield from self._write_header(index)
        yield from self._write_superblock()

    def flush(self) -> Generator[Event, Any, None]:
        yield from self.client.fsync(self.name)


class H5Reader:
    """Parse an HDF5-lite file back through a CSAR client."""

    def __init__(self, client, name: str) -> None:
        self.client = client
        self.name = name
        self.datasets: List[fmt.DatasetInfo] = []
        self._attrs: List[Tuple[int, str, bytes]] = []
        self._meta_end = 0

    def open(self) -> Generator[Event, Any, None]:
        yield from self.client.open(self.name)
        raw = yield from self.client.read(self.name, 0,
                                          fmt.SUPERBLOCK_SIZE)
        n_datasets, meta_end, _data_end, heap_start = fmt.unpack_superblock(
            raw.to_bytes())
        self._meta_end = meta_end
        self.datasets = []
        for index in range(n_datasets):
            offset = fmt.SUPERBLOCK_SIZE + index * fmt.HEADER_SIZE
            header = yield from self.client.read(self.name, offset,
                                                 fmt.HEADER_SIZE)
            self.datasets.append(fmt.unpack_dataset_header(
                header.to_bytes()))
        if meta_end > heap_start:
            heap = yield from self.client.read(self.name, heap_start,
                                               meta_end - heap_start)
            self._attrs = fmt.unpack_attributes(heap.to_bytes())
        else:
            self._attrs = []

    def dataset(self, name: str) -> fmt.DatasetInfo:
        for info in self.datasets:
            if info.name == name:
                return info
        raise ProtocolError(f"no dataset {name!r}")

    def attributes(self, name: str) -> Dict[str, bytes]:
        index = self.datasets.index(self.dataset(name))
        return {attr_name: value for ds, attr_name, value in self._attrs
                if ds == index}

    def read_data(self, name: str, elem_offset: int = 0,
                  n_elems: Optional[int] = None,
                  ) -> Generator[Event, Any, Payload]:
        info = self.dataset(name)
        byte_off = elem_offset * info.dtype_size
        nbytes = (info.data_bytes - byte_off if n_elems is None
                  else n_elems * info.dtype_size)
        out = yield from self.client.read(self.name,
                                          info.data_addr + byte_off, nbytes)
        return out
