"""Command-line front end: list and run the paper's experiments.

::

    csar-repro list
    csar-repro run fig3
    csar-repro run fig6a --scale 0.1
    csar-repro run all --scale 0.05 --sanitize
    csar-repro lint src --format=json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.errors import ConfigError
from repro.experiments import REGISTRY, get_experiment
from repro.experiments.base import list_experiments


def _cmd_list() -> int:
    width = max(len(e.id) for e in list_experiments())
    for exp in list_experiments():
        print(f"{exp.id.ljust(width)}  {exp.title} "
              f"(default scale {exp.default_scale:g})")
    return 0


def _cmd_run(ids: List[str], scale: Optional[float],
             csv_dir: Optional[str] = None, chart: bool = False,
             sanitize: bool = False) -> int:
    previous_factory = None
    if sanitize:
        from repro.analysis import locksan
        from repro.sim import engine
        previous_factory = engine.sanitizer_factory()
        locksan.install()
    if ids == ["all"]:
        ids = sorted(REGISTRY)
    status = 0
    try:
        for exp_id in ids:
            try:
                exp = get_experiment(exp_id)
            except ConfigError as err:
                print(f"error: {err}", file=sys.stderr)
                return 2
            effective = exp.default_scale if scale is None else scale
            t0 = time.time()
            try:
                table = exp.run(scale=effective)
            except Exception as err:
                print(f"error: experiment {exp_id} failed: "
                      f"{type(err).__name__}: {err}", file=sys.stderr)
                status = 1
                continue
            wall = time.time() - t0
            print(table.format())
            if chart:
                from repro.util.charts import chart_table
                print()
                print(chart_table(table))
            print(f"(scale {effective:g}, {wall:.1f}s wall)\n")
            if sanitize:
                from repro.analysis import locksan
                for report in locksan.drain_reports():
                    print(f"{exp_id}: {report.format()}", file=sys.stderr)
                    status = 1
            if csv_dir is not None:
                import os
                os.makedirs(csv_dir, exist_ok=True)
                out_path = os.path.join(csv_dir, f"{exp_id}.csv")
                with open(out_path, "w") as fp:
                    fp.write(table.to_csv())
                print(f"wrote {out_path}\n")
    finally:
        if sanitize:
            from repro.sim import engine
            engine.set_sanitizer_factory(previous_factory)
    return status


def _cmd_lint(paths: List[str], fmt: str, list_rules: bool) -> int:
    from repro.analysis import lint
    from repro.analysis.rules import RULES

    if list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code} ({rule.name}): {rule.summary}")
        return 0
    import os
    for path in paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    enable = lint.enabled_codes_from_pyproject()
    findings = lint.lint_paths(paths, enable=enable)
    if fmt == "json":
        print(lint.format_json(findings))
    elif findings:
        print(lint.format_text(findings))
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="csar-repro",
        description="Reproduce the figures and tables of Pillai & Lauria, "
                    "'A High Performance Redundancy Scheme for Cluster "
                    "File Systems' (CLUSTER 2003)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run experiments by id ('all' runs "
                                       "everything)")
    run_p.add_argument("ids", nargs="+", help="experiment ids, or 'all'")
    run_p.add_argument("--scale", type=float, default=None,
                       help="data-volume scale factor (default: "
                            "per-experiment)")
    run_p.add_argument("--csv-dir", default=None,
                       help="also write each table as CSV into this "
                            "directory")
    run_p.add_argument("--chart", action="store_true",
                       help="also render each result as a terminal chart")
    run_p.add_argument("--sanitize", action="store_true",
                       help="run under the LockSan lock-protocol "
                            "sanitizer; reports fail the run")
    report_p = sub.add_parser(
        "report", help="run the paper-claim checklist and print verdicts")
    report_p.add_argument("--scale", type=float, default=None,
                          help="data-volume scale factor")
    lint_p = sub.add_parser(
        "lint", help="run the csar-lint static protocol checks")
    lint_p.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    lint_p.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="output format (default: text)")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print every rule code and exit")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "report":
        from repro.experiments.report import run_report

        text, ok = run_report(scale=args.scale)
        print(text)
        return 0 if ok else 1
    if args.command == "lint":
        return _cmd_lint(args.paths, args.fmt, args.list_rules)
    return _cmd_run(args.ids, args.scale, args.csv_dir, args.chart,
                    args.sanitize)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
