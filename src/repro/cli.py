"""Command-line front end: list and run the paper's experiments.

::

    csar-repro list
    csar-repro run fig3
    csar-repro run fig6a --scale 0.1
    csar-repro run all --scale 0.05 --sanitize
    csar-repro run all --scale 0.05 --sanitize=all
    csar-repro run all --jobs 4
    csar-repro profile fig7a
    csar-repro bench --quick --check
    csar-repro lint src --format=json
    csar-repro lint src --format=sarif > lint.sarif
    csar-repro lint src --write-baseline tools/lint_baseline.json
    csar-repro lint src --baseline tools/lint_baseline.json \
        --witnesses witnesses.json
    csar-repro lint src --no-interprocedural
    csar-repro explore --smoke --witness-file witnesses.json
    csar-repro explore race-lock-order --strategy pct --budget 128
    csar-repro explore --replay out/race-lock-order.sched
    csar-repro chaos --seeds 0:8 --plan-dir out/chaos
    csar-repro chaos --replay out/chaos/seed3-raid5.json
    csar-repro chaos --smoke
    csar-repro chaos --matrix
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.errors import ConfigError
from repro.experiments import REGISTRY, get_experiment
from repro.experiments.base import list_experiments


def _cmd_list() -> int:
    width = max(len(e.id) for e in list_experiments())
    for exp in list_experiments():
        print(f"{exp.id.ljust(width)}  {exp.title} "
              f"(default scale {exp.default_scale:g})")
    return 0


def _emit_table(exp_id: str, table, wall: float, effective: float,
                chart: bool, csv_dir: Optional[str],
                sanitizer_reports: List[str]) -> int:
    """Print one experiment's results; returns 1 if reports failed it."""
    status = 0
    print(table.format())
    if chart:
        from repro.util.charts import chart_table
        print()
        print(chart_table(table))
    print(f"(scale {effective:g}, {wall:.1f}s wall)\n")
    for report in sanitizer_reports:
        print(f"{exp_id}: {report}", file=sys.stderr)
        status = 1
    if csv_dir is not None:
        import os
        os.makedirs(csv_dir, exist_ok=True)
        out_path = os.path.join(csv_dir, f"{exp_id}.csv")
        with open(out_path, "w") as fp:
            fp.write(table.to_csv())
        print(f"wrote {out_path}\n")
    return status


def _cmd_run(ids: List[str], scale: Optional[float],
             csv_dir: Optional[str] = None, chart: bool = False,
             sanitize: Optional[str] = None, jobs: int = 1) -> int:
    from repro.analysis import (drain_sanitizer_reports, install_sanitizers,
                                sanitize_modes, sanitizer_module,
                                uninstall_sanitizers)

    if ids == ["all"]:
        ids = sorted(REGISTRY)
    if jobs > 1:
        return _cmd_run_parallel(ids, scale, csv_dir, chart, sanitize, jobs)
    modes = sanitize_modes(sanitize)
    # Only uninstall what this run installed, so an already-installed
    # sanitizer (e.g. a CSAR_*SAN=1 test harness) survives the command.
    owned = tuple(m for m in modes if not sanitizer_module(m).installed())
    install_sanitizers(owned)
    status = 0
    try:
        for exp_id in ids:
            try:
                exp = get_experiment(exp_id)
            except ConfigError as err:
                print(f"error: {err}", file=sys.stderr)
                return 2
            effective = exp.default_scale if scale is None else scale
            t0 = time.time()
            try:
                table = exp.run(scale=effective)
            except Exception as err:
                print(f"error: experiment {exp_id} failed: "
                      f"{type(err).__name__}: {err}", file=sys.stderr)
                status = 1
                continue
            wall = time.time() - t0
            reports = [r.format()
                       for r in drain_sanitizer_reports(modes)]
            status |= _emit_table(exp_id, table, wall, effective, chart,
                                  csv_dir, reports)
    finally:
        uninstall_sanitizers(owned)
    return status


def _cmd_run_parallel(ids: List[str], scale: Optional[float],
                      csv_dir: Optional[str], chart: bool,
                      sanitize: Optional[str], jobs: int) -> int:
    """Fan independent experiments across a process pool (--jobs N)."""
    from repro.perf.runner import SweepPoint, run_sweep

    points = []
    for exp_id in ids:
        try:
            exp = get_experiment(exp_id)
        except ConfigError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        effective = exp.default_scale if scale is None else scale
        points.append(SweepPoint(exp_id=exp_id, scale=effective))
    status = 0
    for result in run_sweep(points, jobs=jobs, sanitize=sanitize):
        exp_id = result.point.exp_id
        if not result.ok:
            err = result.error
            print(f"error: experiment {exp_id} failed: "
                  f"{type(err).__name__}: {err}", file=sys.stderr)
            status = 1
            continue
        status |= _emit_table(exp_id, result.table, result.wall,
                              result.point.scale, chart, csv_dir,
                              result.sanitizer_reports)
    return status


def _cmd_profile(exp_id: str, scale: Optional[float], top: int,
                 sort: str, bench_mode: bool = False) -> int:
    from repro.perf.profiler import profile_bench, profile_experiment

    try:
        if bench_mode:
            report = profile_bench(exp_id, top=top, sort=sort)
        else:
            report, _table = profile_experiment(exp_id, scale=scale, top=top,
                                                sort=sort)
    except ConfigError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(report)
    return 0


def _cmd_bench(json_path: str, note: str, quick: bool, check: bool,
               threshold: float,
               scenarios: Optional[List[str]] = None) -> int:
    from repro.perf import bench

    names: Optional[List[str]] = None
    if scenarios:
        names = [n for n in scenarios if n in bench.SCENARIOS]
        for n in scenarios:
            if n not in bench.SCENARIOS:
                print(f"warning: unknown scenario {n!r} skipped "
                      f"(known: {', '.join(bench.SCENARIOS)})",
                      file=sys.stderr)
    data = bench.load(json_path)
    baseline = bench.baseline_run(data)
    results = bench.run_scenarios(names, repeats=2 if quick else 5)
    print(bench.format_results(results, baseline))
    if not results:
        # Nothing ran (every requested name was unknown): nothing to
        # record or check, but the misuse should not pass silently.
        return 2
    bench.append_run(results, path=json_path, note=note, quick=quick)
    print(f"\nappended run to {json_path} "
          f"({len(data['runs']) + 1} runs recorded)")
    if check and baseline is not None:
        failures = bench.check_regression(baseline, results, threshold)
        if failures:
            for name, base_s, new_s, slowdown in failures:
                print(f"regression: {name}: {base_s * 1000:.2f} ms -> "
                      f"{new_s * 1000:.2f} ms "
                      f"(+{slowdown:.0%} > {threshold:.0%})",
                      file=sys.stderr)
            return 1
        print(f"no regression vs baseline (threshold {threshold:.0%})")
    return 0


def _cmd_explore(scenario: Optional[str], strategy: str, budget: int,
                 depth: int, seed: int, smoke: bool,
                 sched_dir: Optional[str], replay_path: Optional[str],
                 list_scenarios: bool,
                 witness_path: Optional[str] = None) -> int:
    from repro.analysis import explore

    if list_scenarios:
        width = max(len(name) for name in explore.SCENARIOS)
        for name in sorted(explore.SCENARIOS):
            scen = explore.SCENARIOS[name]
            tag = " [seeded bug]" if scen.seeded_bug else ""
            print(f"{name.ljust(width)}  {scen.description}{tag}")
        return 0

    if replay_path is not None:
        record = explore.load_schedule(replay_path)
        reproduced, violation = explore.replay(record)
        if reproduced:
            print(f"replayed {record.scenario}: reproduced "
                  f"{violation.format()}")
            return 0
        got = violation.format() if violation is not None else "clean run"
        print(f"replay of {record.scenario} did NOT reproduce "
              f"{record.violation.format()}; got: {got}", file=sys.stderr)
        return 1

    if smoke:
        try:
            results = explore.explore_smoke(budget=budget, depth=depth,
                                            sched_dir=sched_dir,
                                            witness_path=witness_path)
        except AssertionError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
        for result in results:
            print(f"{result.scenario}: caught "
                  f"{result.record.violation.format()} after "
                  f"{result.schedules} schedule(s); replay deterministic")
        if witness_path is not None:
            print(f"wrote lock-order witnesses to {witness_path}")
        return 0

    if scenario is None:
        print("error: give a scenario name, --smoke, --replay, or --list",
              file=sys.stderr)
        return 2
    explore.drain_witnesses()
    try:
        result = explore.explore(scenario, strategy=strategy, budget=budget,
                                 depth=depth, seed=seed)
    except KeyError as err:
        print(f"error: {err.args[0]}", file=sys.stderr)
        return 2
    if witness_path is not None:
        from repro.analysis import lint

        lint.save_witnesses(explore.drain_witnesses(), witness_path)
        print(f"wrote lock-order witnesses to {witness_path}")
    if not result.found:
        print(f"{scenario}: no violation in {result.schedules} "
              f"schedule(s) ({strategy})")
        return 0
    print(f"{scenario}: violation after {result.schedules} schedule(s) "
          f"({strategy}): {result.record.violation.format()}")
    if sched_dir is not None:
        import os
        os.makedirs(sched_dir, exist_ok=True)
        path = os.path.join(sched_dir, f"{scenario}.sched")
        explore.save_schedule(result.record, path)
        print(f"wrote {path}")
    return 1


def _cmd_chaos(seeds: List[int], schemes: List[str], num_ops: int,
               plan_dir: Optional[str], replay_path: Optional[str],
               smoke: bool, matrix: bool) -> int:
    from repro.faults import runner

    if replay_path is not None:
        reproduced, result = runner.replay(replay_path)
        if reproduced:
            print(f"replayed {replay_path}: reproduced — {result.format()}")
            return 0
        print(f"replay of {replay_path} did NOT reproduce the recorded "
              f"outcome; got: {result.format()}", file=sys.stderr)
        return 1

    if matrix:
        from repro.faults.matrix import crash_matrix

        status = 0
        for scheme in ("raid5", "hybrid"):
            cells = crash_matrix(scheme)
            bad = [c for c in cells if not c.ok]
            print(f"{scheme}: {len(cells)} crash cells, "
                  f"{len(bad)} violating")
            for cell in bad:
                print(f"  {cell.format()}", file=sys.stderr)
                status = 1
        return status

    if smoke:
        # Verify the verifier: the seeded mid-RMW bug must be caught by
        # the crash matrix, the real scheme must pass the same cell, and
        # a chaos run must be digest-deterministic.
        from repro.analysis.seeded_bugs import CompensatingWritebackRaid5
        from repro.faults.matrix import run_cell

        cell = run_cell("raid5", "raid5.rmw.before_writeback", 1, 0)
        if not cell.ok:
            print(f"error: real raid5 failed the matrix: {cell.format()}",
                  file=sys.stderr)
            return 1
        cell = run_cell("raid5", "raid5.rmw.before_writeback", 1, 0,
                        make_scheme=CompensatingWritebackRaid5)
        if cell.ok:
            print("error: the crash matrix did not catch "
                  "CompensatingWritebackRaid5", file=sys.stderr)
            return 1
        print(f"seeded bug caught: {cell.format()}")
        first = runner.run_chaos(seeds[0], "raid5", num_ops=num_ops)
        again = runner.run_chaos(seeds[0], "raid5", num_ops=num_ops)
        if first.digest != again.digest:
            print("error: chaos run is not deterministic", file=sys.stderr)
            return 1
        print(f"chaos determinism: seed {seeds[0]} raid5 digest "
              f"{first.digest[:12]} reproduces")
        return 0

    results = runner.run_campaign(seeds, schemes, num_ops=num_ops,
                                  plan_dir=plan_dir)
    status = 0
    for result in results:
        print(result.format())
        if not result.ok:
            status = 1
    if status and plan_dir is not None:
        print(f"failing plans written to {plan_dir}", file=sys.stderr)
    return status


def _parse_seeds(seed: int, seeds: Optional[str]) -> List[int]:
    if seeds is None:
        return [seed]
    if ":" in seeds:
        lo, hi = seeds.split(":", 1)
        return list(range(int(lo), int(hi)))
    return [int(s) for s in seeds.split(",") if s]


def _cmd_lint(paths: List[str], fmt: str, list_rules: bool,
              interprocedural: bool = True,
              baseline_path: Optional[str] = None,
              write_baseline_path: Optional[str] = None,
              witness_path: Optional[str] = None) -> int:
    from repro.analysis import lint
    from repro.analysis.rules import RULES

    if list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code} ({rule.name}): {rule.summary}")
        return 0
    import os
    for path in paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    witnesses = None
    if witness_path is not None:
        if not os.path.exists(witness_path):
            print(f"error: no such witness file: {witness_path}",
                  file=sys.stderr)
            return 2
        witnesses = lint.load_witnesses(witness_path)
    enable = lint.enabled_codes_from_pyproject()
    findings = lint.lint_paths(paths, enable=enable,
                               interprocedural=interprocedural,
                               witnesses=witnesses)
    if write_baseline_path is not None:
        lint.write_baseline(findings, write_baseline_path)
        print(f"wrote {len(findings)} baseline entr"
              f"{'y' if len(findings) == 1 else 'ies'} to "
              f"{write_baseline_path}")
        return 0
    suppressed = 0
    if baseline_path is not None:
        if not os.path.exists(baseline_path):
            print(f"error: no such baseline file: {baseline_path}",
                  file=sys.stderr)
            return 2
    else:
        # Auto-baseline: [tool.csar-lint] baseline in pyproject.toml,
        # silently skipped when the file is absent (e.g. a fresh clone
        # linting before the baseline has been generated).
        configured = lint.baseline_from_pyproject()
        if configured is not None and os.path.exists(configured):
            baseline_path = configured
    if baseline_path is not None:
        findings, suppressed = lint.apply_baseline(
            findings, lint.load_baseline(baseline_path))
    if fmt == "json":
        print(lint.format_json(findings))
    elif fmt == "sarif":
        print(lint.format_sarif(findings))
    else:
        if findings:
            print(lint.format_text(findings))
        if suppressed:
            print(f"{suppressed} baselined finding"
                  f"{'s' if suppressed != 1 else ''} suppressed")
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="csar-repro",
        description="Reproduce the figures and tables of Pillai & Lauria, "
                    "'A High Performance Redundancy Scheme for Cluster "
                    "File Systems' (CLUSTER 2003)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run experiments by id ('all' runs "
                                       "everything)")
    run_p.add_argument("ids", nargs="+", help="experiment ids, or 'all'")
    run_p.add_argument("--scale", type=float, default=None,
                       help="data-volume scale factor (default: "
                            "per-experiment)")
    run_p.add_argument("--csv-dir", default=None,
                       help="also write each table as CSV into this "
                            "directory")
    run_p.add_argument("--chart", action="store_true",
                       help="also render each result as a terminal chart")
    run_p.add_argument("--sanitize", nargs="?", const="lock", default=None,
                       choices=("lock", "parity", "buf", "all"),
                       help="run under runtime sanitizers; reports fail "
                            "the run.  'lock' (the default when the flag "
                            "is bare) = LockSan lock protocol, 'parity' = "
                            "ParitySan redundancy invariants, 'buf' = "
                            "BufSan buffer-immutability fingerprints, "
                            "'all' = every sanitizer")
    run_p.add_argument("--jobs", type=int, default=1,
                       help="run independent experiments across N worker "
                            "processes (default 1: classic sequential "
                            "runner; results always print in submission "
                            "order)")
    profile_p = sub.add_parser(
        "profile", help="run one experiment under cProfile with kernel "
                        "event/dispatch counters")
    profile_p.add_argument("experiment",
                           help="experiment id (see 'list'), or a bench "
                                "scenario name with --bench")
    profile_p.add_argument("--bench", action="store_true",
                           help="profile a micro-benchmark scenario from "
                                "'csar-repro bench' instead of an "
                                "experiment")
    profile_p.add_argument("--scale", type=float, default=None,
                           help="data-volume scale factor")
    profile_p.add_argument("--top", type=int, default=20,
                           help="number of profile rows (default 20)")
    profile_p.add_argument("--sort", default="cumulative",
                           help="pstats sort key (default: cumulative)")
    bench_p = sub.add_parser(
        "bench", help="run the simulator micro-benchmarks and append "
                      "results to the perf-trajectory file")
    bench_p.add_argument("scenarios", nargs="*", default=None,
                         help="scenario names to run (default: all); "
                              "unknown names are skipped with a warning")
    bench_p.add_argument("--quick", action="store_true",
                         help="2 repeats per scenario instead of 5")
    bench_p.add_argument("--json", default="BENCH_simulator.json",
                         dest="json_path",
                         help="trajectory file (default: "
                              "BENCH_simulator.json)")
    bench_p.add_argument("--note", default="",
                         help="free-form label recorded with the run")
    bench_p.add_argument("--check", action="store_true",
                         help="exit 1 if any scenario regresses more than "
                              "--threshold vs the last recorded run")
    bench_p.add_argument("--threshold", type=float, default=0.30,
                         help="regression threshold for --check "
                              "(default 0.30 = 30%%)")
    report_p = sub.add_parser(
        "report", help="run the paper-claim checklist and print verdicts")
    report_p.add_argument("--scale", type=float, default=None,
                          help="data-volume scale factor")
    explore_p = sub.add_parser(
        "explore", help="systematically explore event schedules for "
                        "protocol violations (see docs/ANALYSIS.md)")
    explore_p.add_argument("scenario", nargs="?", default=None,
                           help="registered scenario name (see --list)")
    explore_p.add_argument("--strategy", choices=("dfs", "pct"),
                           default="dfs",
                           help="dfs = bounded systematic, pct = seeded "
                                "randomized (default: dfs)")
    explore_p.add_argument("--budget", type=int, default=64,
                           help="max schedules to execute (default 64)")
    explore_p.add_argument("--depth", type=int, default=12,
                           help="dfs: max decision points branched on "
                                "(default 12)")
    explore_p.add_argument("--seed", type=int, default=0,
                           help="pct: base random seed (default 0)")
    explore_p.add_argument("--smoke", action="store_true",
                           help="run every seeded-bug scenario; exit 1 "
                                "unless all are caught and replay "
                                "deterministically (the CI gate)")
    explore_p.add_argument("--sched-dir", default=None,
                           help="write violating schedules as .sched "
                                "files into this directory")
    explore_p.add_argument("--replay", default=None, dest="replay_path",
                           metavar="FILE",
                           help="re-run a saved .sched file and verify "
                                "the violation reproduces")
    explore_p.add_argument("--list", action="store_true",
                           dest="list_scenarios",
                           help="print every registered scenario and exit")
    explore_p.add_argument("--witness-file", default=None,
                           dest="witness_path", metavar="FILE",
                           help="save every LockSan order-inversion "
                                "observed during the run as a witness "
                                "file for 'lint --witnesses'")
    chaos_p = sub.add_parser(
        "chaos", help="run seed-deterministic fault-injection campaigns "
                      "with a differential oracle (see docs/FAULTS.md)")
    chaos_p.add_argument("--seed", type=int, default=0,
                         help="single campaign seed (default 0)")
    chaos_p.add_argument("--seeds", default=None,
                         help="seed set: 'LO:HI' (half-open range) or a "
                              "comma list; overrides --seed")
    chaos_p.add_argument("--schemes", default=",".join(
                             ("raid0", "raid1", "raid5", "hybrid")),
                         help="comma list of schemes to sweep "
                              "(default: all four)")
    chaos_p.add_argument("--ops", type=int, default=10, dest="num_ops",
                         help="workload operations per run (default 10)")
    chaos_p.add_argument("--plan-dir", default=None,
                         help="write each failing run's fault plan as "
                              "replayable JSON into this directory")
    chaos_p.add_argument("--replay", default=None, dest="replay_path",
                         metavar="FILE",
                         help="re-run a saved fault plan and verify the "
                              "recorded outcome reproduces")
    chaos_p.add_argument("--smoke", action="store_true",
                         help="verify the verifier: the seeded mid-RMW "
                              "bug is caught and runs are deterministic "
                              "(the CI gate)")
    chaos_p.add_argument("--matrix", action="store_true",
                         help="run the full crash-consistency matrix "
                              "(every server x every protocol step) for "
                              "raid5 and hybrid")
    lint_p = sub.add_parser(
        "lint", help="run the csar-lint static protocol checks")
    lint_p.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    lint_p.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="fmt",
                        help="output format (default: text)")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print every rule code and exit")
    lint_p.add_argument("--interprocedural", action="store_true",
                        default=True,
                        help="whole-program mode: call graph + "
                             "lock-effect summaries + CSAR010/CSAR011 "
                             "(the default)")
    lint_p.add_argument("--no-interprocedural", action="store_false",
                        dest="interprocedural",
                        help="per-function rules only (the pre-summary "
                             "behaviour)")
    lint_p.add_argument("--baseline", default=None, dest="baseline_path",
                        metavar="FILE",
                        help="suppress findings recorded in this baseline "
                             "file; only new findings fail the run "
                             "(default: [tool.csar-lint] baseline from "
                             "pyproject.toml, when the file exists)")
    lint_p.add_argument("--write-baseline", default=None,
                        dest="write_baseline_path", metavar="FILE",
                        help="record every current finding into FILE and "
                             "exit 0 (accept the status quo)")
    lint_p.add_argument("--witnesses", default=None, dest="witness_path",
                        metavar="FILE",
                        help="LockSan witness file from 'explore "
                             "--witness-file'; CSAR011 findings name "
                             "their dynamic witness when one matches")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "report":
        from repro.experiments.report import run_report

        text, ok = run_report(scale=args.scale)
        print(text)
        return 0 if ok else 1
    if args.command == "lint":
        return _cmd_lint(args.paths, args.fmt, args.list_rules,
                         args.interprocedural, args.baseline_path,
                         args.write_baseline_path, args.witness_path)
    if args.command == "chaos":
        return _cmd_chaos(_parse_seeds(args.seed, args.seeds),
                          [s for s in args.schemes.split(",") if s],
                          args.num_ops, args.plan_dir, args.replay_path,
                          args.smoke, args.matrix)
    if args.command == "explore":
        return _cmd_explore(args.scenario, args.strategy, args.budget,
                            args.depth, args.seed, args.smoke,
                            args.sched_dir, args.replay_path,
                            args.list_scenarios, args.witness_path)
    if args.command == "profile":
        return _cmd_profile(args.experiment, args.scale, args.top,
                            args.sort, args.bench)
    if args.command == "bench":
        return _cmd_bench(args.json_path, args.note, args.quick,
                          args.check, args.threshold, args.scenarios)
    return _cmd_run(args.ids, args.scale, args.csv_dir, args.chart,
                    args.sanitize, args.jobs)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
