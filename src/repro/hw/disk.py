"""Seek-plus-streaming disk model with sequential-access detection.

One :class:`Disk` serializes all operations (a single spindle / 3Ware
volume).  An operation is *sequential* when it continues exactly where the
previous operation on the same local file ended; sequential operations skip
the positioning cost.  This is what makes interleaved read-modify-write
traffic (cold-cache RAID5 overwrite, Figs 6b/7b) so much slower than
streaming writeback: every alternation between reading old stripes and
writing new data pays a seek.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from repro.metrics import Metrics
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.hw.params import DiskParams


class Disk:
    """A node-local disk (or RAID0 volume presented as one device)."""

    def __init__(self, env: Environment, node_name: str, params: DiskParams,
                 metrics: Optional[Metrics] = None) -> None:
        self.env = env
        self.node_name = node_name
        self.params = params
        self.metrics = metrics
        self._resource = Resource(env, capacity=1)
        #: (file_id, end_offset) of the last completed operation
        self._head: Optional[Tuple[object, int]] = None
        self.reads = 0
        self.writes = 0
        self.seeks = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_time = 0.0

    def _sequential(self, file_id: object, offset: int) -> bool:
        return self._head == (file_id, offset)

    def io(self, file_id: object, offset: int, nbytes: int,
           write: bool) -> Generator[Event, Any, None]:
        """Process body for one disk operation."""
        if nbytes <= 0:
            return
        with self._resource.request() as req:
            yield req
            sequential = self._sequential(file_id, offset)
            duration = self.params.io_time(nbytes, sequential)
            faults = self.env.faults
            if faults is not None:
                action = faults.disk_action(self)
                if action is not None:
                    if action[0] == "error":
                        # Injected EIO: the injector has already panicked
                        # the owning server; abort the handler's request.
                        from repro.errors import DiskFault

                        raise DiskFault(
                            f"{self.node_name}: injected disk error")
                    duration *= action[1]
            yield self.env.timeout(duration)
            self._head = (file_id, offset + nbytes)
            self.busy_time += duration
            if not sequential:
                self.seeks += 1
            if write:
                self.writes += 1
                self.bytes_written += nbytes
            else:
                self.reads += 1
                self.bytes_read += nbytes
            if self.metrics is not None:
                kind = "write" if write else "read"
                self.metrics.add(f"disk.{kind}s")
                self.metrics.add(f"disk.bytes_{'written' if write else 'read'}",
                                 nbytes)
                if not sequential:
                    self.metrics.add("disk.seeks")

    def read(self, file_id: object, offset: int,
             nbytes: int) -> Generator[Event, Any, None]:
        yield from self.io(file_id, offset, nbytes, write=False)

    def write(self, file_id: object, offset: int,
              nbytes: int) -> Generator[Event, Any, None]:
        yield from self.io(file_id, offset, nbytes, write=True)
