"""Flow-level network model.

Each node owns a :class:`NIC` with independent transmit and receive
resources (Myrinet is full duplex).  A message transfer:

1. acquires the sender's TX slot, then the receiver's RX slot (TX and RX
   are disjoint pools, so the two-step acquisition cannot deadlock);
2. holds both for ``per_message + nbytes / min(tx_bw, rx_bw)``;
3. delivers after one additional one-way ``latency``.

Saturation behaviour is what matters for the paper's figures: many flows
out of one client serialize on its TX (RAID1's 2x bytes flatten Fig 4a);
many clients into one server serialize on its RX (the parity hot spot in
Fig 3).  Single-flow store-and-forward pipelining is approximated — a
documented limitation (DESIGN.md §6).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.metrics import Metrics
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.hw.params import NetworkParams


class NIC:
    """A full-duplex network attachment for one node."""

    def __init__(self, env: Environment, node_name: str,
                 params: NetworkParams) -> None:
        self.env = env
        self.node_name = node_name
        self.params = params
        self.tx = Resource(env, capacity=1)
        self.rx = Resource(env, capacity=1)


def _apply_link_fault(env: Environment, action: tuple, src: NIC, dst: NIC,
                      nbytes: int) -> Generator[Event, Any, None]:
    """Apply an injected message fault (see :mod:`repro.faults`).

    ``drop`` parks forever — the message silently never arrives, and
    only a client RPC timeout rescues the waiter.  ``delay`` stalls the
    message before it takes the wire.  ``dup`` sends the bytes across
    the wire twice (the duplicate burns occupancy; end-to-end
    duplicate *delivery* is exercised by retry-after-delay instead,
    since retried idempotent RPCs really do arrive twice).
    """
    kind = action[0]
    if kind == "drop":
        yield env.event()  # black hole: nothing ever triggers this
    elif kind == "delay":
        yield env.timeout(action[1])
    elif kind == "dup":
        yield from _transfer_timed(env, src, dst, nbytes, None)


def _transfer_timed(env: Environment, src: NIC, dst: NIC, nbytes: int,
                    metrics: Optional[Metrics],
                    ) -> Generator[Event, Any, None]:
    """The fault-free wire movement shared by :func:`transfer`/:func:`stream`."""
    if src is dst:
        # Loopback (e.g. a client co-located with an I/O server): charge
        # only the per-message overhead, no wire time.
        yield env.timeout(src.params.per_message)
        return
    bandwidth = min(src.params.bandwidth, dst.params.bandwidth)
    occupancy = src.params.per_message + nbytes / bandwidth
    with src.tx.request() as tx_req:
        yield tx_req
        with dst.rx.request() as rx_req:
            yield rx_req
            yield env.timeout(occupancy)
    yield env.timeout(src.params.latency)
    if metrics is not None:
        metrics.record_tx(src.node_name, nbytes)
        metrics.record_rx(dst.node_name, nbytes)


def transfer(env: Environment, src: NIC, dst: NIC, nbytes: int,
             metrics: Optional[Metrics] = None) -> Generator[Event, Any, None]:
    """Process body: move ``nbytes`` from ``src``'s node to ``dst``'s node.

    Use as ``yield env.process(transfer(...))`` or ``yield from transfer(...)``.
    """
    if nbytes < 0:
        raise ValueError(f"negative transfer size {nbytes}")
    faults = env.faults
    if faults is not None:
        action = faults.link_action(src, dst, nbytes)
        if action is not None:
            yield from _apply_link_fault(env, action, src, dst, nbytes)
    yield from _transfer_timed(env, src, dst, nbytes, metrics)


def stream(env: Environment, src: NIC, dst: NIC, nbytes: int,
           metrics: Optional[Metrics] = None, cpu=None, cpu_at: str = "dst",
           ) -> Generator[Event, Any, None]:
    """Move ``nbytes`` in segments, overlapping wire and per-byte CPU time.

    Large messages are sent in NIC-segment-sized pieces so (a) concurrent
    flows through one NIC interleave fairly, approximating TCP
    multiplexing, and (b) the per-byte data-handling cost (``cpu``, a
    :class:`~repro.hw.cpu.Cpu`) of the receiving (``cpu_at='dst'``) or
    sending (``cpu_at='src'``) node pipelines with the wire time, the way
    a real server processes a socket while more data is in flight.  The
    slower of the two stages sets the steady-state rate — this is what
    lets aggregate PVFS bandwidth scale with I/O servers until the client
    link saturates (Figure 4a).
    """
    if nbytes <= 0 or cpu is None:
        yield from transfer(env, src, dst, nbytes, metrics)
        return
    # One fault consult per *message*: the segment loop below moves
    # pieces of a single logical transfer, so drop/delay/dup apply to
    # the whole message, not per segment.
    faults = env.faults
    if faults is not None:
        action = faults.link_action(src, dst, nbytes)
        if action is not None:
            yield from _apply_link_fault(env, action, src, dst, nbytes)
    segment = src.params.segment
    sizes = [segment] * (nbytes // segment)
    if nbytes % segment:
        sizes.append(nbytes % segment)

    from repro.sim.resources import Store  # local import to avoid a cycle

    queue = Store(env)

    def wire_stage():
        for size in sizes:
            yield from _transfer_timed(env, src, dst, size, None)
            queue.put(size)

    def cpu_stage():
        for _ in sizes:
            size = yield queue.get()
            yield from cpu.process_bytes(size)

    if cpu_at == "dst":
        stages = [env.process(wire_stage()), env.process(cpu_stage())]
    elif cpu_at == "src":
        def src_cpu_stage():
            for size in sizes:
                yield from cpu.process_bytes(size)
                queue.put(size)

        def src_wire_stage():
            for _ in sizes:
                size = yield queue.get()
                yield from _transfer_timed(env, src, dst, size, None)

        stages = [env.process(src_cpu_stage()), env.process(src_wire_stage())]
    else:
        raise ValueError(f"cpu_at must be 'src' or 'dst', got {cpu_at!r}")
    yield env.all_of(stages)
    if metrics is not None:
        metrics.record_tx(src.node_name, nbytes)
        metrics.record_rx(dst.node_name, nbytes)
