"""Hardware calibration profiles.

Two testbeds from Section 6.1 of the paper:

* ``osu8`` — the 8-node OSU cluster: dual 1 GHz Pentium III, 1 GB RAM,
  Myrinet 2000 (1.3 Gb/s links), two IBM Deskstar 75GXP disks behind a
  3Ware controller in RAID0.
* ``osc`` — the 74-node OSC production cluster: dual 900 MHz Itanium II,
  4 GB RAM, Myrinet, one 80 GB SCSI disk.

Values are period-correct estimates (Myrinet 2000 delivered ~160 MB/s to
applications; a 75GXP streams ~37 MB/s so the 3Ware pair does ~70 MB/s; a
2002 10k SCSI disk streams ~45 MB/s).  The absolute bandwidths the
simulator produces inherit these inputs; the reproduction targets curve
*shapes* (see DESIGN.md §2 and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.units import KiB, MBps, MiB, ms, us


@dataclass(frozen=True)
class NetworkParams:
    """A full-duplex point-to-point network attachment."""

    #: sustained per-direction NIC bandwidth, bytes/s
    bandwidth: float
    #: one-way wire+stack latency, seconds
    latency: float
    #: fixed per-message host overhead (syscall, interrupt, matching), seconds
    per_message: float
    #: streaming segment size, bytes: large transfers move in segments so
    #: concurrent flows share a NIC fairly (TCP-like multiplexing) and
    #: receiver-side processing overlaps the wire time
    segment: int = 128 * 1024

    def transfer_time(self, nbytes: int) -> float:
        """NIC occupancy for one message of ``nbytes`` payload."""
        return self.per_message + nbytes / self.bandwidth


@dataclass(frozen=True)
class DiskParams:
    """A streaming-plus-seek disk model."""

    #: sustained sequential transfer rate, bytes/s
    bandwidth: float
    #: average positioning time (seek + rotational), seconds
    seek: float
    #: fixed per-operation command overhead, seconds
    per_op: float

    def io_time(self, nbytes: int, sequential: bool) -> float:
        t = self.per_op + nbytes / self.bandwidth
        if not sequential:
            t += self.seek
        return t


@dataclass(frozen=True)
class CacheParams:
    """Linux-like page-cache behaviour knobs."""

    #: usable page-cache capacity, bytes (RAM minus OS/application footprint)
    capacity: int
    #: local file-system block size, bytes (ext2 used 4 KiB)
    block_size: int
    #: writers are throttled to disk speed above this many dirty bytes
    dirty_limit_fraction: float = 0.4
    #: the background flusher aims to keep dirty bytes below this
    background_fraction: float = 0.1
    #: background flusher wake interval, seconds (pdflush-ish)
    flush_interval: float = 0.5
    #: readahead window, bytes: Linux 2.4 extended every cold read to a
    #: sizable window regardless of pattern, so random read-modify-write
    #: reads on a loaded disk cost more than their nominal size
    readahead: int = 128 * 1024

    @property
    def dirty_limit(self) -> int:
        return int(self.capacity * self.dirty_limit_fraction)

    @property
    def background_limit(self) -> int:
        return int(self.capacity * self.background_fraction)


@dataclass(frozen=True)
class CpuParams:
    """Per-node CPU cost model (only the costs the paper measures)."""

    #: XOR parity throughput, word-at-a-time kernel, bytes/s
    parity_bandwidth: float
    #: XOR parity throughput, byte-at-a-time kernel, bytes/s (Swift ablation)
    parity_bandwidth_bytewise: float
    #: per-request server-side processing, seconds
    request_overhead: float
    #: extra per-request overhead when accessing through the kernel module
    #: — the 2003 PVFS kmod moved small requests at single-digit MB/s, and
    #: this cost dominating each 16 KB write is what levels the four
    #: schemes for Hartree-Fock in Figure 8 (Section 6.6)
    kernel_module_overhead: float
    #: per-byte server-side data handling (TCP receive, copies, page-cache
    #: insertion), bytes/s.  This — not the NIC — is what capped a 2003
    #: PVFS iod at ~13 MB/s and makes aggregate bandwidth scale with the
    #: number of I/O servers in Figure 4(a).
    byte_rate: float


@dataclass(frozen=True)
class HardwareProfile:
    """Everything needed to instantiate one cluster node."""

    name: str
    network: NetworkParams
    disk: DiskParams
    cache: CacheParams
    cpu: CpuParams
    #: TCP-like receive granularity: how many bytes arrive per non-blocking
    #: socket read at an I/O server (drives the Section 5.2 effect)
    net_chunk: int = 64 * KiB

    def scaled(self, factor: float) -> "HardwareProfile":
        """Profile with page-cache capacity scaled by ``factor``.

        Workloads scaled to ``factor`` of paper size must scale the cache
        identically so cache-overflow crossovers (Fig 7) are preserved.
        """
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        cache = replace(self.cache,
                        capacity=max(int(self.cache.capacity * factor),
                                     4 * self.cache.block_size))
        return replace(self, name=f"{self.name}@{factor:g}", cache=cache)


def _osu8() -> HardwareProfile:
    # Calibration targets (Section 6, small cluster): TCP-over-Myrinet on
    # a 1 GHz PIII delivers ~80 MB/s effective goodput per host; one PVFS
    # iod ingests ~13 MB/s, so RAID1's 2x bytes hit the client link first
    # and flatten early while plain striping keeps scaling through 7 iods
    # (Figure 4a); parity XOR is sized so RAID5 vs RAID5-npc differs by
    # ~8%, and RAID5 writes land near the paper's 73% of RAID0 at 7 iods.
    return HardwareProfile(
        name="osu8",
        network=NetworkParams(bandwidth=80 * MBps, latency=60 * us,
                              per_message=30 * us),
        disk=DiskParams(bandwidth=70 * MBps, seek=8 * ms, per_op=0.2 * ms),
        cache=CacheParams(capacity=768 * MiB, block_size=4 * KiB),
        cpu=CpuParams(parity_bandwidth=1000 * MBps,
                      parity_bandwidth_bytewise=80 * MBps,
                      request_overhead=120 * us,
                      kernel_module_overhead=8 * ms,
                      byte_rate=13 * MBps),
    )


def _osc() -> HardwareProfile:
    # The Itanium-II production cluster: faster iods (~65 MB/s ingest) in
    # front of a single SCSI disk whose *sustained* writeback rate —
    # two local files, concurrent per-rank extents, metadata — is well
    # below its streaming spec (~30 MB/s effective).  Ingest outrunning
    # writeback is what makes Class C's data volume overflow the page
    # cache under RAID1's 2x bytes and throttle writers to disk speed
    # (Figure 7); Linux 2.4's conservative dirty thresholds mean the
    # usable write-behind cushion is ~1 GiB of the 4 GB RAM.
    return HardwareProfile(
        name="osc",
        network=NetworkParams(bandwidth=100 * MBps, latency=60 * us,
                              per_message=30 * us),
        disk=DiskParams(bandwidth=30 * MBps, seek=7 * ms, per_op=0.2 * ms),
        cache=CacheParams(capacity=1024 * MiB, block_size=4 * KiB),
        cpu=CpuParams(parity_bandwidth=1500 * MBps,
                      parity_bandwidth_bytewise=120 * MBps,
                      request_overhead=120 * us,
                      kernel_module_overhead=8 * ms,
                      byte_rate=65 * MBps),
    )


PROFILES = {
    "osu8": _osu8(),
    "osc": _osc(),
}


def get_profile(name: str) -> HardwareProfile:
    """Look up a calibration profile by name (``osu8`` or ``osc``)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown hardware profile {name!r}; known: {sorted(PROFILES)}"
        ) from None
