"""Calibrated hardware models: NICs, disks, page caches, CPUs, nodes."""

from repro.hw.cache import PageCache
from repro.hw.cpu import Cpu
from repro.hw.disk import Disk
from repro.hw.link import NIC, transfer
from repro.hw.node import Node
from repro.hw.params import (
    CacheParams,
    CpuParams,
    DiskParams,
    HardwareProfile,
    NetworkParams,
    PROFILES,
    get_profile,
)

__all__ = [
    "PageCache",
    "Cpu",
    "Disk",
    "NIC",
    "transfer",
    "Node",
    "CacheParams",
    "CpuParams",
    "DiskParams",
    "HardwareProfile",
    "NetworkParams",
    "PROFILES",
    "get_profile",
]
