"""Linux-like page cache, extent-granular.

The cache mediates every local-file read and write on an I/O server and
reproduces the three behaviours the paper's evaluation hinges on:

* **read caching** — warm re-reads are free (Fig 4b's "old data and parity
  are found in the file system cache");
* **write-behind with dirty throttling** — writes are absorbed at memory
  speed until dirty data exceeds a limit, then writers are throttled to
  disk speed (the RAID1 collapse in Fig 7: twice the bytes overflow the
  server caches first);
* **partial-block read-before-write** — writing part of a block whose old
  contents exist on disk but not in cache forces a block read first
  (Section 5.2).  The write-buffering fix limits partial-block writes to
  the two edges of a request; without it, every network-chunk boundary can
  trigger one.

State is tracked as byte extents per file (not per-page dicts) so
multi-gigabyte Class C runs stay cheap; an OrderedDict over files provides
the LRU for eviction.  All extent queries on this path use the tuple
iterators (``overlap_iter``/``gaps_iter``/``overlap_len``) so no
:class:`~repro.util.intervals.Extent` objects are allocated per block.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.metrics import Metrics
from repro.sim.engine import Environment, Event
from repro.util.intervals import ExtentMap
from repro.hw.disk import Disk
from repro.hw.params import CacheParams

#: Largest single disk operation issued by writeback/readahead coalescing.
MAX_IO = 1 << 20


class _FileEntry:
    __slots__ = ("cached", "dirty")

    def __init__(self) -> None:
        self.cached = ExtentMap()
        self.dirty = ExtentMap()


class PageCache:
    """One node's unified page cache in front of one disk."""

    def __init__(self, env: Environment, node_name: str, params: CacheParams,
                 disk: Disk, metrics: Optional[Metrics] = None) -> None:
        self.env = env
        self.node_name = node_name
        self.params = params
        self.disk = disk
        self.metrics = metrics
        self._files: "OrderedDict[object, _FileEntry]" = OrderedDict()
        self.usage = 0
        self.dirty_bytes = 0
        self._flusher_proc = None

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------
    def _entry(self, file_id: object) -> _FileEntry:
        entry = self._files.get(file_id)
        if entry is None:
            entry = _FileEntry()
            self._files[file_id] = entry
        else:
            self._files.move_to_end(file_id)
        return entry

    def _cover(self, entry: _FileEntry, start: int, end: int) -> int:
        """Add ``[start, end)`` to the cached set; returns new bytes."""
        already = entry.cached.overlap_len(start, end)
        entry.cached.add(start, end)
        added = (end - start) - already
        self.usage += added
        return added

    def _mark_dirty(self, entry: _FileEntry, start: int, end: int) -> None:
        already = entry.dirty.overlap_len(start, end)
        entry.dirty.add(start, end)
        self.dirty_bytes += (end - start) - already

    def cached_extents(self, file_id: object) -> ExtentMap:
        entry = self._files.get(file_id)
        return entry.cached.copy() if entry else ExtentMap()

    def is_cached(self, file_id: object, start: int, end: int) -> bool:
        entry = self._files.get(file_id)
        return entry is not None and entry.cached.contains(start, end)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, file_id: object, start: int, end: int,
             allocated: ExtentMap) -> Generator[Event, Any, None]:
        """Bring ``[start, end)`` into cache, reading misses from disk.

        ``allocated`` is the file's on-disk extent map; holes are sparse
        zeros and cost nothing.
        """
        if end <= start:
            return
        entry = self._entry(file_id)
        bs = self.params.block_size
        hit = entry.cached.overlap_len(start, end)
        missing: List[Tuple[int, int]] = []
        for gap_start, gap_end in entry.cached.gaps_iter(start, end):
            missing.extend(allocated.overlap_iter(gap_start, gap_end))
        if self.metrics is not None:
            self.metrics.add("cache.hit_bytes", hit)
            self.metrics.add("cache.miss_bytes",
                             sum(e - s for s, e in missing))
        for miss_start, miss_end in missing:
            # Page-align the disk read, extend to the readahead window,
            # clip to allocation.
            lo = (miss_start // bs) * bs
            hi = -(-miss_end // bs) * bs
            if hi - lo < self.params.readahead:
                hi = lo + self.params.readahead
            hi = min(hi, max(allocated.max_end(), miss_end))
            offset = lo
            while offset < hi:
                step = min(MAX_IO, hi - offset)
                yield from self.disk.read(file_id, offset, step)
                offset += step
            self._cover(entry, lo, hi)
        # Everything requested (including sparse holes) now counts cached.
        self._cover(entry, start, end)
        yield from self._evict_if_needed(exclude=file_id)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def write(self, file_id: object, start: int, end: int,
              allocated: ExtentMap,
              cut_points: Iterable[int] = ()) -> Generator[Event, Any, None]:
        """Absorb a write of ``[start, end)``.

        ``cut_points`` are the file offsets at which the server's local
        write calls begin/end *inside* the request (chunked arrival without
        write buffering).  Every block containing an unaligned boundary —
        the request edges plus each cut point — is written partially at
        first touch; if its old contents are on disk and not cached, it
        must be read first (Section 5.2).
        """
        yield from self.write_many(file_id, ((start, end),), allocated,
                                   cut_points)

    def write_many(self, file_id: object,
                   ranges: Iterable[Tuple[int, int]],
                   allocated: ExtentMap,
                   cut_points: Iterable[int] = (),
                   ) -> Generator[Event, Any, None]:
        """Absorb several byte ranges of one request in a single pass.

        The vectored companion of :meth:`write`: a scatter-gathered
        server write (e.g. a multi-piece overflow append) charges all of
        its ranges with one throttle/eviction pass, the way one local
        ``writev`` would.  For a single range this is exactly
        :meth:`write`.
        """
        ranges = [(s, e) for s, e in ranges if e > s]
        if not ranges:
            return
        entry = self._entry(file_id)
        bs = self.params.block_size
        boundaries = set()
        for start, end in ranges:
            boundaries.add(start)
            boundaries.add(end)
        boundaries.update(cut_points)
        penalty_blocks: List[Tuple[int, int]] = []
        seen = set()
        for p in sorted(boundaries):
            if p % bs == 0:
                continue  # block-aligned boundary: no partial write
            block_lo = (p // bs) * bs
            if block_lo in seen:
                continue
            seen.add(block_lo)
            block_hi = block_lo + bs
            old = list(allocated.overlap_iter(block_lo, block_hi))
            if not old:
                continue  # no old data: allocator just zero-fills
            # Resident when every *allocated* byte of the block is cached
            # (holes within the block need no read).
            if all(entry.cached.contains(piece_start, piece_end)
                   for piece_start, piece_end in old):
                continue
            penalty_blocks.append((block_lo, block_hi))
        for block_lo, block_hi in penalty_blocks:
            hi = min(block_hi, max(allocated.max_end(), block_lo))
            if hi > block_lo:
                yield from self.disk.read(file_id, block_lo, hi - block_lo)
                self._cover(entry, block_lo, hi)
                if self.metrics is not None:
                    self.metrics.add("cache.partial_block_reads")
                    self.metrics.add("cache.partial_block_read_bytes",
                                     hi - block_lo)
        for start, end in ranges:
            self._cover(entry, start, end)
            self._mark_dirty(entry, start, end)
        if self.metrics is not None:
            self.metrics.add("cache.write_bytes",
                             sum(e - s for s, e in ranges))
        yield from self._throttle()
        yield from self._evict_if_needed(exclude=file_id)

    # ------------------------------------------------------------------
    # writeback / eviction
    # ------------------------------------------------------------------
    def _pick_dirty(self) -> Optional[Tuple[object, int, int]]:
        """Oldest file's lowest dirty extent (elevator-ish order)."""
        for file_id, entry in self._files.items():
            for ext_start, ext_end in entry.dirty.iter_tuples():
                return file_id, ext_start, ext_end
        return None

    def _writeback_some(self, target_bytes: int) -> Generator[Event, Any, int]:
        """Flush up to ``target_bytes`` of dirty data; returns bytes flushed."""
        flushed = 0
        while flushed < target_bytes:
            pick = self._pick_dirty()
            if pick is None:
                break
            file_id, ext_start, ext_end = pick
            entry = self._files[file_id]
            length = min(ext_end - ext_start, MAX_IO)
            # Claim the extent *before* the disk write so concurrent
            # flushers (fsync handlers, the background daemon, throttled
            # writers) never write the same bytes twice.
            entry.dirty.remove(ext_start, ext_start + length)
            self.dirty_bytes -= length
            yield from self.disk.write(file_id, ext_start, length)
            flushed += length
            if self.metrics is not None:
                self.metrics.add("cache.writeback_bytes", length)
        return flushed

    def _throttle(self) -> Generator[Event, Any, None]:
        """Synchronous writeback charged to the writer when over the limit."""
        limit = self.params.dirty_limit
        if self.dirty_bytes <= limit:
            return
        t0 = self.env.now
        while self.dirty_bytes > limit:
            done = yield from self._writeback_some(MAX_IO)
            if done == 0:
                break
        if self.metrics is not None:
            self.metrics.add("cache.throttle_time", self.env.now - t0)

    def _evict_if_needed(self, exclude: object = None) -> Generator[Event, Any, None]:
        """Drop clean extents (coldest file first) until under capacity."""
        while self.usage > self.params.capacity:
            evicted = False
            for file_id in list(self._files):
                if file_id == exclude and len(self._files) > 1:
                    continue
                entry = self._files[file_id]
                for ext_start, ext_end in list(entry.cached.iter_tuples()):
                    for clean_start, clean_end in list(
                            entry.dirty.gaps_iter(ext_start, ext_end)):
                        length = clean_end - clean_start
                        entry.cached.remove(clean_start, clean_end)
                        self.usage -= length
                        if self.metrics is not None:
                            self.metrics.add("cache.evicted_bytes", length)
                        evicted = True
                        if self.usage <= self.params.capacity:
                            return
                if evicted:
                    break
            if not evicted:
                # Everything is dirty: reclaim must clean pages first.
                done = yield from self._writeback_some(MAX_IO)
                if done == 0:
                    return  # cache smaller than one in-flight write; give up

    # ------------------------------------------------------------------
    # external control
    # ------------------------------------------------------------------
    def fsync(self, file_id: object) -> Generator[Event, Any, None]:
        """Flush every dirty byte of one file to disk."""
        entry = self._files.get(file_id)
        if entry is None:
            return
        while entry.dirty:
            ext_start, ext_end = next(entry.dirty.iter_tuples())
            length = min(ext_end - ext_start, MAX_IO)
            # Claim before writing (see _writeback_some).
            entry.dirty.remove(ext_start, ext_start + length)
            self.dirty_bytes -= length
            yield from self.disk.write(file_id, ext_start, length)
            if self.metrics is not None:
                self.metrics.add("cache.writeback_bytes", length)

    def sync(self) -> Generator[Event, Any, None]:
        """Flush all dirty data on this node."""
        for file_id in list(self._files):
            yield from self.fsync(file_id)

    def drop(self) -> Generator[Event, Any, None]:
        """``echo 3 > drop_caches``: sync, then forget everything."""
        yield from self.sync()
        self._files.clear()
        self.usage = 0
        self.dirty_bytes = 0

    def start_flusher(self) -> None:
        """Launch the background flusher (idempotent)."""
        if self._flusher_proc is None or not self._flusher_proc.is_alive:
            self._flusher_proc = self.env.process(
                self._flusher(), name=f"flusher:{self.node_name}")

    def _flusher(self) -> Generator[Event, Any, None]:
        """pdflush-like daemon: keep dirty bytes near the background limit."""
        while True:
            yield self.env.timeout(self.params.flush_interval)
            limit = self.params.background_limit
            while self.dirty_bytes > limit:
                done = yield from self._writeback_some(MAX_IO)
                if done == 0:
                    break
