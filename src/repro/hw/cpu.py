"""Per-node CPU cost model.

Only the compute costs the paper quantifies are modeled: XOR parity
(Fig 4a's RAID5 vs RAID5-npc gap, ~8%), fixed per-request server
processing, and the extra kernel-module crossing cost that levels the
Hartree-Fock results in Section 6.6.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.hw.params import CpuParams


class Cpu:
    """One node's processor as a serialized compute resource."""

    def __init__(self, env: Environment, node_name: str,
                 params: CpuParams) -> None:
        self.env = env
        self.node_name = node_name
        self.params = params
        self._resource = Resource(env, capacity=1)
        self.busy_time = 0.0

    def _occupy(self, duration: float) -> Generator[Event, Any, None]:
        if duration <= 0:
            return
        with self._resource.request() as req:
            yield req
            yield self.env.timeout(duration)
            self.busy_time += duration

    def compute_parity(self, nbytes: int,
                       bytewise: bool = False) -> Generator[Event, Any, None]:
        """XOR ``nbytes`` of stripe data (word-wise unless ``bytewise``)."""
        rate = (self.params.parity_bandwidth_bytewise if bytewise
                else self.params.parity_bandwidth)
        yield from self._occupy(nbytes / rate)

    def request_processing(self) -> Generator[Event, Any, None]:
        """Fixed server-side cost of handling one protocol request."""
        yield from self._occupy(self.params.request_overhead)

    def process_bytes(self, nbytes: int) -> Generator[Event, Any, None]:
        """Per-byte data handling (TCP receive/send, copies, cache insert).

        The dominant server-side cost in 2003-era PVFS; this resource —
        one per node, shared by all concurrent request handlers — is what
        caps a single iod's delivered bandwidth.
        """
        yield from self._occupy(nbytes / self.params.byte_rate)

    def kernel_module_crossing(self) -> Generator[Event, Any, None]:
        """Extra client-side cost when I/O goes through the kernel module."""
        yield from self._occupy(self.params.kernel_module_overhead)
