"""A cluster node: NIC + disk + page cache + CPU under one name."""

from __future__ import annotations

from typing import Optional

from repro.metrics import Metrics
from repro.sim.engine import Environment
from repro.hw.cache import PageCache
from repro.hw.cpu import Cpu
from repro.hw.disk import Disk
from repro.hw.link import NIC
from repro.hw.params import HardwareProfile


class Node:
    """One physical machine of the simulated cluster."""

    def __init__(self, env: Environment, name: str, profile: HardwareProfile,
                 metrics: Optional[Metrics] = None) -> None:
        self.env = env
        self.name = name
        self.profile = profile
        self.metrics = metrics
        self.nic = NIC(env, name, profile.network)
        self.disk = Disk(env, name, profile.disk, metrics)
        self.cache = PageCache(env, name, profile.cache, self.disk, metrics)
        self.cpu = Cpu(env, name, profile.cpu)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.name} ({self.profile.name})>"
