"""A sparse local file: extent map plus (optionally) real content.

Each I/O daemon keeps several of these per PVFS file — the data file, the
redundancy (mirror or parity) file, and under the Hybrid scheme the
overflow files.  ``BlockFile`` is purely functional state; all timing goes
through the :class:`repro.hw.cache.PageCache` in :class:`repro.storage.localfs.LocalFS`.

Content is stored in fixed-size pages allocated on first touch, like the
sparse files it models: a streaming append never copies old data (the
contiguous-buffer representation spent more time growing the buffer than
landing bytes), holes cost nothing, and page allocation is lazy calloc.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.storage.payload import Payload
from repro.util.intervals import ExtentMap

#: Content page size: allocation and copy granularity of the store.
_PAGE = 1 << 20

#: Optional torn-write interceptor installed by
#: :func:`repro.faults.injector.install`.  Called as ``hook(block,
#: offset, payload)``; returns ``None`` (no fault) or ``(prefix,
#: exception)`` — the write persists only ``prefix`` (possibly
#: ``None``), then raises, modeling a torn partial write.  Module-level
#: like the payload capture hook, because a BlockFile holds no
#: environment reference.
_torn_hook = None


def set_torn_hook(hook) -> None:
    """Install (or, with ``None``, remove) the torn-write interceptor."""
    global _torn_hook
    _torn_hook = hook


class BlockFile:
    """Sparse byte store with allocation tracking.

    Unwritten ("hole") ranges read back as zeros, exactly like a sparse
    Unix file; reads in extent mode return virtual payloads.
    """

    def __init__(self, name: str, content_mode: bool = True) -> None:
        self.name = name
        self.content_mode = content_mode
        self.allocated = ExtentMap()
        self._pages: Dict[int, np.ndarray] = {}
        #: Index of the I/O server this file lives on (``None`` outside
        #: a daemon); lets the fault injector target torn writes.
        self.owner = None

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """What ``ls -l`` would report: the end of the last written byte."""
        return self.allocated.max_end()

    @property
    def allocated_bytes(self) -> int:
        """What ``du`` would report (ignoring holes)."""
        return self.allocated.total()

    def _page(self, index: int) -> np.ndarray:
        page = self._pages.get(index)
        if page is None:
            page = self._pages[index] = np.zeros(_PAGE, dtype=np.uint8)
        return page

    def _store(self, lo: int, arr: np.ndarray) -> None:
        """Copy ``arr`` into the page store at byte offset ``lo``."""
        cursor, apos, end = lo, 0, lo + arr.size
        while cursor < end:
            index, intra = divmod(cursor, _PAGE)
            take = min(_PAGE - intra, end - cursor)
            self._page(index)[intra: intra + take] = arr[apos: apos + take]
            cursor += take
            apos += take

    def _zero(self, lo: int, hi: int) -> None:
        """Zero ``[lo, hi)`` without allocating untouched pages."""
        cursor = lo
        while cursor < hi:
            index, intra = divmod(cursor, _PAGE)
            take = min(_PAGE - intra, hi - cursor)
            page = self._pages.get(index)
            if page is not None:
                page[intra: intra + take] = 0
            cursor += take

    # ------------------------------------------------------------------
    def write(self, offset: int, payload: Payload) -> None:
        """Store ``payload`` at ``offset``.

        Consumes the payload segment-wise, so scatter-gathered writes
        land without ever flattening; gaps between segments are written
        as zeros (they are part of the payload's content).
        """
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        abort = None
        if _torn_hook is not None:
            tear = _torn_hook(self, offset, payload)
            if tear is not None:
                payload, abort = tear
                if payload is None:
                    raise abort
        if payload.length == 0:
            if abort is not None:
                raise abort
            return
        end = offset + payload.length
        self.allocated.add(offset, end)
        if self.content_mode:
            if payload.is_virtual:
                raise ValueError(
                    f"virtual payload written to content-mode file {self.name}")
            cursor = offset
            for at, seg in payload.iter_segments():
                lo = offset + at
                if lo > cursor:
                    self._zero(cursor, lo)
                self._store(lo, seg)
                cursor = lo + seg.size
            if end > cursor:
                self._zero(cursor, end)
        if abort is not None:
            raise abort

    def read(self, offset: int, length: int) -> Payload:
        if offset < 0 or length < 0:
            raise ValueError(f"bad read [{offset}, +{length})")
        if not self.content_mode:
            return Payload.virtual(length)
        end = offset + length
        out = np.zeros(length, dtype=np.uint8)
        cursor = offset
        while cursor < end:
            index, intra = divmod(cursor, _PAGE)
            take = min(_PAGE - intra, end - cursor)
            page = self._pages.get(index)
            if page is not None:
                out[cursor - offset: cursor - offset + take] = \
                    page[intra: intra + take]
            cursor += take
        # Mask out holes so punched/stale page content never leaks.
        for gap_start, gap_end in self.allocated.gaps_iter(offset, end):
            out[gap_start - offset: gap_end - offset] = 0
        return Payload(length, out)

    def punch_hole(self, offset: int, length: int) -> None:
        """Deallocate a range (used by the overflow reclaimer)."""
        self.allocated.remove(offset, offset + length)
        if self.content_mode:
            self._zero(offset, offset + length)

    def truncate(self) -> None:
        """Drop all contents."""
        self.allocated.clear()
        self._pages.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "content" if self.content_mode else "extent"
        return f"<BlockFile {self.name!r} {mode} size={self.size}>"
