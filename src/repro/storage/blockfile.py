"""A sparse local file: extent map plus (optionally) real content.

Each I/O daemon keeps several of these per PVFS file — the data file, the
redundancy (mirror or parity) file, and under the Hybrid scheme the
overflow files.  ``BlockFile`` is purely functional state; all timing goes
through the :class:`repro.hw.cache.PageCache` in :class:`repro.storage.localfs.LocalFS`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.storage.payload import Payload
from repro.util.intervals import ExtentMap

#: Content arrays grow in chunks of this many bytes to amortize resizing.
_GROW = 1 << 20


class BlockFile:
    """Sparse byte store with allocation tracking.

    Unwritten ("hole") ranges read back as zeros, exactly like a sparse
    Unix file; reads in extent mode return virtual payloads.
    """

    def __init__(self, name: str, content_mode: bool = True) -> None:
        self.name = name
        self.content_mode = content_mode
        self.allocated = ExtentMap()
        self._buf: Optional[np.ndarray] = (
            np.zeros(0, dtype=np.uint8) if content_mode else None)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """What ``ls -l`` would report: the end of the last written byte."""
        return self.allocated.max_end()

    @property
    def allocated_bytes(self) -> int:
        """What ``du`` would report (ignoring holes)."""
        return self.allocated.total()

    def _ensure_capacity(self, end: int) -> None:
        assert self._buf is not None
        if end > self._buf.size:
            new_size = max(end, self._buf.size + _GROW)
            grown = np.zeros(new_size, dtype=np.uint8)
            grown[: self._buf.size] = self._buf
            self._buf = grown

    # ------------------------------------------------------------------
    def write(self, offset: int, payload: Payload) -> None:
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if payload.length == 0:
            return
        end = offset + payload.length
        self.allocated.add(offset, end)
        if self.content_mode:
            if payload.is_virtual:
                raise ValueError(
                    f"virtual payload written to content-mode file {self.name}")
            self._ensure_capacity(end)
            self._buf[offset:end] = payload.data

    def read(self, offset: int, length: int) -> Payload:
        if offset < 0 or length < 0:
            raise ValueError(f"bad read [{offset}, +{length})")
        if not self.content_mode:
            return Payload.virtual(length)
        end = offset + length
        out = np.zeros(length, dtype=np.uint8)
        avail = min(end, self._buf.size)
        if avail > offset:
            out[: avail - offset] = self._buf[offset:avail]
        # Mask out holes so stale buffer growth never leaks.
        for gap_start, gap_end in self.allocated.gaps_iter(offset, end):
            out[gap_start - offset: gap_end - offset] = 0
        return Payload(length, out)

    def punch_hole(self, offset: int, length: int) -> None:
        """Deallocate a range (used by the overflow reclaimer)."""
        self.allocated.remove(offset, offset + length)
        if self.content_mode and self._buf is not None:
            end = min(offset + length, self._buf.size)
            if end > offset:
                self._buf[offset:end] = 0

    def truncate(self) -> None:
        """Drop all contents."""
        self.allocated.clear()
        if self.content_mode:
            self._buf = np.zeros(0, dtype=np.uint8)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "content" if self.content_mode else "extent"
        return f"<BlockFile {self.name!r} {mode} size={self.size}>"
