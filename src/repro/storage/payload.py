"""Data payloads that may or may not carry real bytes.

The whole CSAR stack moves :class:`Payload` objects.  In *content mode*
payloads hold numpy ``uint8`` arrays and every parity/mirror/reconstruction
operation is computed for real — this is what the correctness tests and
failure-injection tests exercise.  In *extent mode* payloads are virtual
(length only), which lets the benchmark harness run paper-scale data volumes
(Class C writes 6.6 GB) without materializing them; the simulated timing is
identical because the hardware models only ever look at lengths.

Mixing is handled conservatively: any operation involving a virtual operand
yields a virtual result.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.util.parity import xor_bytes


class Payload:
    """An immutable byte string of known length, possibly virtual."""

    __slots__ = ("length", "data")

    def __init__(self, length: int, data: Optional[np.ndarray]) -> None:
        if length < 0:
            raise ValueError(f"negative payload length {length}")
        if data is not None:
            if data.dtype != np.uint8:
                raise TypeError("payload data must be uint8")
            if data.size != length:
                raise ValueError(
                    f"payload length {length} != data size {data.size}")
        self.length = length
        self.data = data

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_bytes(cls, raw: bytes | bytearray | memoryview) -> "Payload":
        arr = np.frombuffer(bytes(raw), dtype=np.uint8)
        return cls(arr.size, arr)

    @classmethod
    def zeros(cls, length: int) -> "Payload":
        return cls(length, np.zeros(length, dtype=np.uint8))

    @classmethod
    def virtual(cls, length: int) -> "Payload":
        return cls(length, None)

    @classmethod
    def pattern(cls, length: int, seed: int) -> "Payload":
        """Deterministic pseudo-random content, for end-to-end data checks."""
        rng = np.random.default_rng(seed)
        return cls(length, rng.integers(0, 256, length, dtype=np.uint8))

    # -- predicates --------------------------------------------------------
    @property
    def is_virtual(self) -> bool:
        return self.data is None

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        if self.length != other.length:
            return False
        if self.is_virtual or other.is_virtual:
            return self.is_virtual and other.is_virtual
        return bool(np.array_equal(self.data, other.data))

    def __hash__(self) -> int:  # payloads are not meant as dict keys
        raise TypeError("Payload is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "virtual" if self.is_virtual else "real"
        return f"<Payload {kind} len={self.length}>"

    # -- operations ---------------------------------------------------------
    def to_bytes(self) -> bytes:
        if self.is_virtual:
            raise ValueError("virtual payload has no content")
        return self.data.tobytes()

    def slice(self, start: int, end: int) -> "Payload":
        if not (0 <= start <= end <= self.length):
            raise ValueError(
                f"slice [{start},{end}) outside payload of {self.length}")
        if self.is_virtual:
            return Payload.virtual(end - start)
        return Payload(end - start, self.data[start:end].copy())

    def concat(self, other: "Payload") -> "Payload":
        if self.is_virtual or other.is_virtual:
            return Payload.virtual(self.length + other.length)
        return Payload(self.length + other.length,
                       np.concatenate([self.data, other.data]))

    @staticmethod
    def xor(parts: Sequence["Payload"], length: int) -> "Payload":
        """Parity of ``parts``, zero-padded/truncated to ``length``."""
        if any(p.is_virtual for p in parts):
            return Payload.virtual(length)
        raw = xor_bytes([p.data for p in parts], length=length)
        return Payload.from_bytes(raw)

    @classmethod
    def assemble(cls, length: int,
                 parts: Sequence[tuple[int, "Payload"]]) -> "Payload":
        """Build a payload of ``length`` from ``(offset, piece)`` parts.

        Unfilled gaps are zeros; any virtual part makes the result virtual.
        """
        if any(piece.is_virtual for _at, piece in parts):
            return cls.virtual(length)
        buf = np.zeros(length, dtype=np.uint8)
        for at, piece in parts:
            if at < 0 or at + piece.length > length:
                raise ValueError(
                    f"part [{at}, +{piece.length}) outside payload of {length}")
            buf[at: at + piece.length] = piece.data
        return cls(length, buf)

    def xor_at(self, at: int, other: "Payload") -> "Payload":
        """A copy with ``other`` XOR-ed into the region starting at ``at``.

        The RAID5 read-modify-write primitive: fold an old/new data delta
        into the matching region of a parity block.
        """
        if at < 0 or at + other.length > self.length:
            raise ValueError(
                f"xor region [{at}, +{other.length}) outside payload "
                f"of {self.length}")
        if self.is_virtual or other.is_virtual:
            return Payload.virtual(self.length)
        buf = self.data.copy()
        np.bitwise_xor(buf[at: at + other.length], other.data,
                       out=buf[at: at + other.length])
        return Payload(self.length, buf)

    def overlay(self, at: int, patch: "Payload") -> "Payload":
        """A copy with ``patch`` written at offset ``at`` (grows if needed)."""
        end = at + patch.length
        new_len = max(self.length, end)
        if self.is_virtual or patch.is_virtual:
            return Payload.virtual(new_len)
        buf = np.zeros(new_len, dtype=np.uint8)
        buf[: self.length] = self.data
        buf[at:end] = patch.data
        return Payload(new_len, buf)
