"""Data payloads that may or may not carry real bytes.

The whole CSAR stack moves :class:`Payload` objects.  In *content mode*
payloads hold numpy ``uint8`` arrays and every parity/mirror/reconstruction
operation is computed for real — this is what the correctness tests and
failure-injection tests exercise.  In *extent mode* payloads are virtual
(length only), which lets the benchmark harness run paper-scale data volumes
(Class C writes 6.6 GB) without materializing them; the simulated timing is
identical because the hardware models only ever look at lengths.

Mixing is handled conservatively: any operation involving a virtual operand
yields a virtual result.

Content-mode payloads are **zero-copy**: ``slice()`` returns a read-only
numpy *view* of the source buffer, and ``concat``/``assemble``/``overlay``
build a :class:`SegmentedPayload` — a rope of ``(offset, array)`` segments
over the original buffers — instead of allocating.  Buffers are frozen
(``writeable=False``) when a payload captures them, so immutability is
preserved even though views alias their sources.  The bytes are only
materialized into one contiguous buffer at content-verification
boundaries: ``data``/``to_bytes``/``__eq__`` (and a defensive cap on
segment-count growth).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.parity import xor_into_at, xor_segments

#: A rope with more segments than this is materialized into one buffer;
#: deep overlay chains would otherwise degrade every later operation.
_MAX_SEGMENTS = 256

#: One ``(offset, uint8-array)`` fragment of a payload's content.
Segment = Tuple[int, np.ndarray]

#: Optional observer invoked as ``hook(payload, array, kind)`` at the
#: moment a payload captures a buffer (``kind`` is ``"payload"`` for a
#: contiguous capture, ``"segment"`` per rope segment, and
#: ``"materialized"`` for a rope's cached flattening).  Installed by
#: :func:`repro.analysis.bufsan.install`; kept as a module-level hook so
#: the storage layer never imports the analysis package.  Costs one
#: ``None``-check per capture when disabled.
_capture_hook: Optional[Callable[["Payload", np.ndarray, str], None]] = None


def set_capture_hook(
        hook: Optional[Callable[["Payload", np.ndarray, str], None]],
) -> None:
    """Install (or, with ``None``, remove) the buffer-capture observer."""
    global _capture_hook
    _capture_hook = hook


def _freeze(arr: np.ndarray) -> np.ndarray:
    if arr.flags.writeable:
        arr.flags.writeable = False
    return arr


class Payload:
    """An immutable byte string of known length, possibly virtual."""

    __slots__ = ("length", "_data")

    def __init__(self, length: int, data: Optional[np.ndarray]) -> None:
        if length < 0:
            raise ValueError(f"negative payload length {length}")
        if data is not None:
            if data.dtype != np.uint8:
                raise TypeError("payload data must be uint8")
            if data.size != length:
                raise ValueError(
                    f"payload length {length} != data size {data.size}")
            # Freeze the buffer: payloads are immutable, and slices are
            # views, so the backing store must never change underneath a
            # previously taken slice.
            _freeze(data)
            if _capture_hook is not None:
                _capture_hook(self, data, "payload")
        self.length = length
        self._data = data

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_bytes(cls, raw: bytes | bytearray | memoryview) -> "Payload":
        arr = np.frombuffer(bytes(raw), dtype=np.uint8)
        return cls(arr.size, arr)

    @classmethod
    def zeros(cls, length: int) -> "Payload":
        return cls(length, np.zeros(length, dtype=np.uint8))

    @classmethod
    def sparse(cls, length: int) -> "Payload":
        """All-zero content without allocating: an empty rope.

        Observably identical to :meth:`zeros` but free to build and free
        to overlay onto — the I/O daemons use it as the base for
        overflow-resolution reads.
        """
        return SegmentedPayload(length, ())

    @classmethod
    def virtual(cls, length: int) -> "Payload":
        return cls(length, None)

    @classmethod
    def pattern(cls, length: int, seed: int) -> "Payload":
        """Deterministic pseudo-random content, for end-to-end data checks."""
        rng = np.random.default_rng(seed)
        return cls(length, rng.integers(0, 256, length, dtype=np.uint8))

    # -- predicates --------------------------------------------------------
    @property
    def data(self) -> Optional[np.ndarray]:
        """The content as one read-only array (``None`` when virtual)."""
        return self._data

    @property
    def is_virtual(self) -> bool:
        return self._data is None

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        if self.length != other.length:
            return False
        if self.is_virtual or other.is_virtual:
            return self.is_virtual and other.is_virtual
        return bool(np.array_equal(self.data, other.data))

    def __hash__(self) -> int:  # payloads are not meant as dict keys
        raise TypeError("Payload is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "virtual" if self.is_virtual else "real"
        return f"<Payload {kind} len={self.length}>"

    # -- scatter-gather protocol -------------------------------------------
    def iter_segments(self) -> Iterator[Segment]:
        """The content as ascending, disjoint ``(offset, array)`` pieces.

        Uncovered gaps are zeros.  Virtual payloads yield nothing —
        callers must check :attr:`is_virtual` first, exactly as with
        :attr:`data`.
        """
        if self._data is not None and self.length:
            yield (0, self._data)

    def _writable_copy(self) -> np.ndarray:
        """Materialize the content into a fresh writable buffer."""
        buf = np.zeros(self.length, dtype=np.uint8)
        for at, seg in self.iter_segments():
            buf[at: at + seg.size] = seg
        return buf

    # -- operations ---------------------------------------------------------
    def to_bytes(self) -> bytes:
        if self.is_virtual:
            raise ValueError("virtual payload has no content")
        return self.data.tobytes()

    def slice(self, start: int, end: int) -> "Payload":
        """A read-only zero-copy view of ``[start, end)``."""
        if not (0 <= start <= end <= self.length):
            raise ValueError(
                f"slice [{start},{end}) outside payload of {self.length}")
        if self.is_virtual:
            return Payload.virtual(end - start)
        return Payload(end - start, self._data[start:end])

    def concat(self, other: "Payload") -> "Payload":
        if self.is_virtual or other.is_virtual:
            return Payload.virtual(self.length + other.length)
        segments = list(self.iter_segments())
        segments.extend((self.length + at, seg)
                        for at, seg in other.iter_segments())
        return _from_segments(self.length + other.length, segments)

    @staticmethod
    def xor(parts: Sequence["Payload"], length: int) -> "Payload":
        """Parity of ``parts``, zero-padded/truncated to ``length``."""
        if any(p.is_virtual for p in parts):
            return Payload.virtual(length)
        acc = xor_segments((p.iter_segments() for p in parts), length)
        return Payload(length, acc)

    @classmethod
    def assemble(cls, length: int,
                 parts: Sequence[tuple[int, "Payload"]]) -> "Payload":
        """Build a payload of ``length`` from ``(offset, piece)`` parts.

        Unfilled gaps are zeros; any virtual part makes the result virtual.
        Disjoint parts (the scatter-gather common case) are chained as
        segments without copying; overlapping parts fall back to
        materializing, with later parts overwriting earlier ones.
        """
        if any(piece.is_virtual for _at, piece in parts):
            return cls.virtual(length)
        for at, piece in parts:
            if at < 0 or at + piece.length > length:
                raise ValueError(
                    f"part [{at}, +{piece.length}) outside payload of {length}")
        placed = sorted((at, i, piece) for i, (at, piece) in enumerate(parts)
                        if piece.length)
        segments: List[Segment] = []
        prev_end = 0
        for at, _i, piece in placed:
            if at < prev_end:
                # Overlap: list order decides who wins — materialize.
                buf = np.zeros(length, dtype=np.uint8)
                for p_at, p in parts:
                    buf[p_at: p_at + p.length] = p.data
                return Payload(length, buf)
            segments.extend((at + s_at, seg)
                            for s_at, seg in piece.iter_segments())
            prev_end = at + piece.length
        return _from_segments(length, segments)

    def xor_at(self, at: int, other: "Payload") -> "Payload":
        """A copy with ``other`` XOR-ed into the region starting at ``at``.

        The RAID5 read-modify-write primitive: fold an old/new data delta
        into the matching region of a parity block.
        """
        return self.xor_at_many([(at, other)])

    def xor_at_many(self, patches: Sequence[tuple[int, "Payload"]],
                    ) -> "Payload":
        """A copy with every ``(at, payload)`` patch XOR-ed in.

        One materialization for the whole fold — the RMW delta loop used
        to copy the parity buffer once per piece.
        """
        for at, other in patches:
            if at < 0 or at + other.length > self.length:
                raise ValueError(
                    f"xor region [{at}, +{other.length}) outside payload "
                    f"of {self.length}")
        if self.is_virtual or any(p.is_virtual for _at, p in patches):
            return Payload.virtual(self.length)
        buf = self._writable_copy()
        for at, other in patches:
            for s_at, seg in other.iter_segments():
                xor_into_at(buf, at + s_at, seg)
        return Payload(self.length, buf)

    def overlay(self, at: int, patch: "Payload") -> "Payload":
        """A copy with ``patch`` written at offset ``at`` (grows if needed)."""
        end = at + patch.length
        new_len = max(self.length, end)
        if self.is_virtual or patch.is_virtual:
            return Payload.virtual(new_len)
        segments = list(_clipped(self.iter_segments(), 0, at))
        segments.extend((at + s_at, seg) for s_at, seg in
                        patch.iter_segments())
        segments.extend(_clipped(self.iter_segments(), end, self.length))
        return _from_segments(new_len, segments)


class SegmentedPayload(Payload):
    """A rope: content stored as disjoint segments over shared buffers.

    Built by ``concat``/``assemble``/``overlay`` so the scatter-gather
    path never copies; materializes (once, cached) when something needs
    the content as a single contiguous array.
    """

    __slots__ = ("_segments",)

    def __init__(self, length: int,
                 segments: Sequence[Segment]) -> None:
        super().__init__(length, None)
        prev_end = 0
        for at, seg in segments:
            if seg.dtype != np.uint8:
                raise TypeError("payload data must be uint8")
            if at < prev_end or at + seg.size > length:
                raise ValueError(
                    f"segment [{at}, +{seg.size}) invalid in payload "
                    f"of {length}")
            _freeze(seg)
            if _capture_hook is not None:
                _capture_hook(self, seg, "segment")
            prev_end = at + seg.size
        self._segments = tuple(segments)

    @property
    def data(self) -> np.ndarray:
        buf = self._data
        if buf is None:
            buf = self._writable_copy()
            # Freeze the materialization *before* it becomes reachable
            # through the cache: every later read aliases this buffer,
            # so a writable (or unfrozen overridden-copy) cache would
            # let one caller perturb what everyone else sees.
            buf.flags.writeable = False
            assert not buf.flags.writeable, (
                "SegmentedPayload cache must be frozen before caching")
            if _capture_hook is not None:
                _capture_hook(self, buf, "materialized")
            self._data = buf
        return buf

    @property
    def is_virtual(self) -> bool:
        return False

    def iter_segments(self) -> Iterator[Segment]:
        if self._data is not None:
            # Already materialized: one contiguous segment is cheaper for
            # consumers than re-walking the rope.
            yield from Payload.iter_segments(self)
        else:
            yield from self._segments

    def _writable_copy(self) -> np.ndarray:
        buf = np.zeros(self.length, dtype=np.uint8)
        for at, seg in self.iter_segments():
            buf[at: at + seg.size] = seg
        return buf

    def slice(self, start: int, end: int) -> "Payload":
        if not (0 <= start <= end <= self.length):
            raise ValueError(
                f"slice [{start},{end}) outside payload of {self.length}")
        if self._data is not None:
            return Payload(end - start, self._data[start:end])
        return _from_segments(
            end - start, list(_clipped(self._segments, start, end, -start)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SegmentedPayload len={self.length} "
                f"segments={len(self._segments)}>")


def _clipped(segments, start: int, end: int,
             shift: int = 0) -> Iterator[Segment]:
    """Segments clipped to ``[start, end)``, offsets shifted by ``shift``."""
    if end <= start:
        return
    for at, seg in segments:
        seg_end = at + seg.size
        if seg_end <= start or at >= end:
            continue
        lo = max(at, start)
        hi = min(seg_end, end)
        yield (lo + shift, seg[lo - at: hi - at])


def _from_segments(length: int, segments: List[Segment]) -> Payload:
    """The cheapest payload holding ``segments`` (ascending, disjoint)."""
    if len(segments) == 1:
        at, seg = segments[0]
        if at == 0 and seg.size == length:
            return Payload(length, seg)
    if len(segments) > _MAX_SEGMENTS:
        buf = np.zeros(length, dtype=np.uint8)
        for at, seg in segments:
            buf[at: at + seg.size] = seg
        return Payload(length, buf)
    return SegmentedPayload(length, segments)
