"""The I/O server's local file system.

Combines functional state (:class:`BlockFile`) with timing
(:class:`~repro.hw.cache.PageCache` over :class:`~repro.hw.disk.Disk`) the
way PVFS I/O daemons use ext2 through the Linux page cache.  The write
path implements both arrival disciplines from Section 5.2:

* **buffered** (the paper's fix): data received from the network is
  accumulated into a connection-private buffer sized a multiple of the
  file-system block, so the local write call sees at most two partial
  blocks (the request edges);
* **unbuffered** (stock PVFS): each non-blocking network receive is
  written immediately, so every ``net_chunk`` boundary inside the request
  becomes a partial-block write.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List

from repro.errors import FileNotFound
from repro.sim.engine import Event
from repro.storage.blockfile import BlockFile
from repro.storage.payload import Payload
from repro.util.intervals import ExtentMap
from repro.hw.node import Node

#: Shared allocation map for reads of files that were never written:
#: everything is a hole, and reading must not create server-side state.
_NO_EXTENTS = ExtentMap()


class LocalFS:
    """Per-node file namespace with cache-mediated timing."""

    def __init__(self, node: Node, content_mode: bool = True,
                 write_buffering: bool = True) -> None:
        self.node = node
        self.content_mode = content_mode
        self.write_buffering = write_buffering
        self.files: Dict[str, BlockFile] = {}
        #: Owning I/O server index (set by the daemon); stamped onto
        #: every block file so fault injection can target this server.
        self.owner = None

    # ------------------------------------------------------------------
    def _get(self, name: str, create: bool = False) -> BlockFile:
        f = self.files.get(name)
        if f is None:
            if not create:
                raise FileNotFound(f"{self.node.name}:{name}")
            f = BlockFile(name, self.content_mode)
            f.owner = self.owner
            self.files[name] = f
        return f

    def exists(self, name: str) -> bool:
        return name in self.files

    def file_size(self, name: str) -> int:
        return self._get(name).size

    def listing(self) -> Dict[str, int]:
        """``ls -l`` of this node: name -> size."""
        return {name: f.size for name, f in self.files.items()}

    def _file_id(self, name: str) -> str:
        return f"{self.node.name}:{name}"

    # ------------------------------------------------------------------
    def _cut_points(self, offset: int, length: int) -> List[int]:
        """Local-write boundaries inside a request (empty when buffered)."""
        if self.write_buffering:
            return []
        chunk = self.node.profile.net_chunk
        return list(range(offset + chunk, offset + length, chunk))

    def write(self, name: str, offset: int, payload: Payload,
              ) -> Generator[Event, Any, None]:
        """Timed write; creates the file if needed."""
        f = self._get(name, create=True)
        if payload.length == 0:
            return
        end = offset + payload.length
        yield from self.node.cache.write(
            self._file_id(name), offset, end, f.allocated,
            cut_points=self._cut_points(offset, payload.length))
        f.write(offset, payload)

    def write_gather(self, name: str,
                     parts: List[tuple[int, Payload]],
                     ) -> Generator[Event, Any, None]:
        """Timed vectored write: several (offset, payload) pieces of one
        request charge the cache in a single pass (one throttle/eviction
        round, like a local ``writev``) before landing in the block file.
        """
        f = self._get(name, create=True)
        parts = [(off, p) for off, p in parts if p.length]
        if not parts:
            return
        ranges = [(off, off + p.length) for off, p in parts]
        cut_points = [c for off, p in parts
                      for c in self._cut_points(off, p.length)]
        yield from self.node.cache.write_many(
            self._file_id(name), ranges, f.allocated, cut_points)
        for off, p in parts:
            f.write(off, p)

    def read(self, name: str, offset: int, length: int,
             ) -> Generator[Event, Any, Payload]:
        """Timed read; sparse holes read back as zeros for free.

        Reading never creates the file: a read of a name this server has
        no data for (an unwritten stripe, or a speculative read racing
        the manager open) returns zeros without leaving state behind.
        """
        f = self.files.get(name)
        allocated = f.allocated if f is not None else _NO_EXTENTS
        yield from self.node.cache.read(
            self._file_id(name), offset, offset + length, allocated)
        if f is None:
            return (Payload.sparse(length) if self.content_mode
                    else Payload.virtual(length))
        return f.read(offset, length)

    def fsync(self, name: str) -> Generator[Event, Any, None]:
        yield from self.node.cache.fsync(self._file_id(name))

    def sync(self) -> Generator[Event, Any, None]:
        yield from self.node.cache.sync()

    def drop_caches(self) -> Generator[Event, Any, None]:
        yield from self.node.cache.drop()

    # ------------------------------------------------------------------
    def total_size(self, names: Iterable[str] | None = None) -> int:
        """Sum of file sizes (Table 2 accounting)."""
        if names is None:
            return sum(f.size for f in self.files.values())
        return sum(self.files[n].size for n in names if n in self.files)
