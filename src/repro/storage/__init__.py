"""Node-local storage: payloads, sparse files, and the local file system."""

from repro.storage.blockfile import BlockFile
from repro.storage.localfs import LocalFS
from repro.storage.payload import Payload

__all__ = ["BlockFile", "LocalFS", "Payload"]
