"""Byte, bandwidth and time units used throughout the reproduction.

The paper mixes decimal (MB/s bandwidth figures) and binary (KB stripe
units) conventions, as was customary in 2003 systems papers.  We follow the
storage-systems convention the paper uses:

* capacities and access sizes are binary: ``KiB``/``MiB``/``GiB`` (the
  paper's "64KB stripe unit" is 65536 bytes);
* bandwidths are decimal megabytes per second (``MBps``), matching the
  MB/s axes of Figures 3-7.

Times are plain floats in seconds.
"""

from __future__ import annotations

#: One kibibyte (what the paper calls "KB" for stripe units and block sizes).
KiB: int = 1024
#: One mebibyte.
MiB: int = 1024 * 1024
#: One gibibyte.
GiB: int = 1024 * 1024 * 1024

#: Decimal megabyte — the unit of the paper's bandwidth axes.
MB: int = 1_000_000

#: One megabyte per second expressed in bytes/second.
MBps: float = 1_000_000.0

#: Microseconds / milliseconds in seconds, for latency constants.
us: float = 1e-6
ms: float = 1e-3


def mbps(bytes_count: float, seconds: float) -> float:
    """Bandwidth in decimal MB/s for ``bytes_count`` bytes in ``seconds``.

    Returns ``0.0`` for non-positive durations rather than raising, because
    zero-byte benchmark phases legitimately take zero simulated time.
    """
    if seconds <= 0.0:
        return 0.0
    return bytes_count / seconds / MBps


def fmt_bytes(n: int) -> str:
    """Human-readable byte count using binary units (``1.5 MiB``)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
