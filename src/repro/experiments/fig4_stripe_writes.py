"""Figure 4: single-client write bandwidth vs number of I/O servers.

(a) full-stripe writes — RAID5's best case; includes the *RAID5-npc*
variant with the parity computation commented out (paper: ~8% gap).
(b) one-block writes into an existing cached file — RAID5's worst case;
RAID1 and Hybrid behave identically.
"""

from __future__ import annotations

from repro.experiments.base import ExpTable, register
from repro.experiments.common import build
from repro.units import MB
from repro.workloads.micro import full_stripe_write_bench, small_write_bench

IOD_COUNTS = (1, 2, 3, 4, 5, 6, 7)

COLUMNS = [
    ("raid0", dict(scheme="raid0")),
    ("raid1", dict(scheme="raid1")),
    ("raid5", dict(scheme="raid5")),
    ("raid5_npc", dict(scheme="raid5", compute_parity=False)),
    ("hybrid", dict(scheme="hybrid")),
]


@register("fig4a", "Full-stripe write bandwidth vs #iods (MB/s)")
def run_full(scale: float = 1.0, total_bytes: int = 48 * MB) -> ExpTable:
    total = max(4 * MB, int(total_bytes * scale))
    table = ExpTable("fig4a", "Large (full-stripe) writes, 1 client (MB/s)",
                     ["iods"] + [name for name, _ in COLUMNS])
    for n in IOD_COUNTS:
        row: list = [n]
        for name, kw in COLUMNS:
            if kw["scheme"] in ("raid5", "hybrid") and n < 2:
                row.append(None)
                continue
            system = build(servers=n, clients=1, **kw)
            result = full_stripe_write_bench(system, total_bytes=total)
            row.append(result.write_bandwidth)
        table.add_row(*row)
    return table


@register("fig4b", "Small (one-block) write bandwidth vs #iods (MB/s)")
def run_small(scale: float = 1.0, count: int = 150) -> ExpTable:
    count = max(10, int(count * scale))
    table = ExpTable("fig4b", "Small (one-block) writes, 1 client (MB/s)",
                     ["iods", "raid0", "raid1", "raid5", "hybrid"])
    for n in IOD_COUNTS:
        row: list = [n]
        for scheme in ("raid0", "raid1", "raid5", "hybrid"):
            if scheme in ("raid5", "hybrid") and n < 2:
                row.append(None)
                continue
            system = build(scheme=scheme, servers=n, clients=1)
            result = small_write_bench(system, count=count)
            row.append(result.write_bandwidth)
        table.add_row(*row)
    table.notes.append("RAID1 and Hybrid overlap; RAID5 pays the "
                       "read-modify-write round trip even with warm caches")
    return table
