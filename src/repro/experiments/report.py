"""One-shot reproduction report: run experiments, check the paper's
claims, emit a verdict table.

``python -m repro report`` runs a claim checklist distilled from
EXPERIMENTS.md — the same qualitative assertions the benchmark suite
makes, packaged as a single human-readable artifact.  Each claim is a
named predicate over one experiment's table, so the output reads::

    [PASS] fig3: locking overhead within 10-35% (paper ~20%)    21%
    [PASS] fig4b: RAID1 == Hybrid on one-block writes           0.0% apart
    ...

Use ``--scale`` to trade fidelity for speed; claims are scale-robust by
design (orderings and ratios, not absolute MB/s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.base import ExpTable, get_experiment


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper, bound to an experiment."""

    experiment: str
    description: str
    check: Callable[[ExpTable], Tuple[bool, str]]


def _fig3(table: ExpTable) -> Tuple[bool, str]:
    nolock = table.cell("R5 NO LOCK", "bandwidth_mbps")
    raid5 = table.cell("RAID5", "bandwidth_mbps")
    overhead = (nolock - raid5) / nolock
    return 0.10 < overhead < 0.35, f"{overhead * 100:.0f}%"


def _fig4a_raid1_half(table: ExpTable) -> Tuple[bool, str]:
    ratios = [table.cell(n, "raid1") / table.cell(n, "raid0")
              for n in (2, 4, 6)]
    ok = all(0.42 <= r <= 0.58 for r in ratios)
    return ok, "raid1/raid0 = " + ", ".join(f"{r:.2f}" for r in ratios)


def _fig4a_hybrid_is_raid5(table: ExpTable) -> Tuple[bool, str]:
    gaps = [abs(table.cell(n, "hybrid") - table.cell(n, "raid5"))
            / table.cell(n, "raid5") for n in (4, 6, 7)]
    return max(gaps) < 0.02, f"max gap {max(gaps) * 100:.1f}%"


def _fig4b_raid1_eq_hybrid(table: ExpTable) -> Tuple[bool, str]:
    gap = abs(table.cell(6, "hybrid") - table.cell(6, "raid1")) \
        / table.cell(6, "raid1")
    return gap < 0.02, f"{gap * 100:.1f}% apart"


def _fig4b_raid5_half(table: ExpTable) -> Tuple[bool, str]:
    ratio = table.cell(6, "raid5") / table.cell(6, "raid1")
    return ratio < 0.7, f"raid5/raid1 = {ratio:.2f}"


def _fig5a_reads_equal(table: ExpTable) -> Tuple[bool, str]:
    worst = 0.0
    for row in table.rows:
        _c, raid0, raid1, raid5, hybrid = row
        for v in (raid1, raid5, hybrid):
            worst = max(worst, abs(v - raid0) / raid0)
    return worst < 0.02, f"max deviation {worst * 100:.2f}%"


def _fig6b_raid5_collapse(table: ExpTable) -> Tuple[bool, str]:
    drop = table.cell(25, "raid5") / table.cell(4, "raid5")
    below_raid1 = table.cell(25, "raid5") < 1.1 * table.cell(25, "raid1")
    return drop < 0.55 and below_raid1, \
        f"raid5 falls to {drop * 100:.0f}% of its 4-proc value"


def _fig7a_raid1_collapse(table: ExpTable) -> Tuple[bool, str]:
    ratios = [table.cell(p, "raid1") / table.cell(p, "raid5")
              for p in (4, 9, 16, 25)]
    return max(ratios) < 0.65, \
        f"raid1/raid5 = {min(ratios):.2f}-{max(ratios):.2f}"


def _fig8_hybrid_best(table: ExpTable) -> Tuple[bool, str]:
    worst = 0.0
    for row in table.rows:
        _app, _r0, raid1, raid5, hybrid = row
        worst = max(worst, hybrid / min(raid1, raid5))
    return worst <= 1.15, f"hybrid ≤ {worst:.2f}x the best alternative"


def _table2_exact_ratios(table: ExpTable) -> Tuple[bool, str]:
    for row in table.rows:
        _label, raid0, raid1, raid5, _hybrid = row
        if abs(raid1 / raid0 - 2.0) > 0.02 or abs(raid5 / raid0 - 1.2) > 0.04:
            return False, f"off at {_label}"
    return True, "raid1 = 2.00x, raid5 = 1.20x everywhere"


def _table2_hybrid_signatures(table: ExpTable) -> Tuple[bool, str]:
    hf = table.cell("Hartree-Fock", "hybrid") \
        / table.cell("Hartree-Fock", "raid1")
    flash = table.cell("FLASH 4p 64K", "hybrid") \
        / table.cell("FLASH 4p 64K", "raid1")
    btio_a = abs(table.cell("BTIO Class A", "hybrid")
                 - table.cell("BTIO Class A", "raid5"))
    ok = abs(hf - 1.0) < 0.01 and flash > 1.0 and btio_a < 0.01
    return ok, (f"HF = {hf:.2f}x raid1, FLASH-64K = {flash:.2f}x raid1, "
                "Class A hybrid == raid5")


CLAIMS: List[Claim] = [
    Claim("fig3", "locking overhead within 10-35% (paper ~20%)", _fig3),
    Claim("fig4a", "RAID1 ≈ half of RAID0 (2x bytes, one link)",
          _fig4a_raid1_half),
    Claim("fig4a", "Hybrid ≡ RAID5 on full-stripe writes",
          _fig4a_hybrid_is_raid5),
    Claim("fig4b", "RAID1 ≡ Hybrid on one-block writes",
          _fig4b_raid1_eq_hybrid),
    Claim("fig4b", "RAID5 pays the RMW round trip (≤ 0.7x RAID1)",
          _fig4b_raid5_half),
    Claim("fig5a", "reads identical across schemes", _fig5a_reads_equal),
    Claim("fig6b", "cold-cache overwrite collapses RAID5 below RAID1",
          _fig6b_raid5_collapse),
    Claim("fig7a", "Class C overflows caches under RAID1's 2x bytes",
          _fig7a_raid1_collapse),
    Claim("fig8", "Hybrid ≈ best of RAID1/RAID5 on every application",
          _fig8_hybrid_best),
    Claim("table2", "storage ratios exact (2.0x / 1.2x)",
          _table2_exact_ratios),
    Claim("table2", "Hybrid signatures: HF = RAID1, FLASH-64K > RAID1, "
                    "Class A = RAID5", _table2_hybrid_signatures),
]


def run_report(scale: Optional[float] = None,
               claims: List[Claim] = CLAIMS) -> Tuple[str, bool]:
    """Run every claim's experiment (once each) and render the report."""
    tables: Dict[str, ExpTable] = {}
    lines: List[str] = ["# Reproduction verification report", ""]
    all_ok = True
    for claim in claims:
        if claim.experiment not in tables:
            exp = get_experiment(claim.experiment)
            effective = exp.default_scale if scale is None else scale
            tables[claim.experiment] = exp.run(scale=effective)
        ok, detail = claim.check(tables[claim.experiment])
        all_ok &= ok
        verdict = "PASS" if ok else "FAIL"
        lines.append(f"[{verdict}] {claim.experiment}: "
                     f"{claim.description}  —  {detail}")
    lines.append("")
    lines.append("overall: " + ("ALL CLAIMS REPRODUCED" if all_ok
                                else "SOME CLAIMS FAILED"))
    return "\n".join(lines), all_ok
