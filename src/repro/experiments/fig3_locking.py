"""Figure 3: the cost of RAID5 parity locking under stripe sharing.

Five clients write different blocks of the same 6-server stripe (5 data
blocks + parity).  *R5 NO LOCK* moves exactly the same bytes as RAID5 but
skips the locking protocol, leaving the parity inconsistent; the gap
between the two curves is the locking overhead the paper measures at
about 20%.
"""

from __future__ import annotations

from repro.experiments.base import ExpTable, register
from repro.experiments.common import build
from repro.workloads.micro import shared_stripe_bench

CONFIGS = [
    ("RAID0", dict(scheme="raid0")),
    ("R5 NO LOCK", dict(scheme="raid5", locking=False)),
    ("RAID5", dict(scheme="raid5", locking=True)),
]


@register("fig3", "Bandwidth with 5 clients sharing one stripe (MB/s)")
def run(scale: float = 1.0, rounds: int = 60) -> ExpTable:
    rounds = max(5, int(rounds * scale))
    table = ExpTable("fig3", "5 clients writing one block each of a shared "
                             "stripe (MB/s)",
                     ["config", "bandwidth_mbps", "lock_wait_s"])
    values = {}
    for label, kw in CONFIGS:
        system = build(clients=5, **kw)
        result = shared_stripe_bench(system, rounds=rounds)
        values[label] = result.write_bandwidth
        table.add_row(label, result.write_bandwidth,
                      result.extra["lock_wait_time"])
    overhead = (values["R5 NO LOCK"] - values["RAID5"]) / values["R5 NO LOCK"]
    table.notes.append(
        f"locking overhead {overhead * 100:.0f}% (paper: ~20%)")
    return table
