"""Figure 8: application output time, normalized to RAID0.

Four applications on the 8-node cluster (6 I/O servers): FLASH I/O
(4 processes, mostly small/medium writes), Cactus BenchIO (4 MB chunks),
Hartree-Fock argos (sequential 16 KB writes through the kernel module)
and BTIO Class B on eight nodes.  The paper's finding: Hybrid performs
comparably to or better than the best of RAID1/RAID5 everywhere, and
Hartree-Fock's kernel-module overhead levels all four schemes to within
about 5%.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments.base import ExpTable, register
from repro.experiments.common import build
from repro.workloads.btio import btio_benchmark
from repro.workloads.cactus import cactus_benchio
from repro.workloads.flashio import flash_io_benchmark
from repro.workloads.hartree_fock import hartree_fock_argos

SCHEMES = ("raid0", "raid1", "raid5", "hybrid")


def _apps(scale: float) -> Dict[str, Callable]:
    # The paper reports application-level output time (no explicit sync):
    # the runs exclude a trailing flush, like BTIO.  FLASH is small enough
    # to always run full-size, keeping its published request mix.
    return {
        "FLASH": lambda sys_: flash_io_benchmark(sys_, nprocs=4, scale=1.0,
                                                 include_flush=False),
        "Cactus": lambda sys_: cactus_benchio(sys_, scale=scale,
                                              include_flush=False),
        "HartreeFock": lambda sys_: hartree_fock_argos(
            sys_, scale=scale, include_flush=False),
        "BTIO-B": lambda sys_: btio_benchmark(sys_, "B", scale=scale),
    }


APP_CLIENTS = {"FLASH": 4, "Cactus": 8, "HartreeFock": 1, "BTIO-B": 8}
APP_SCALE = {"FLASH": 1.0}  # system (cache) scale overrides


@register("fig8", "Application output time normalized to RAID0",
          default_scale=0.1)
def run(scale: float = 0.1) -> ExpTable:
    table = ExpTable("fig8", "Application output time (RAID0 = 1.0)",
                     ["app"] + list(SCHEMES))
    for app, runner in _apps(scale).items():
        times = {}
        for scheme in SCHEMES:
            system = build(scheme=scheme, clients=APP_CLIENTS[app],
                           scale=APP_SCALE.get(app, scale))
            times[scheme] = runner(system).elapsed
        table.add_row(app, *[times[s] / times["raid0"] for s in SCHEMES])
    table.notes.append("values are output-time ratios; lower is better")
    return table
