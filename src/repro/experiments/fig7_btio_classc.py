"""Figure 7: BTIO Class C write bandwidth, initial write and overwrite.

Class C writes ~6.6 GB.  Under RAID1 the servers must absorb twice that,
overflowing their page caches and collapsing to disk speed — the paper's
headline demonstration that mirroring cannot sustain bandwidth at scale.
On the overwrite, the paper reports Hybrid at about 230% of both RAID1
and RAID5.
"""

from __future__ import annotations

from repro.experiments.base import ExpTable, register
from repro.experiments.fig6_btio_classb import _btio_table

PROC_COUNTS = (4, 9, 16, 25)


@register("fig7a", "BTIO Class C initial-write bandwidth (MB/s)",
          default_scale=0.1)
def run_initial(scale: float = 0.1) -> ExpTable:
    table = _btio_table("C", scale, overwrite=False, exp_id="fig7a")
    table.notes.append("RAID1's 2x bytes overflow the server caches: "
                       "writers throttle to disk speed")
    return table


@register("fig7b", "BTIO Class C overwrite bandwidth (MB/s)",
          default_scale=0.1)
def run_overwrite(scale: float = 0.1) -> ExpTable:
    table = _btio_table("C", scale, overwrite=True, exp_id="fig7b")
    table.notes.append("paper: Hybrid ≈ 230% of RAID1 and RAID5 here")
    return table
