"""Shared system-building helpers for the experiment modules."""

from __future__ import annotations

from repro.csar.config import CSARConfig
from repro.csar.system import System
from repro.units import KiB

#: The paper's main deployment: 6 I/O servers, 64 KiB stripe unit.
DEFAULT_SERVERS = 6
DEFAULT_UNIT = 64 * KiB


def build(scheme: str, servers: int = DEFAULT_SERVERS, clients: int = 1,
          profile: str = "osu8", scale: float = 1.0,
          stripe_unit: int = DEFAULT_UNIT, **overrides) -> System:
    """A system in extent mode, scaled consistently with the workload."""
    overrides.setdefault("content_mode", False)
    return System(CSARConfig(scheme=scheme, num_servers=servers,
                             num_clients=clients, stripe_unit=stripe_unit,
                             profile=profile, scale=scale, **overrides))
