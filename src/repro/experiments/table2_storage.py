"""Table 2: storage requirement of the redundancy schemes per application.

The one evaluation artifact that is exactly computable rather than a
bandwidth measurement: the sum of local file sizes across the I/O servers
after each workload.  Expected ratios at 6 servers: RAID1 = 2.0x RAID0,
RAID5 = 1.2x; Hybrid is workload-dependent — near RAID5 for large-write
applications, *worse than RAID1* for FLASH I/O at a 64 KB stripe unit
(few full stripes plus overflow fragmentation), better at 16 KB.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.base import ExpTable, register
from repro.experiments.common import DEFAULT_UNIT, build
from repro.units import KiB
from repro.workloads.btio import btio_benchmark
from repro.workloads.cactus import cactus_benchio
from repro.workloads.flashio import flash_io_benchmark
from repro.workloads.hartree_fock import hartree_fock_argos

SCHEMES = ("raid0", "raid1", "raid5", "hybrid")


def _rows(scale: float):
    def btio(io_class):
        def run(sys_):
            btio_benchmark(sys_, io_class, scale=scale)
            return "btio"
        return run

    def flash(nprocs):
        def run(sys_):
            # FLASH totals are small (45/235 MB): always run full size so
            # the published request-size mix has enough samples.
            flash_io_benchmark(sys_, nprocs=nprocs, scale=1.0)
            return "flash"
        return run

    def hf(sys_):
        hartree_fock_argos(sys_, scale=scale)
        return "hf_argos"

    def cactus(sys_):
        cactus_benchio(sys_, scale=scale)
        return "cactus"

    # (label, clients, stripe unit, system scale, runner).  BTIO B/C use
    # 9 processes: the paper's Hybrid-to-RAID0 ratio for Class B
    # (2353/1698 = 1.386) pins the partial-stripe fraction to a ~4.7 MB
    # per-rank write.  Class A uses 4: its per-rank share (64³·40/40/4 =
    # 2,621,440 B) is then *exactly* 8 stripe spans, every write is
    # stripe-aligned, and Hybrid degenerates to pure RAID5 — which is why
    # the paper's Table 2 reports Hybrid = RAID5 = 503 MB for Class A.
    # FLASH rows run full-size (see above).
    return [
        ("BTIO Class A", 4, DEFAULT_UNIT, scale, btio("A")),
        ("BTIO Class B", 9, DEFAULT_UNIT, scale, btio("B")),
        ("BTIO Class C", 9, DEFAULT_UNIT, scale, btio("C")),
        ("FLASH 4p 16K", 4, 16 * KiB, 1.0, flash(4)),
        ("FLASH 4p 64K", 4, 64 * KiB, 1.0, flash(4)),
        ("FLASH 24p 16K", 24, 16 * KiB, 1.0, flash(24)),
        ("FLASH 24p 64K", 24, 64 * KiB, 1.0, flash(24)),
        ("Hartree-Fock", 1, DEFAULT_UNIT, scale, hf),
        ("CACTUS/BenchIO", 8, DEFAULT_UNIT, scale, cactus),
    ]


@register("table2", "Storage requirement per scheme (MB)",
          default_scale=0.05)
def run(scale: float = 0.05) -> ExpTable:
    table = ExpTable("table2", "Storage requirement (MB of local files)",
                     ["benchmark"] + list(SCHEMES))
    for label, clients, unit, sys_scale, runner in _rows(scale):
        row: list = [label]
        for scheme in SCHEMES:
            system = build(scheme=scheme, clients=clients, stripe_unit=unit,
                           scale=sys_scale)
            file_name = runner(system)
            report = system.storage_report(file_name)
            row.append(report["total"] / 1e6)
        table.add_row(*row)
    table.notes.append("expected at 6 iods: RAID1 = 2.0x RAID0, "
                       "RAID5 = 1.2x; Hybrid workload-dependent")
    return table
