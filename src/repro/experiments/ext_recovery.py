"""Extension experiment: recovery cost per redundancy scheme.

Not a paper figure — the paper states fault tolerance as CSAR's long-term
objective and leaves recovery unevaluated.  This experiment completes the
story: time to rebuild a failed server as a function of stored data, per
scheme, plus the degraded-read penalty while the failure is outstanding.

Expected mechanics: RAID1 rebuilds by copying its mirror (cheap, two
servers involved); RAID5/Hybrid must read *every* surviving server to
re-XOR each lost block (the classic parity-rebuild tax), and Hybrid adds
the overflow replay.
"""

from __future__ import annotations

from repro.experiments.base import ExpTable, register
from repro.experiments.common import build
from repro.redundancy.recovery import rebuild_server
from repro.storage.payload import Payload
from repro.units import MB

SCHEMES = ("raid1", "raid5", "hybrid")


@register("ext-recovery", "EXTENSION: server rebuild time per scheme")
def run(scale: float = 1.0) -> ExpTable:
    volumes = [int(v * scale) for v in (16 * MB, 64 * MB, 128 * MB)]
    table = ExpTable("ext-recovery",
                     "Rebuild time for one failed server (s, simulated)",
                     ["data_mb"] + [f"{s}_rebuild_s" for s in SCHEMES]
                     + ["hybrid_degraded_read_s", "hybrid_normal_read_s"])
    for volume in volumes:
        row: list = [volume / 1e6]
        degraded = normal = None
        for scheme in SCHEMES:
            system = build(scheme=scheme, clients=1)
            client = system.client()
            span = system.layout.group_span
            aligned = max(1, volume // span) * span

            def workload(client=client, aligned=aligned, span=span):
                yield from client.create("f")
                yield from client.write("f", 0, Payload.virtual(aligned))
                # A little overflow so Hybrid's replay path is exercised.
                yield from client.write("f", aligned + 100,
                                        Payload.virtual(span // 3))

            system.run(workload())
            system.sync_all()

            def read_all(client=client, aligned=aligned):
                yield from client.read("f", 0, aligned)

            if scheme == "hybrid":
                normal, _ = system.timed(read_all())
            system.fail_server(2)
            if scheme == "hybrid":
                degraded, _ = system.timed(read_all())
            elapsed, _ = system.timed(rebuild_server(system, 2))
            row.append(elapsed)
        row.extend([degraded, normal])
        table.add_row(*row)
    table.notes.append("RAID1 copies its mirror; parity schemes read "
                       "every survivor to re-XOR each lost block")
    return table
