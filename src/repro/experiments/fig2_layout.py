"""Figure 2: the RAID5 data/parity layout.

Not a measurement — the paper's Figure 2 is a diagram of where data
blocks and parity blocks live.  This experiment renders the same layout
from the implementation (so it is provably what the code does, and the
unit tests in ``tests/pvfs/test_layout.py`` pin the exact placement the
figure shows: with 3 servers, P[0-1] is the first block of server 2's
redundancy file).
"""

from __future__ import annotations

from repro.experiments.base import ExpTable, register
from repro.pvfs.layout import StripeLayout


@register("fig2", "RAID5 data and parity layout (Figure 2)")
def run(scale: float = 1.0, num_servers: int = 3,
        rows: int = 4) -> ExpTable:
    del scale  # layout is not a measurement
    lay = StripeLayout(stripe_unit=1, num_servers=num_servers)
    headers = ["row"] + [f"iod{s}.data" for s in range(num_servers)] \
        + [f"iod{s}.red" for s in range(num_servers)]
    table = ExpTable("fig2",
                     f"Block placement, {num_servers} I/O servers "
                     "(Dk = data block k, P[a-b] = parity of Da..Db)",
                     headers)
    # Parity blocks per server, keyed by local row.
    parity_at = {}
    groups = rows * num_servers  # more than enough to fill the rows shown
    for group in range(groups):
        server = lay.parity_server(group)
        row = lay.parity_local_offset(group)  # unit=1 -> row index
        lo, hi = group * lay.group_width, (group + 1) * lay.group_width - 1
        parity_at[(server, row)] = f"P[{lo}-{hi}]"
    for row in range(rows):
        cells = [row]
        for server in range(num_servers):
            cells.append(f"D{row * num_servers + server}")
        for server in range(num_servers):
            cells.append(parity_at.get((server, row), "-"))
        table.add_row(*cells)
    table.notes.append("matches the paper's Figure 2: parity of D0,D1 is "
                       "the first block of iod2's redundancy file, "
                       "rotating thereafter")
    return table
