"""Figure 6: BTIO Class B write bandwidth, initial write and overwrite.

Run on the OSC-profile cluster (the paper used the production cluster for
everything beyond 8 nodes) with 6 I/O servers and 4/9/16/25 BT processes.
The two paper findings to reproduce:

* initial write (a): RAID5 tracks Hybrid at 4-9 processes, dips at 16 and
  collapses at 25 — the parity-lock synchronization overhead (verified
  against a no-lock RAID5 run);
* overwrite (b): RAID5 collapses outright — cold-cache partial-stripe
  read-modify-write goes to disk — while the other schemes lose only a
  little (unaligned partial *blocks*, Section 5.2).
"""

from __future__ import annotations

from repro.experiments.base import ExpTable, register
from repro.experiments.common import build
from repro.workloads.btio import btio_benchmark

PROC_COUNTS = (4, 9, 16, 25)
SCHEMES = ("raid0", "raid1", "raid5", "hybrid")


def _btio_table(io_class: str, scale: float, overwrite: bool,
                exp_id: str, include_nolock: bool = False) -> ExpTable:
    headers = ["procs"] + list(SCHEMES)
    if include_nolock:
        headers.append("r5_nolock")
    table = ExpTable(exp_id,
                     f"BTIO Class {io_class} "
                     f"{'overwrite' if overwrite else 'initial write'} "
                     "bandwidth (MB/s)", headers)
    for procs in PROC_COUNTS:
        row: list = [procs]
        for scheme in SCHEMES:
            system = build(scheme=scheme, clients=procs, profile="osc",
                           scale=scale)
            result = btio_benchmark(system, io_class, scale=scale,
                                    overwrite=overwrite)
            row.append(result.write_bandwidth)
        if include_nolock:
            system = build(scheme="raid5", clients=procs, profile="osc",
                           scale=scale, locking=False)
            result = btio_benchmark(system, io_class, scale=scale,
                                    overwrite=overwrite)
            row.append(result.write_bandwidth)
        table.add_row(*row)
    return table


@register("fig6a", "BTIO Class B initial-write bandwidth (MB/s)",
          default_scale=0.25)
def run_initial(scale: float = 0.25) -> ExpTable:
    table = _btio_table("B", scale, overwrite=False, exp_id="fig6a",
                        include_nolock=True)
    table.notes.append("r5_nolock isolates the locking overhead "
                       "(the paper's drop diagnosis at 25 procs)")
    return table


@register("fig6b", "BTIO Class B overwrite bandwidth (MB/s)",
          default_scale=0.25)
def run_overwrite(scale: float = 0.25) -> ExpTable:
    return _btio_table("B", scale, overwrite=True, exp_id="fig6b")
