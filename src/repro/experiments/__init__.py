"""Reproductions of every figure and table in the paper's evaluation.

Each experiment module exposes ``run(scale=...) -> ExpTable``; the
registry maps experiment ids ("fig3", "table2", ...) to them.  Run from
the command line::

    python -m repro list
    python -m repro run fig4a --scale 0.25
"""

from repro.experiments.base import ExpTable, REGISTRY, get_experiment, register

# Importing the modules populates the registry.
from repro.experiments import (  # noqa: E402,F401
    ablations,
    ext_recovery,
    ext_scrub,
    fig1_disk_trend,
    fig2_layout,
    fig3_locking,
    fig4_stripe_writes,
    fig5_romio,
    fig6_btio_classb,
    fig7_btio_classc,
    fig8_applications,
    table2_storage,
)

__all__ = ["ExpTable", "REGISTRY", "get_experiment", "register"]
