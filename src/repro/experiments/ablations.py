"""Ablations for the design choices the paper calls out in the text.

* **Write buffering** (Section 5.2): overwrite bandwidth of a preexisting
  uncached file with and without the per-connection write buffer at the
  I/O daemons.  Without it, every unaligned network-chunk boundary forces
  a partial-block read-before-write.
* **Parity kernel** (Section 3 / Swift lesson): RAID5 full-stripe write
  bandwidth with word-at-a-time vs byte-at-a-time XOR.  Includes a
  host-measured kernel microbenchmark of the two real implementations.
* **Stripe unit** (Section 6.7): Hybrid storage overhead vs stripe unit
  for the small-write-heavy FLASH workload.
"""

from __future__ import annotations

import time as _time

from repro.experiments.base import ExpTable, register
from repro.experiments.common import build
from repro.storage.payload import Payload
from repro.units import KiB, MB
from repro.util.parity import xor_bytes, xor_bytes_bytewise
from repro.workloads.base import ensure_file, run_clients
from repro.workloads.flashio import flash_io_benchmark
from repro.workloads.micro import full_stripe_write_bench


def _overwrite_bench(system, total_bytes: int, chunk: int,
                     misalign: int = 100):
    """Write a file, drop caches, rewrite it misaligned; returns MB/s."""
    client = system.client(0)

    def setup():
        yield from ensure_file(client, "wb")
        offset = 0
        while offset < total_bytes:
            yield from client.write("wb", offset, Payload.virtual(chunk))
            offset += chunk
        yield from client.fsync("wb")

    system.run(setup())
    system.drop_all_caches()

    def work():
        offset = misalign
        while offset + chunk <= total_bytes:
            yield from client.write("wb", offset, Payload.virtual(chunk))
            offset += chunk

    written = ((total_bytes - misalign) // chunk) * chunk
    return run_clients(system, [work()], "overwrite",
                       bytes_written=written).write_bandwidth


@register("ablation-writebuf",
          "Section 5.2: write buffering on preexisting uncached files")
def run_writebuf(scale: float = 1.0) -> ExpTable:
    total = max(4 * MB, int(32 * MB * scale))
    table = ExpTable("ablation-writebuf",
                     "Unaligned overwrite of an uncached file (MB/s)",
                     ["config", "bandwidth_mbps", "partial_block_reads"])
    for label, buffering in (("buffered", True), ("unbuffered", False)):
        system = build(scheme="raid0", clients=1, write_buffering=buffering)
        bandwidth = _overwrite_bench(system, total, chunk=1 * MB)
        table.add_row(label, bandwidth,
                      system.metrics.get("cache.partial_block_reads"))
    table.notes.append("the unbuffered path reads one file-system block "
                       "per network chunk boundary (Section 5.2)")
    return table


@register("ablation-parity",
          "Swift lesson: word-wise vs byte-wise parity computation")
def run_parity(scale: float = 1.0) -> ExpTable:
    total = max(4 * MB, int(32 * MB * scale))
    table = ExpTable("ablation-parity",
                     "RAID5 full-stripe writes by parity kernel (MB/s)",
                     ["kernel", "bandwidth_mbps"])
    for label, bytewise in (("word-at-a-time", False),
                            ("byte-at-a-time", True)):
        system = build(scheme="raid5", clients=1, parity_bytewise=bytewise)
        result = full_stripe_write_bench(system, total_bytes=total)
        table.add_row(label, result.write_bandwidth)

    # Host-measured microbenchmark of the two real kernels.
    blocks = [Payload.pattern(256 * KiB, seed=i).data for i in range(5)]
    t0 = _time.perf_counter()
    xor_bytes(blocks)
    word_s = _time.perf_counter() - t0
    small = [b[: 8 * KiB].tobytes() for b in blocks]
    t0 = _time.perf_counter()
    xor_bytes_bytewise(small)
    byte_s = (_time.perf_counter() - t0) * (256 / 8)  # scale to same bytes
    table.notes.append(
        f"host kernels on 5x256KiB: word {word_s * 1e3:.2f} ms vs "
        f"byte {byte_s * 1e3:.0f} ms (x{byte_s / max(word_s, 1e-9):.0f})")
    return table


@register("ablation-collective",
          "Section 6.5: two-phase collective I/O vs independent writes")
def run_collective(scale: float = 1.0) -> ExpTable:
    """BT-like interleaved strided checkpoint, with and without ROMIO-style
    collective buffering.  The paper's BTIO numbers depend on ROMIO
    merging "small, non-contiguous accesses ... into large requests";
    this ablation shows what CSAR would see without it."""
    from repro.mpiio import CollectiveConfig, MPIFile, strided

    record = 2048
    count = max(8, int(128 * scale))
    nprocs = 4
    total = nprocs * count * record

    def patterns():
        return {rank: (strided(rank * record, record, nprocs * record,
                               count), None)
                for rank in range(nprocs)}

    table = ExpTable("ablation-collective",
                     "Interleaved strided checkpoint (MB/s)",
                     ["mode", "scheme", "bandwidth_mbps"])
    for scheme in ("raid5", "hybrid"):
        system = build(scheme=scheme, clients=nprocs)
        f = MPIFile(system, "ck", CollectiveConfig(cb_nodes=nprocs))

        def coll(f=f):
            yield from f.open()
            yield from f.collective_write(patterns())

        elapsed, _ = system.timed(coll())
        table.add_row("collective", scheme, total / elapsed / 1e6)

        system = build(scheme=scheme, clients=nprocs)
        f2 = MPIFile(system, "ck")

        def opener(f2=f2):
            yield from f2.open()

        system.run(opener())

        def rank_proc(rank, f2=f2):
            for i in range(count):
                offset = (i * nprocs + rank) * record
                yield from f2.write_at(rank, offset,
                                       Payload.virtual(record))

        elapsed, _ = system.timed(*[rank_proc(r) for r in range(nprocs)])
        table.add_row("independent", scheme, total / elapsed / 1e6)
    table.notes.append("independent per-record writes are all "
                       "partial-stripe; collective buffering turns them "
                       "into full-stripe writes")
    return table


@register("ablation-stripe-unit",
          "Section 6.7: Hybrid storage vs stripe unit for FLASH")
def run_stripe_unit(scale: float = 0.2) -> ExpTable:
    table = ExpTable("ablation-stripe-unit",
                     "FLASH 4p storage by stripe unit (MB)",
                     ["stripe_unit", "raid1_total", "hybrid_total",
                      "hybrid_vs_raid1"])
    for unit in (8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB):
        totals = {}
        for scheme in ("raid1", "hybrid"):
            system = build(scheme=scheme, clients=4, stripe_unit=unit,
                           scale=scale)
            flash_io_benchmark(system, nprocs=4, scale=scale)
            totals[scheme] = system.storage_report("flash")["total"] / 1e6
        table.add_row(unit // KiB, totals["raid1"], totals["hybrid"],
                      totals["hybrid"] / totals["raid1"])
    table.notes.append("smaller stripe units turn more FLASH requests into "
                       "full stripes, pulling Hybrid back below RAID1")
    return table
