"""Extension experiment: online scrubbing vs foreground bandwidth.

The paper's long-term objective (single-disk fault tolerance) implies
periodic verification; this experiment measures what a timed scrub pass
costs the foreground application — the classic scrub-interference
trade-off — per redundancy scheme.
"""

from __future__ import annotations

from repro.experiments.base import ExpTable, register
from repro.experiments.common import build
from repro.redundancy.scrub import online_scrub
from repro.storage.payload import Payload
from repro.units import MB, mbps

SCHEMES = ("raid1", "raid5", "hybrid")


@register("ext-scrub", "EXTENSION: online scrub interference", 1.0)
def run(scale: float = 1.0) -> ExpTable:
    volume = max(8 * MB, int(48 * MB * scale))
    table = ExpTable("ext-scrub",
                     "Foreground write bandwidth with a concurrent "
                     "online scrub (MB/s)",
                     ["scheme", "alone", "with_scrub", "slowdown",
                      "scrub_time_s"])
    for scheme in SCHEMES:
        # content mode: the scrub really verifies.
        def setup():
            system = build(scheme=scheme, clients=2, content_mode=True)
            client = system.client(0)
            span = system.layout.group_span
            aligned = max(1, volume // span) * span

            def seed_file():
                yield from client.create("verified")
                yield from client.write("verified", 0,
                                        Payload.pattern(aligned, seed=3))

            system.run(seed_file())
            system.drop_all_caches()
            return system, aligned

        def foreground(system, aligned):
            client = system.client(0)
            span = system.layout.group_span
            chunk = 8 * span

            def work():
                yield from client.create("fg")
                offset = 0
                while offset < aligned:
                    yield from client.write("fg", offset,
                                            Payload.pattern(
                                                min(chunk, aligned - offset),
                                                seed=4))
                    offset += chunk

            return work

        system, aligned = setup()
        elapsed_alone, _ = system.timed(foreground(system, aligned)())
        alone = mbps(aligned, elapsed_alone)

        system, aligned = setup()
        scrub_proc = system.env.process(
            online_scrub(system, "verified", client_index=1))
        elapsed_busy, _ = system.timed(foreground(system, aligned)())
        busy = mbps(aligned, elapsed_busy)
        scrub_issues = system.env.run(until=scrub_proc)
        assert scrub_issues == [], "scrub found corruption in clean data"
        scrub_time = system.env.now

        table.add_row(scheme, alone, busy, alone / busy, scrub_time)
    table.notes.append("the scrub shares server CPU/disk with the "
                       "foreground writer; RAID5/Hybrid scrubs read every "
                       "group member")
    return table
