"""Figure 1: the time to fill a disk to capacity over the years.

The paper draws this from Mike Dahlin's technology-trends dataset to
motivate trading storage efficiency for bandwidth: disk capacity grew
~1.6x/year while the data path grew ~1.2-1.25x/year, so the time to fill
a disk grew roughly tenfold over fifteen years.

The original page is long gone; the table below carries representative
(year, capacity, sustained bandwidth) points for widely documented
commodity drives of each era, which reproduce the trend the figure
shows.
"""

from __future__ import annotations

from repro.experiments.base import ExpTable, register

#: (year, representative drive, capacity GB, sustained MB/s)
DISK_HISTORY = [
    (1983, "Seagate ST-412", 0.01, 0.6),
    (1987, "CDC Wren IV", 0.3, 1.3),
    (1990, "Seagate Elite-1", 1.2, 2.8),
    (1993, "Seagate ST12550", 2.1, 4.5),
    (1996, "Seagate Barracuda 4LP", 4.3, 8.0),
    (1999, "IBM Deskstar 22GXP", 22.0, 17.0),
    (2001, "IBM Deskstar 75GXP", 60.0, 37.0),
    (2003, "WD Caviar SE", 160.0, 55.0),
]


def time_to_fill_minutes(capacity_gb: float, bandwidth_mbps: float) -> float:
    return capacity_gb * 1000.0 / bandwidth_mbps / 60.0


@register("fig1", "Time to fill a disk to capacity, 1983-2003")
def run(scale: float = 1.0) -> ExpTable:
    table = ExpTable("fig1", "Time to fill a disk to capacity (minutes)",
                     ["year", "drive", "capacity_gb", "bandwidth_mbps",
                      "fill_minutes"])
    for year, drive, cap, bw in DISK_HISTORY:
        table.add_row(year, drive, cap, bw, time_to_fill_minutes(cap, bw))
    first = time_to_fill_minutes(*DISK_HISTORY[2][2:])
    last = time_to_fill_minutes(*DISK_HISTORY[-1][2:])
    table.notes.append(
        f"fill time grew {last / first:.1f}x between "
        f"{DISK_HISTORY[2][0]} and {DISK_HISTORY[-1][0]} "
        "(the paper reports ~10x over fifteen years)")
    return table
