"""Experiment plumbing: result tables and the experiment registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.errors import ConfigError


@dataclass
class ExpTable:
    """One reproduced figure/table, ready to print or assert against."""

    experiment: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.headers)} columns")
        self.rows.append(list(values))

    def column(self, header: str) -> List[object]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def cell(self, row_key: object, header: str) -> object:
        """Value at (first column == row_key, header)."""
        idx = self.headers.index(header)
        for row in self.rows:
            if row[0] == row_key:
                return row[idx]
        raise KeyError(f"no row keyed {row_key!r}")

    def to_csv(self) -> str:
        """Comma-separated rendering for downstream plotting."""
        def cell(value: object) -> str:
            text = "" if value is None else str(value)
            if "," in text or '"' in text:
                text = '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(cell(h) for h in self.headers)]
        for row in self.rows:
            lines.append(",".join(cell(v) for v in row))
        return "\n".join(lines) + "\n"

    def format(self) -> str:
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        cells = [self.headers] + [[fmt(v) for v in row] for row in self.rows]
        widths = [max(len(row[i]) for row in cells)
                  for i in range(len(self.headers))]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one figure or table."""

    id: str
    title: str
    run: Callable[..., ExpTable]
    default_scale: float = 1.0


REGISTRY: Dict[str, Experiment] = {}


def register(exp_id: str, title: str, default_scale: float = 1.0):
    """Decorator: add ``run(scale=...)`` to the experiment registry."""

    def wrap(func: Callable[..., ExpTable]) -> Callable[..., ExpTable]:
        REGISTRY[exp_id] = Experiment(exp_id, title, func, default_scale)
        return func

    return wrap


def get_experiment(exp_id: str) -> Experiment:
    try:
        return REGISTRY[exp_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {exp_id!r}; known: {sorted(REGISTRY)}"
        ) from None


def list_experiments() -> Sequence[Experiment]:
    return [REGISTRY[k] for k in sorted(REGISTRY)]
