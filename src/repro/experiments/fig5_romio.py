"""Figure 5: ROMIO ``perf`` read and write bandwidth.

Concurrent clients each write (then read) a 4 MB buffer at
``rank * 4MB``; the paper reports post-flush numbers.  Reads are expected
to be nearly identical across schemes (redundancy is never read); writes
favour RAID5/Hybrid because the accesses are large.
"""

from __future__ import annotations

from repro.experiments.base import ExpTable, register
from repro.experiments.common import build
from repro.units import MiB
from repro.workloads.romio_perf import perf_benchmark

CLIENT_COUNTS = (1, 2, 4, 6, 8)
SCHEMES = ("raid0", "raid1", "raid5", "hybrid")


def _run(scale: float, phase: str) -> ExpTable:
    buffer_size = max(256 * 1024, int(4 * MiB * scale))
    table = ExpTable(f"fig5{'a' if phase == 'read' else 'b'}",
                     f"ROMIO perf {phase} bandwidth (MB/s), 4 MB buffers",
                     ["clients"] + list(SCHEMES))
    for nclients in CLIENT_COUNTS:
        row: list = [nclients]
        for scheme in SCHEMES:
            system = build(scheme=scheme, clients=nclients)
            results = perf_benchmark(system, buffer_size=buffer_size,
                                     rounds=3)
            value = (results["read"].read_bandwidth if phase == "read"
                     else results["write"].write_bandwidth)
            row.append(value)
        table.add_row(*row)
    return table


@register("fig5a", "ROMIO perf read bandwidth (MB/s)")
def run_read(scale: float = 1.0) -> ExpTable:
    return _run(scale, "read")


@register("fig5b", "ROMIO perf write bandwidth (MB/s)")
def run_write(scale: float = 1.0) -> ExpTable:
    return _run(scale, "write")
