"""The paper's contribution: RAID0/RAID1/RAID5/Hybrid redundancy schemes,
the distributed parity-lock protocol, overflow regions, and recovery."""

from repro.redundancy.base import RedundancyScheme, make_scheme, SCHEMES
from repro.redundancy.locks import ParityLockTable
from repro.redundancy.overflow import OverflowTable

__all__ = [
    "RedundancyScheme",
    "make_scheme",
    "SCHEMES",
    "ParityLockTable",
    "OverflowTable",
]
