"""CSAR's RAID1: striped block mirroring.

Section 4: "each I/O daemon maintains two files per client file" — the
data file (identical to PVFS) and a redundancy file.  We mirror each
server's data into the redundancy file of its successor ``(s + 1) mod n``
at the same local offsets, so any single server failure leaves a full
copy of its data on its neighbour.  Every write moves 2x the bytes, which
is exactly what saturates the client NIC in Figure 4(a) and overflows the
server caches in Figure 7.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.pvfs import messages as msg
from repro.pvfs.layout import ServerRange
from repro.redundancy import base
from repro.sim.engine import Event
from repro.storage.payload import Payload


@base.register
class Raid1(base.RedundancyScheme):
    """Striped mirroring (RAID10-style)."""

    name = "raid1"

    @staticmethod
    def mirror_server(server: int, n: int) -> int:
        return (server + 1) % n

    def write(self, client, meta, offset: int,
              payload: Payload) -> Generator[Event, Any, None]:
        n = meta.layout.n
        calls: List = []
        targets: List[int] = []
        for sr in meta.layout.map_range(offset, payload.length):
            chunk = self._gather(payload, offset, sr)
            calls.append(client.rpc(client.iods[sr.server], msg.WriteReq(
                meta.name, kind="data", offset=sr.local_start,
                payload=chunk, xid=client.next_xid())))
            targets.append(sr.server)
            calls.append(client.rpc(
                client.iods[self.mirror_server(sr.server, n)],
                msg.WriteReq(meta.name, kind="red", offset=sr.local_start,
                             payload=chunk, xid=client.next_xid())))
            targets.append(self.mirror_server(sr.server, n))
        # Degraded mode: with one server down, the surviving copy of each
        # block still lands (data on s, mirror on s+1 — never the same
        # node for n >= 2), so the write remains fully recoverable.
        yield from self._tolerant_parallel(client, targets, calls)

    def degraded_read(self, client, meta,
                      sr: ServerRange) -> Generator[Event, Any, Payload]:
        mirror = self.mirror_server(sr.server, meta.layout.n)
        response = yield from client.rpc(client.iods[mirror], msg.ReadReq(
            meta.name, kind="red", offset=sr.local_start, length=sr.length,
            xid=client.next_xid()))
        return response.payload
