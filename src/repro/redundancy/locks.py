"""The distributed parity-lock protocol (Section 5.1), server side.

Each I/O server locks parity blocks it stores.  The protocol is carried by
the parity *data path* itself, not by separate lock messages:

* a **parity read** for a block acquires the block's lock (queueing FIFO
  behind the current holder — the server knows a read-modify-write is
  starting);
* the matching **parity write** releases it and wakes the next queued
  reader.

Clients avoid deadlock by always acquiring their (at most two) parity
locks in ascending group order, serializing the second parity read behind
the first.

The table also supports the paper's *R5 NO LOCK* configuration (locking
disabled) used to measure the ~20% locking overhead in Figure 3.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Tuple

from repro.errors import LockProtocolError
from repro.sim.engine import Environment, Event
from repro.sim.resources import FifoLock, Request


class ParityLockTable:
    """Per-server FIFO locks keyed by (file, parity group)."""

    def __init__(self, env: Environment, enabled: bool = True) -> None:
        self.env = env
        self.enabled = enabled
        self._locks: Dict[Tuple[str, int], FifoLock] = {}
        self._held: Dict[Tuple[str, int, int], Request] = {}
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.total_wait_time = 0.0
        # The sanitizer is fixed for the environment's lifetime; bind it
        # once so unsanitized acquires/releases never consult the hooks.
        self._san = env.sanitizer

    def _lock(self, file: str, group: int) -> FifoLock:
        key = (file, group)
        lock = self._locks.get(key)
        if lock is None:
            lock = FifoLock(self.env)
            self._locks[key] = lock
            if self._san is not None:
                self._san.label_lock(lock, file, group)
        return lock

    def _proc_name(self) -> str:
        proc = self.env.active_process
        return proc.name if proc is not None else "<main>"

    # ------------------------------------------------------------------
    def acquire(self, file: str, group: int,
                xid: int) -> Generator[Event, Any, None]:
        """Process body: block until this xid holds the group's lock."""
        if not self.enabled:
            return
        key = (file, group, xid)
        if key in self._held:
            raise LockProtocolError(
                f"xid {xid} already holds parity lock {file}:{group}")
        lock = self._lock(file, group)
        contended = lock.locked
        t0 = self.env.now
        san = self._san
        request = lock.request()
        try:
            if san is not None and not request.triggered:
                san.on_wait(file, group, xid, self._proc_name())
            yield request
        except BaseException:
            # Interrupted (or killed) while queued: cancel the request so
            # the lock is not leaked; if the grant raced ahead of the
            # interrupt, this releases the just-granted slot instead.
            lock.release(request)
            if san is not None:
                san.on_cancel(file, group, xid, self._proc_name())
            raise
        self.acquisitions += 1
        if contended:
            self.contended_acquisitions += 1
        self.total_wait_time += self.env.now - t0
        self._held[key] = request
        if san is not None:
            san.on_acquired(file, group, xid, self._proc_name(),
                            now=self.env.now)

    def release(self, file: str, group: int, xid: int) -> None:
        """Release after the parity write; no-op when locking is off."""
        if not self.enabled:
            return
        san = self._san
        request = self._held.pop((file, group, xid), None)
        if request is None:
            if san is not None:
                san.on_double_release(file, group, xid, self._proc_name())
            raise LockProtocolError(
                f"xid {xid} released parity lock {file}:{group} "
                "it does not hold")
        request.resource.release(request)
        if san is not None:
            san.on_released(file, group, xid)

    def crash(self) -> None:
        """Server crash: forget every held lock.

        A parity lock is protocol-carried — acquired by one handler
        process (the parity read) and released by another (the parity
        write) — so no live process "owns" it and interrupting handlers
        cannot free it.  On a fail-stop crash the server's lock state
        simply ceases to exist: drop every held entry (telling the
        sanitizer, so LockSan sees a release rather than a leak) and
        drop the lock objects.  Queued *waiters* are handler processes
        of this same server; :meth:`IOD.fail` interrupts them, and
        :meth:`acquire`'s cancellation path cleans each queued request
        out of its (now orphaned) lock.
        """
        if not self.enabled:
            self._held.clear()
            self._locks.clear()
            return
        san = self._san
        for (file, group, xid), request in list(self._held.items()):
            del self._held[(file, group, xid)]
            if san is not None:
                # Both ledgers: the protocol-level hold and the raw
                # FifoLock grant that feeds the leak sweep.
                san.on_released(file, group, xid)
                san.on_lock_released(request.resource, request)
        self._locks.clear()

    # ------------------------------------------------------------------
    def is_locked(self, file: str, group: int) -> bool:
        lock = self._locks.get((file, group))
        return bool(lock and lock.locked)

    def queue_length(self, file: str, group: int) -> int:
        lock = self._locks.get((file, group))
        return len(lock.queue) if lock else 0
