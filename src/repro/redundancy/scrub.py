"""Offline redundancy consistency checking (an fsck for CSAR).

Walks the I/O daemons' local files directly — no simulated time — and
verifies the invariants each scheme promises:

* **RAID1**: every server's data file equals the mirror stored in its
  successor's redundancy file.
* **RAID5**: every parity block equals the XOR of its group's in-place
  data blocks.
* **Hybrid**: the RAID5 parity invariant over *in-place* data, plus every
  valid overflow byte range matching its mirror copy.

Only meaningful in content mode; the functions return a list of
human-readable inconsistency descriptions (empty = clean).  These checks
double as the oracle for the test suite's property-based scheme tests and
let users verify a cluster after failure injection and rebuild.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.pvfs.iod import data_file, ovf_file, ovfm_file, red_file  # noqa: F401
from repro.storage.payload import Payload


def _file_size(system, name: str) -> int:
    meta = system.manager.files.get(name)
    if meta is not None and meta.size:
        return meta.size
    # Fall back to the servers' view.
    lay = system.layout
    size = 0
    for iod in system.iods:
        local = iod.fs.files.get(data_file(name))
        if local is not None and local.size:
            size = max(size, lay.logical_of_local(iod.index, local.size - 1) + 1)
    return size


def check_mirrors(system, name: str) -> List[str]:
    """RAID1 invariant: data on s == red on (s+1), byte for byte."""
    issues: List[str] = []
    n = system.layout.n
    for iod in system.iods:
        local = iod.fs.files.get(data_file(name))
        if local is None or local.size == 0:
            continue
        mirror_iod = system.iods[(iod.index + 1) % n]
        mirror = mirror_iod.fs.files.get(red_file(name))
        for ext in local.allocated:
            data = local.read(ext.start, ext.length)
            copy = (mirror.read(ext.start, ext.length) if mirror is not None
                    else Payload.zeros(ext.length))
            if data != copy:
                issues.append(
                    f"mirror mismatch: {name} server {iod.index} "
                    f"local [{ext.start}, {ext.end}) != mirror on "
                    f"server {mirror_iod.index}")
    return issues


def check_parity(system, name: str) -> List[str]:
    """RAID5/Hybrid invariant: parity == XOR of in-place group data."""
    issues: List[str] = []
    lay = system.layout
    unit = lay.unit
    size = _file_size(system, name)
    if size == 0:
        return issues
    groups = -(-size // lay.group_span)
    for group in range(groups):
        blocks = []
        for block in lay.blocks_of_group(group):
            server = lay.server_of_block(block)
            local = lay.local_offset_of_block(block)
            f = system.iods[server].fs.files.get(data_file(name))
            blocks.append(f.read(local, unit) if f is not None
                          else Payload.zeros(unit))
        expected = Payload.xor(blocks, unit)
        p_iod = system.iods[lay.parity_server(group)]
        pf = p_iod.fs.files.get(red_file(name))
        actual = (pf.read(lay.parity_local_offset(group), unit)
                  if pf is not None else Payload.zeros(unit))
        if expected != actual:
            issues.append(
                f"parity mismatch: {name} group {group} on server "
                f"{p_iod.index}")
    return issues


def check_overflow_mirrors(system, name: str) -> List[str]:
    """Hybrid invariant: valid overflow data matches its mirror copy."""
    issues: List[str] = []
    n = system.layout.n
    for iod in system.iods:
        table = iod.overflow.get(name)
        if table is None or not table.covered:
            continue
        mirror_iod = system.iods[(iod.index + 1) % n]
        mtable = mirror_iod.overflow_mirror.get((name, iod.index))
        for ext in table.covered:
            _gaps, reads = table.resolve(ext.start, ext.end)
            local = iod.fs.files.get(ovf_file(name))
            content = Payload.zeros(ext.length)
            for r in reads:
                content = content.overlay(
                    r.local_start - ext.start, local.read(r.ovf_offset,
                                                          r.length))
            if mtable is None:
                issues.append(
                    f"overflow unmirrored: {name} server {iod.index} "
                    f"[{ext.start}, {ext.end})")
                continue
            _mgaps, mreads = mtable.resolve(ext.start, ext.end)
            if _mgaps:
                issues.append(
                    f"overflow mirror missing bytes: {name} server "
                    f"{iod.index} [{ext.start}, {ext.end})")
                continue
            mlocal = mirror_iod.fs.files.get(ovfm_file(name, iod.index))
            mcontent = Payload.zeros(ext.length)
            for r in mreads:
                mcontent = mcontent.overlay(
                    r.local_start - ext.start, mlocal.read(r.ovf_offset,
                                                           r.length))
            if content != mcontent:
                issues.append(
                    f"overflow mirror mismatch: {name} server {iod.index} "
                    f"[{ext.start}, {ext.end})")
    return issues


def online_scrub(system, name: str, client_index: int = 0):
    """Process body: a *timed* verification pass through the normal
    protocol (what a production scrubber daemon would run).

    Reads every parity group's in-place data and parity (or each mirror
    pair under RAID1) through a client, recomputes, and compares.  Unlike
    :func:`scrub` this consumes simulated time — network, server CPU and
    (cold) disk — so experiments can measure scrubbing's interference
    with foreground traffic.  Returns the list of inconsistencies.
    """
    from repro.pvfs import messages as msg

    if not system.config.content_mode:
        raise ConfigError("online_scrub needs content_mode=True")
    client = system.clients[client_index]
    meta = yield from client.open(name)
    lay = system.layout
    unit = lay.unit
    issues: List[str] = []
    scheme = _scheme_of(system, name)
    if scheme == "raid0":
        return issues

    if scheme == "raid1":
        n = lay.n
        size = _file_size(system, name)
        blocks = -(-size // unit)
        for block in range(blocks):
            server = lay.server_of_block(block)
            local = lay.local_offset_of_block(block)
            data = yield from client.rpc(system.iods[server], msg.ReadReq(
                name, kind="inplace", offset=local, length=unit,
                xid=client.next_xid()))
            copy = yield from client.rpc(
                system.iods[(server + 1) % n],
                msg.ReadReq(name, kind="red", offset=local, length=unit,
                            xid=client.next_xid()))
            if data.payload != copy.payload:
                issues.append(f"mirror mismatch: {name} block {block}")
        return issues

    groups = -(-meta.size // lay.group_span)
    for group in range(groups):
        calls = []
        for block in lay.blocks_of_group(group):
            server = lay.server_of_block(block)
            calls.append(client.rpc(system.iods[server], msg.ReadReq(
                name, kind="inplace",
                offset=lay.local_offset_of_block(block), length=unit,
                xid=client.next_xid())))
        responses = yield from client.parallel(calls)
        expected = Payload.xor([r.payload for r in responses], unit)
        yield from client.node.cpu.compute_parity(lay.group_span)
        actual = yield from client.rpc(
            system.iods[lay.parity_server(group)],
            msg.ReadReq(name, kind="red",
                        offset=lay.parity_local_offset(group), length=unit,
                        xid=client.next_xid()))
        if expected != actual.payload:
            issues.append(f"parity mismatch: {name} group {group}")
    system.metrics.add("scrub.online_passes")
    return issues


def _scheme_of(system, name: str) -> str:
    meta = system.manager.files.get(name)
    return meta.scheme if meta is not None else system.config.scheme


def scrub(system, name: str) -> List[str]:
    """Run every invariant check appropriate for the file's scheme."""
    if not system.config.content_mode:
        raise ConfigError("scrub needs content_mode=True")
    scheme = _scheme_of(system, name)
    if scheme == "raid0":
        issues: List[str] = []
    elif scheme == "raid1":
        issues = check_mirrors(system, name)
    elif scheme == "raid5":
        issues = check_parity(system, name)
    elif scheme == "hybrid":
        issues = check_parity(system, name) \
            + check_overflow_mirrors(system, name)
    else:
        raise ConfigError(f"unknown scheme {scheme!r}")
    if system.env.paritysan is not None:
        system.env.paritysan.on_scrub(name, issues)
    return issues
