"""Server-side overflow tables for the Hybrid scheme.

Section 4: partial-stripe writes cannot update data blocks in place (the
old blocks are needed to reconstruct the rest of the stripe after a
failure), so their bytes go to a per-file overflow region, recorded in a
table; "the updated *blocks* are written to an overflow region".  A later
full-stripe write invalidates the entries it covers; reads return the
latest copy.

Allocation is **stripe-unit-block granular**, which is what Table 2's
storage numbers pin down:

* the overflow file is organized in stripe-unit-sized slots, one per
  *version* of a logical data block;
* bytes land inside a slot at their intra-block offset, so a slot can
  accumulate several disjoint updates (Hartree-Fock's sequential 16 KB
  writes fill one slot exactly — Hybrid = 2.0x RAID0, matching the
  paper's 299 vs 149 MB);
* overflow data is never overwritten: updating bytes a slot already
  holds allocates a fresh slot (FLASH's repeated small HDF5-metadata
  rewrites at a 64 KB stripe unit burn a slot per rewrite, which is why
  the paper measures Hybrid *above* RAID1 there).

Space is reclaimed only by compaction (:mod:`repro.redundancy.reclaim`,
the paper's Section 6.7 proposal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.util.intervals import Extent, ExtentMap


@dataclass
class _Slot:
    """One allocated stripe-unit slot holding a version of a block."""

    offset: int                     # slot start in the overflow file
    valid: ExtentMap = field(default_factory=ExtentMap)  # intra-block bytes


@dataclass(frozen=True)
class OverflowWritePiece:
    """Where one piece of an appended range must be written."""

    ovf_offset: int
    local_start: int  # data-file byte space
    local_end: int


@dataclass(frozen=True)
class OverflowRead:
    """One piece of a resolved read that comes from the overflow file."""

    ovf_offset: int
    length: int
    local_start: int  # where the piece lands in data-file byte space


class OverflowTable:
    """Block-granular overflow index for one file on one server."""

    def __init__(self, block_size: int) -> None:
        if block_size <= 0:
            raise ValueError(f"bad overflow block size {block_size}")
        self.block_size = block_size
        #: per logical block: versions, oldest first
        self._slots: Dict[int, List[_Slot]] = {}
        #: currently-valid coverage in data-file byte space
        self.covered = ExtentMap()
        self.next_offset = 0

    # ------------------------------------------------------------------
    def append(self, start: int, end: int) -> List[OverflowWritePiece]:
        """Record a new version of ``[start, end)``.

        Returns the overflow-file pieces the server must write (one per
        touched logical block; a block reuses its newest slot when the
        update only touches bytes that slot does not yet hold).
        """
        if end <= start:
            raise ValueError(f"empty overflow range [{start}, {end})")
        bs = self.block_size
        pieces: List[OverflowWritePiece] = []
        cursor = start
        while cursor < end:
            block = cursor // bs
            intra_lo = cursor - block * bs
            take = min(bs - intra_lo, end - cursor)
            intra_hi = intra_lo + take
            versions = self._slots.setdefault(block, [])
            slot = versions[-1] if versions else None
            if slot is None or slot.valid.overlap(intra_lo, intra_hi):
                # First version, or rewriting bytes the newest slot holds:
                # overflow data is never overwritten, so allocate afresh.
                slot = _Slot(offset=self.next_offset)
                self.next_offset += bs
                versions.append(slot)
            slot.valid.add(intra_lo, intra_hi)
            pieces.append(OverflowWritePiece(
                ovf_offset=slot.offset + intra_lo,
                local_start=cursor, local_end=cursor + take))
            cursor += take
        self.covered.add(start, end)
        return pieces

    def invalidate(self, start: int, end: int) -> None:
        """A full-stripe write superseded ``[start, end)`` in place."""
        self.covered.remove(start, end)

    def truncate(self) -> None:
        """Forget everything (reclaimer rewrote the file as full stripes)."""
        self._slots.clear()
        self.covered.clear()
        self.next_offset = 0

    # ------------------------------------------------------------------
    def resolve(self, start: int, end: int,
                ) -> Tuple[List[Extent], List[OverflowRead]]:
        """Split a data-file read into in-place parts and overflow parts.

        Returns ``(data_parts, overflow_reads)``: the in-place byte ranges
        to read from the data file, and the overflow-file pieces (latest
        version per byte) sorted by data-file position.
        """
        if end <= start:
            return [], []
        bs = self.block_size
        reads: List[OverflowRead] = []
        for seg in self.covered.overlap(start, end):
            cursor = seg.start
            while cursor < seg.end:
                block = cursor // bs
                intra_lo = cursor - block * bs
                take = min(bs - intra_lo, seg.end - cursor)
                need = ExtentMap([(intra_lo, intra_lo + take)])
                for slot in reversed(self._slots.get(block, [])):
                    if not need:
                        break
                    for piece in need.overlap(0, bs):
                        for got in slot.valid.overlap(piece.start, piece.end):
                            reads.append(OverflowRead(
                                ovf_offset=slot.offset + got.start,
                                length=got.length,
                                local_start=block * bs + got.start))
                            need.remove(got.start, got.end)
                if need:  # pragma: no cover - defensive
                    raise AssertionError(
                        "covered bytes without a providing slot")
                cursor += take
        data_parts = self.covered.gaps(start, end)
        reads.sort(key=lambda r: r.local_start)
        return data_parts, reads

    # ------------------------------------------------------------------
    def check_invariants(self) -> List[str]:
        """Structural self-check (ParitySan's content-free oracle).

        Verifies that slots shadow — never alias — each other and their
        home blocks: every slot sits on its own block-aligned offset
        inside the allocated region, valid bytes stay inside the slot,
        and every currently-covered byte has a providing slot.
        """
        issues: List[str] = []
        bs = self.block_size
        seen_offsets: set = set()
        for block, versions in self._slots.items():
            for slot in versions:
                if slot.offset % bs != 0 \
                        or not 0 <= slot.offset < max(self.next_offset, 1):
                    issues.append(
                        f"slot for block {block} at unaligned or "
                        f"out-of-region offset {slot.offset}")
                if slot.offset in seen_offsets:
                    issues.append(
                        f"slot offset {slot.offset} allocated twice "
                        "(two versions alias the same storage)")
                seen_offsets.add(slot.offset)
                for ext in slot.valid:
                    if ext.start < 0 or ext.end > bs:
                        issues.append(
                            f"slot for block {block} marks bytes "
                            f"[{ext.start}, {ext.end}) outside the "
                            f"block size {bs}")
        for ext in self.covered:
            try:
                gaps, _reads = self.resolve(ext.start, ext.end)
            except AssertionError:
                issues.append(
                    f"covered range [{ext.start}, {ext.end}) has no "
                    "providing slot")
                continue
            if gaps:
                issues.append(
                    f"covered range [{ext.start}, {ext.end}) resolves "
                    "with gaps")
        return issues

    # ------------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        """Bytes an ideal byte-granular compaction would keep."""
        return self.covered.total()

    @property
    def allocated_bytes(self) -> int:
        """Bytes the overflow file occupies (slot padding + garbage)."""
        return self.next_offset

    @property
    def fragmentation(self) -> int:
        return self.allocated_bytes - self.live_bytes
