"""The Hybrid scheme — CSAR's contribution (Section 4).

Every write is decomposed into (1) a leading partial-stripe portion,
(2) an integral number of full stripes, and (3) a trailing partial:

* the **full-stripe** portion is written exactly like RAID5 — parity
  computed from the data in hand, no reads, no locks — and additionally
  *invalidates* any overflow entries it supersedes ("a later full stripe
  write automatically moves this data back to RAID5");
* the **partial** portions are written RAID1-style, but never in place:
  the old blocks must survive for stripe reconstruction, so the new bytes
  are appended to an *overflow region* on their home server and mirrored
  to the successor server's overflow-mirror file.

The payoff measured in the paper: no read-modify-write and no parity
locks on small or unaligned writes (RAID1's latency), with RAID5's
bandwidth parsimony on large writes.
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from repro.faults.injector import fault_step
from repro.pvfs import messages as msg
from repro.pvfs.layout import ServerRange
from repro.redundancy import base
from repro.redundancy.raid5 import Raid5
from repro.sim.engine import Event
from repro.storage.payload import Payload


@base.register
class Hybrid(Raid5):
    """Per-write dynamic RAID1/RAID5 selection with overflow regions."""

    name = "hybrid"

    # ------------------------------------------------------------------
    def _write_inner(self, client, meta, offset: int,
                     payload: Payload) -> Generator[Event, Any, None]:
        head, full, tail = meta.layout.split_by_groups(offset, payload.length)
        procs = []
        if full[1] > full[0]:
            client.metrics.add("hybrid.full_stripe_bytes", full[1] - full[0])
            procs.append(client.env.process(self._write_full_groups(
                client, meta, full[0],
                payload.slice(full[0] - offset, full[1] - offset),
                invalidate=True)))
        for lo, hi in (head, tail):
            if hi > lo:
                client.metrics.add("hybrid.partial_stripe_bytes", hi - lo)
                procs.append(client.env.process(self._write_overflow(
                    client, meta, lo, payload.slice(lo - offset, hi - offset))))
        yield client.env.all_of(procs)

    # ------------------------------------------------------------------
    def _write_overflow(self, client, meta, start: int, payload: Payload,
                        ) -> Generator[Event, Any, None]:
        """RAID1-style partial-stripe write into overflow + mirror."""
        fault_step(client.env, "hybrid.overflow.before_write", None)
        n = meta.layout.n
        calls: List = []
        targets: List[int] = []
        for sr in meta.layout.map_range(start, payload.length):
            chunk = self._gather(payload, start, sr)
            ranges: Tuple[Tuple[int, int], ...] = self._local_ranges(sr)
            calls.append(client.rpc(client.iods[sr.server],
                                    msg.OverflowWriteReq(
                meta.name, ranges=list(ranges), payload=chunk,
                xid=client.next_xid())))
            targets.append(sr.server)
            calls.append(client.rpc(client.iods[(sr.server + 1) % n],
                                    msg.OverflowWriteReq(
                meta.name, ranges=list(ranges), payload=chunk, mirror=True,
                origin=sr.server, xid=client.next_xid())))
            targets.append((sr.server + 1) % n)
        # Degraded mode: home and mirror are different nodes, so one
        # failed server still leaves one current copy of every byte.
        yield from self._tolerant_parallel(client, targets, calls)
        fault_step(client.env, "hybrid.overflow.after_write", None)

    @staticmethod
    def _local_ranges(sr: ServerRange) -> Tuple[Tuple[int, int], ...]:
        """A server's share as (local_start, local_end) ranges.

        The share is contiguous in the local file, so this is one range;
        kept as a tuple-of-ranges because the overflow protocol allows
        scatter entries.
        """
        return ((sr.local_start, sr.local_end),)

    # ------------------------------------------------------------------
    def degraded_read(self, client, meta,
                      sr: ServerRange) -> Generator[Event, Any, Payload]:
        """Reconstruct in-place data via parity, then overlay the
        surviving overflow mirror (the latest copies)."""
        inplace = yield from super().degraded_read(client, meta, sr)
        mirror = (sr.server + 1) % meta.layout.n
        response = yield from client.rpc(client.iods[mirror],
                                         msg.MirrorResolveReq(
            meta.name, origin=sr.server, offset=sr.local_start,
            length=sr.length, xid=client.next_xid()))
        out = inplace
        for lo, hi in response.ranges:
            out = out.overlay(lo - sr.local_start,
                              response.payload.slice(lo - sr.local_start,
                                                     hi - sr.local_start))
        return out
