"""CSAR's RAID5: rotating parity with client-driven read-modify-write.

Write path (Section 4):

* the client splits the write into full parity groups and at most two
  partial groups (head/tail);
* full groups: parity is computed from the data being written and both
  are written out — no locking needed because nothing is read;
* partial groups: the client reads the old data being overwritten and the
  old parity region, computes ``new_parity = old_parity ⊕ old ⊕ new``, and
  writes new data plus parity.  The parity *read* acquires the server-side
  block lock and the parity *write* releases it (Section 5.1); when both a
  head and a tail partial exist, the tail's parity read is only issued
  after the head's completes (ascending-group order, the paper's deadlock
  avoidance).

``config.compute_parity = False`` reproduces the *RAID5-npc* curve of
Figure 4(a) (identical traffic, no XOR cost); ``config.locking = False``
(on the I/O daemons) reproduces *R5 NO LOCK* from Figure 3.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import ServerFailed
from repro.faults.injector import fault_step
from repro.pvfs import messages as msg
from repro.pvfs.layout import ServerRange
from repro.redundancy import base
from repro.sim.engine import Event
from repro.storage.payload import Payload


@base.register
class Raid5(base.RedundancyScheme):
    """Rotating-parity redundancy (Figure 2 layout)."""

    name = "raid5"

    # ------------------------------------------------------------------
    # write entry point
    # ------------------------------------------------------------------
    def write(self, client, meta, offset: int,
              payload: Payload) -> Generator[Event, Any, None]:
        paritysan = client.env.paritysan
        bufsan = client.env.bufsan
        if paritysan is not None:
            paritysan.on_write_start(meta.name)
        if bufsan is not None:
            bufsan.on_write_start(meta.name)
        try:
            if self.config.strict_locking and self.config.locking:
                yield from self._strict_write(client, meta, offset, payload)
            else:
                yield from self._write_inner(client, meta, offset, payload)
        finally:
            if paritysan is not None:
                paritysan.on_write_complete(meta.name)
            if bufsan is not None:
                bufsan.on_write_complete(meta.name)

    def _rmw_unlock(self, own_lock: bool) -> bool:
        """Whether the RMW's closing ParityWriteReq releases the group
        lock it took.  A seam for fault-injecting subclasses
        (:mod:`repro.analysis.seeded_bugs`); real schemes always
        release what they acquired."""
        return own_lock

    def _fold_parity(self, parity: Payload,
                     patches: List[Tuple[int, Payload]]) -> Payload:
        """Fold the RMW's old/new delta patches into the parity piece.

        A seam for fault-injecting subclasses
        (:mod:`repro.analysis.seeded_bugs`); the real scheme folds into
        a private writable copy (``xor_at_many``) and never touches the
        server response's frozen buffer."""
        return parity.xor_at_many(patches)

    def _strict_write(self, client, meta, offset: int,
                      payload: Payload) -> Generator[Event, Any, None]:
        """Section 5.1's stronger-consistency extension: take every
        touched group's lock (ascending, at the parity servers) around
        the whole write, serializing even overlapping concurrent writes.
        """
        lay = meta.layout
        first = lay.group_of(offset)
        last = lay.group_of(offset + payload.length - 1)
        xid = client.next_xid()
        for group in range(first, last + 1):
            yield from client.rpc(
                client.iods[lay.parity_server(group)],
                msg.GroupLockReq(meta.name, group=group, xid=xid))
        try:
            yield from self._write_inner(client, meta, offset, payload)
        finally:
            yield from client.parallel([
                client.rpc(client.iods[lay.parity_server(group)],
                           msg.GroupUnlockReq(meta.name, group=group,
                                              xid=xid))
                for group in range(first, last + 1)])

    def _write_inner(self, client, meta, offset: int,
                     payload: Payload) -> Generator[Event, Any, None]:
        head, full, tail = meta.layout.split_by_groups(offset, payload.length)
        procs = []
        if full[1] > full[0]:
            procs.append(client.env.process(self._write_full_groups(
                client, meta, full[0],
                payload.slice(full[0] - offset, full[1] - offset))))
        partials = [seg for seg in (head, tail) if seg[1] > seg[0]]
        if partials:
            procs.append(client.env.process(self._write_partials(
                client, meta, partials, payload, offset)))
        yield client.env.all_of(procs)

    # ------------------------------------------------------------------
    # full parity groups: compute parity from the new data, no locks
    # ------------------------------------------------------------------
    def _parity_for_group(self, lay, group: int, payload: Payload,
                          base_offset: int) -> Payload:
        lo, _hi = lay.group_range(group)
        if not self.config.compute_parity:
            return Payload.virtual(lay.unit) if payload.is_virtual \
                else Payload.zeros(lay.unit)
        blocks = [payload.slice(lo - base_offset + i * lay.unit,
                                lo - base_offset + (i + 1) * lay.unit)
                  for i in range(lay.group_width)]
        return Payload.xor(blocks, lay.unit)

    def _parity_write_requests(self, client, meta, start: int, end: int,
                               payload: Payload, base_offset: int,
                               ) -> Dict[int, msg.WriteReq]:
        """Batched per-server parity writes for groups covering [start,end).

        A server's parity blocks for consecutive groups pack densely in
        its redundancy file, so each server gets one contiguous write.
        """
        lay = meta.layout
        per_server: Dict[int, List[Tuple[int, Payload]]] = {}
        for group in range(lay.group_of(start), lay.group_of(end - 1) + 1):
            parity = self._parity_for_group(lay, group, payload, base_offset)
            per_server.setdefault(lay.parity_server(group), []).append(
                (lay.parity_local_offset(group), parity))
        out: Dict[int, msg.WriteReq] = {}
        for server, blocks in per_server.items():
            blocks.sort()
            first = blocks[0][0]
            parts = [(local - first, p) for local, p in blocks]
            length = parts[-1][0] + blocks[-1][1].length
            out[server] = msg.WriteReq(
                meta.name, kind="red", offset=first,
                # One parity message per server: assemble is zero-copy
                # (segment rope) and runs once per server, not per block.
                payload=Payload.assemble(length, parts),  # csar-lint: disable=CSAR012
                xid=client.next_xid())
        return out

    def _write_full_groups(self, client, meta, start: int, payload: Payload,
                           invalidate: bool = False,
                           ) -> Generator[Event, Any, None]:
        lay = meta.layout
        end = start + payload.length
        if self.config.compute_parity:
            yield from client.node.cpu.compute_parity(
                payload.length, bytewise=self.config.parity_bytewise)
        data_requests = self._data_write_requests(
            client, meta, start, payload, invalidate=invalidate)
        parity_requests = self._parity_write_requests(
            client, meta, start, end, payload, start)
        if invalidate:
            self._attach_mirror_invalidations(
                meta, start, payload.length,
                {server: req for server, req in data_requests},
                parity_requests)
        fault_step(client.env, "raid5.full_stripe.before_write", None)
        calls = [client.rpc(client.iods[s], r) for s, r in data_requests]
        targets = [s for s, _r in data_requests]
        calls += [client.rpc(client.iods[s], r)
                  for s, r in parity_requests.items()]
        targets += list(parity_requests)
        # Degraded mode: parity is computed from the complete new data the
        # client holds, so a failed data server's block stays recoverable
        # (and a failed parity server just leaves parity for the rebuild).
        yield from self._tolerant_parallel(client, targets, calls)

    def _attach_mirror_invalidations(self, meta, start: int, length: int,
                                     data_by_server: Dict[int, msg.WriteReq],
                                     parity_by_server: Dict[int, msg.WriteReq],
                                     ) -> None:
        """Hybrid hook: full-stripe writes must also drop stale overflow
        *mirror* entries held by each data server's successor."""
        n = meta.layout.n
        for sr in meta.layout.map_range(start, length):
            holder = (sr.server + 1) % n
            target = data_by_server.get(holder) or parity_by_server.get(holder)
            if target is None:  # pragma: no cover - full groups hit all servers
                raise AssertionError("mirror holder got no request")
            target.mirror_invalidate += (
                (sr.server, sr.local_start, sr.local_end),)

    # ------------------------------------------------------------------
    # partial groups: locked read-modify-write
    # ------------------------------------------------------------------
    def _write_partials(self, client, meta,
                        segments: List[Tuple[int, int]], payload: Payload,
                        base_offset: int) -> Generator[Event, Any, None]:
        """Run the (≤2) partial-group RMWs, parity reads in ascending order."""
        segments = sorted(segments)
        procs = []
        gate: Optional[Event] = None
        for lo, hi in segments:
            read_done = client.env.event()
            procs.append(client.env.process(self._rmw(
                client, meta, lo, hi,
                payload.slice(lo - base_offset, hi - base_offset),
                gate, read_done)))
            gate = read_done
        yield client.env.all_of(procs)

    def _rmw(self, client, meta, lo: int, hi: int, new_data: Payload,
             gate: Optional[Event], parity_read_done: Event,
             ) -> Generator[Event, Any, None]:
        lay = meta.layout
        unit = lay.unit
        group = lay.group_of(lo)
        xid = client.next_xid()
        ranges = lay.map_range(lo, hi - lo)
        pieces = [p for sr in ranges for p in sr.pieces]
        intra_lo = min(p.local_offset % unit for p in pieces)
        intra_hi = max(p.local_offset % unit + p.length for p in pieces)
        p_server = lay.parity_server(group)
        p_local = lay.parity_local_offset(group)

        # Old-data reads proceed immediately; the parity read (which takes
        # the lock) waits for the lower-numbered group's read to finish.
        old_data_proc = client.env.process(client.try_parallel([
            client.rpc(client.iods[sr.server],
                       msg.ReadReq(meta.name, kind="data",
                                   offset=sr.local_start, length=sr.length,
                                   xid=xid))
            for sr in ranges]))
        # Under strict whole-group locking the writer already holds this
        # group's lock, so the RMW's parity read/write must not re-lock.
        own_lock = not (self.config.strict_locking and self.config.locking)
        if gate is not None:
            yield gate
        fault_step(client.env, "raid5.rmw.before_parity_read", p_server)
        try:
            parity_response = yield from client.rpc(
                client.iods[p_server],
                msg.ParityReadReq(meta.name, group=group, local_offset=p_local,
                                  intra=(intra_lo, intra_hi), xid=xid,
                                  lock=own_lock))
        except ServerFailed:
            # Degraded mode, parity server down: no lock to take and no
            # parity to maintain — write the data in place; the rebuild
            # recomputes this group's parity from the in-place data.
            yield old_data_proc  # let the reads settle
            client.metrics.add("client.degraded_writes")
            calls = [client.rpc(client.iods[sr.server], msg.WriteReq(
                        meta.name, kind="data", offset=sr.local_start,
                        payload=self._gather(new_data, lo, sr), xid=xid))
                     for sr in ranges]
            yield from self._tolerant_parallel(
                client, [sr.server for sr in ranges], calls)
            return
        finally:
            # Always open the gate so a failure here cannot deadlock the
            # sibling partial-group RMW waiting on us.
            if not parity_read_done.triggered:
                parity_read_done.succeed()

        fault_step(client.env, "raid5.rmw.after_parity_read", p_server)
        outcomes = yield old_data_proc
        old_chunks = []
        old_errors: List[Optional[Exception]] = [e for _v, e in outcomes]
        for sr, (response, error) in zip(ranges, outcomes):
            if error is None:
                old_chunks.append(response.payload)
            elif isinstance(error, ServerFailed):
                # Degraded mode, data server down: reconstruct the old
                # bytes from the surviving blocks + parity so the parity
                # update still implies the new data of the lost block.
                client.metrics.add("client.degraded_writes")
                piece = yield from Raid5.degraded_read(self, client, meta, sr)
                old_chunks.append(piece)
            else:
                raise error

        new_parity = parity_response.payload
        if self.config.compute_parity:
            # One in-place fold over the parity region: XOR-ing the old
            # and the new piece in directly is the delta fold without
            # allocating a delta (or a parity copy) per piece.
            patches: List[Tuple[int, Payload]] = []
            for sr, old_chunk in zip(ranges, old_chunks):
                for p in sr.pieces:
                    at = p.local_offset - sr.local_start
                    lo_l = p.logical_offset - lo
                    patch_at = p.local_offset % unit - intra_lo
                    patches.append((patch_at,
                                    old_chunk.slice(at, at + p.length)))
                    patches.append((patch_at,
                                    new_data.slice(lo_l, lo_l + p.length)))
            new_parity = self._fold_parity(new_parity, patches)
            yield from client.node.cpu.compute_parity(
                2 * (hi - lo), bytewise=self.config.parity_bytewise)
        else:
            new_parity = (Payload.virtual(intra_hi - intra_lo)
                          if new_parity.is_virtual
                          else Payload.zeros(intra_hi - intra_lo))

        fault_step(client.env, "raid5.rmw.before_writeback", p_server)
        calls = [client.rpc(client.iods[sr.server], msg.WriteReq(
                    meta.name, kind="data", offset=sr.local_start,
                    payload=self._gather(new_data, lo, sr), xid=xid))
                 for sr in ranges]
        targets = [sr.server for sr in ranges]
        calls.append(client.rpc(client.iods[p_server], msg.ParityWriteReq(
            meta.name, group=group, local_offset=p_local,
            intra=(intra_lo, intra_hi), payload=new_parity,
            unlock=self._rmw_unlock(own_lock), xid=xid)))
        targets.append(p_server)
        wb_outcomes = yield from self._tolerant_parallel(client, targets,
                                                         calls)
        yield from self._writeback_outcome(
            client, meta, group, ranges, old_errors, old_chunks,
            new_data, lo, (intra_lo, intra_hi), wb_outcomes, xid)
        fault_step(client.env, "raid5.rmw.after_writeback", p_server)

    def _writeback_outcome(self, client, meta, group: int, ranges,
                           old_errors, old_chunks, new_data: Payload,
                           base_lo: int, intra: Tuple[int, int], outcomes,
                           xid: int) -> Generator[Event, Any, None]:
        """Seam: inspect the RMW writeback's per-call outcomes.

        ``outcomes`` pairs up with the data writes (one per server
        range) followed by the parity write; ``old_errors`` /
        ``old_chunks`` are the per-range results of the old-data reads.
        The real scheme needs no reaction — a single failed data write
        is already covered by the folded parity — so this is a no-op; a
        seam for fault-injecting subclasses
        (:mod:`repro.analysis.seeded_bugs`)."""
        return
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # degraded read: XOR the surviving blocks and the parity
    # ------------------------------------------------------------------
    def degraded_read(self, client, meta,
                      sr: ServerRange) -> Generator[Event, Any, Payload]:
        """Reconstruct ``sr`` by XOR-ing survivors + parity, batched.

        Every piece's survivor and parity reads are issued through one
        coalesced batch: a surviving server's blocks for consecutive
        groups sit on consecutive local rows (and so do a server's parity
        blocks), so a multi-piece recovery collapses to roughly one
        message per server per parity-duty gap instead of ``n`` messages
        per piece.
        """
        lay = meta.layout
        unit = lay.unit
        pairs: List[Tuple[Any, msg.ReadReq]] = []
        piece_slots: List[List[int]] = []
        for p in sr.pieces:
            group = lay.group_of(p.logical_offset)
            intra = p.local_offset % unit
            slots: List[int] = []
            for block in lay.blocks_of_group(group):
                server = lay.server_of_block(block)
                if server == sr.server:
                    continue
                local = lay.local_offset_of_block(block) + intra
                slots.append(len(pairs))
                pairs.append((client.iods[server], msg.ReadReq(
                    meta.name, kind="inplace", offset=local, length=p.length,
                    xid=client.next_xid())))
            slots.append(len(pairs))
            pairs.append((client.iods[lay.parity_server(group)], msg.ReadReq(
                meta.name, kind="red",
                offset=lay.parity_local_offset(group) + intra,
                length=p.length, xid=client.next_xid())))
            piece_slots.append(slots)
        outcomes = yield from client.rpc_coalesced(pairs)
        parts: List[Tuple[int, Payload]] = []
        for p, slots in zip(sr.pieces, piece_slots):
            blocks = []
            for i in slots:
                response, error = outcomes[i]
                if error is not None:
                    raise error
                blocks.append(response.payload)
            rebuilt = Payload.xor(blocks, p.length)
            parts.append((p.local_offset - sr.local_start, rebuilt))
        return Payload.assemble(sr.length, parts)
