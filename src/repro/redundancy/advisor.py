"""Scheme advisor: the paper's insight as a decision procedure.

Given an I/O trace (or just a write-size histogram) and the stripe
geometry, predict each scheme's byte amplification — network and storage
— and recommend one.  This is exactly the reasoning Section 2 walks
through: RAID1 costs 2x always; RAID5 costs 1 + 1/(n-1) on full stripes
but pays read-modify-write on partial ones; Hybrid pays parity on the
full-stripe portion and mirrors the rest into overflow.

The advisor never simulates — it is a closed-form planning tool — but
its estimates are validated against simulation in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigError
from repro.pvfs.layout import StripeLayout
from repro.util.trace import Trace


@dataclass(frozen=True)
class SchemeEstimate:
    """Predicted cost of one scheme for one workload."""

    scheme: str
    #: client-to-server bytes per application byte written
    network_amplification: float
    #: stored bytes per application byte (steady state, pre-reclaim)
    storage_amplification: float
    #: extra server round-trip phases per write (read-before-write)
    rmw_phases: float


def _split_write(layout: StripeLayout, offset: int,
                 length: int) -> Tuple[int, int]:
    """(full-stripe bytes, partial-stripe bytes) of one write."""
    head, full, tail = layout.split_by_groups(offset, length)
    full_bytes = full[1] - full[0]
    return full_bytes, length - full_bytes


def estimate(writes: Iterable[Tuple[int, int]],
             layout: StripeLayout) -> Dict[str, SchemeEstimate]:
    """Cost model over (offset, length) writes."""
    if layout.n < 2:
        raise ConfigError("the advisor needs at least 2 servers")
    total = full_total = partial_total = 0
    rmw_writes = 0
    count = 0
    for offset, length in writes:
        if length <= 0:
            continue
        full_bytes, partial_bytes = _split_write(layout, offset, length)
        total += length
        full_total += full_bytes
        partial_total += partial_bytes
        if partial_bytes:
            rmw_writes += 1
        count += 1
    if total == 0:
        raise ConfigError("no write traffic to analyze")
    parity_rate = 1.0 / layout.group_width
    full_frac = full_total / total
    partial_frac = partial_total / total

    raid1 = SchemeEstimate("raid1", 2.0, 2.0, 0.0)
    # RAID5: parity on everything; partial bytes additionally read old
    # data + parity first (≈ the same bytes again, coming back).
    raid5 = SchemeEstimate(
        "raid5",
        (1 + parity_rate) + partial_frac * (1 + parity_rate),
        1 + parity_rate,
        rmw_writes / max(count, 1))
    hybrid = SchemeEstimate(
        "hybrid",
        full_frac * (1 + parity_rate) + partial_frac * 2.0,
        # Storage (allocated bytes): full-stripe portions live in place
        # with parity; partial portions leave holes in the data file and
        # two overflow copies.  Matches Hartree-Fock's measured 2.0x
        # (all-partial) and BTIO's ~1.3x (mostly-full).
        full_frac * (1 + parity_rate) + partial_frac * 2.0,
        0.0)
    return {e.scheme: e for e in (raid1, raid5, hybrid)}


def estimate_from_trace(trace: Trace,
                        layout: StripeLayout) -> Dict[str, SchemeEstimate]:
    return estimate(((r.offset, r.length) for r in trace
                     if r.op == "write"), layout)


def recommend(estimates: Dict[str, SchemeEstimate],
              storage_weight: float = 0.25) -> str:
    """Pick a scheme: bandwidth cost first, storage as a tiebreaker.

    The score mirrors the paper's priorities ("we optimized performance
    seen by the applications ... at the expense of storage efficiency"):
    network amplification plus a phase penalty dominate; storage gets a
    configurable minor weight.
    """
    def score(e: SchemeEstimate) -> float:
        return (e.network_amplification + 0.5 * e.rmw_phases
                + storage_weight * e.storage_amplification)

    return min(estimates.values(), key=score).scheme


def advise(trace: Trace, layout: StripeLayout,
           storage_weight: float = 0.25) -> Tuple[str, List[SchemeEstimate]]:
    """One-call interface: (recommended scheme, all estimates)."""
    estimates = estimate_from_trace(trace, layout)
    choice = recommend(estimates, storage_weight)
    ordered = sorted(estimates.values(),
                     key=lambda e: e.network_amplification)
    return choice, ordered
