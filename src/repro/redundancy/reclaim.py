"""The background overflow reclaimer (the paper's Section 6.7 proposal).

"The storage used for overflow regions could be recovered by implementing
a simple process that reads files in their entirety and writes them in a
large chunk ... run in the background and activated when the system is
under a low load.  With such a mechanism, the long-term storage of the
Hybrid scheme would be the same as the RAID5 scheme."

Implementation: read the file's latest content, rewrite every *complete*
parity group through the normal Hybrid full-stripe path (which writes data
in place, computes fresh parity, and invalidates the superseded overflow
entries), then ask every server to compact its overflow files down to the
remaining live bytes (normally just the sub-group tail of the file).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ConfigError
from repro.pvfs import messages as msg
from repro.sim.engine import Event


def reclaim_file(system, name: str,
                 client_index: int = 0) -> Generator[Event, Any, dict]:
    """Process body: fold one file's overflow data back into RAID5 form.

    Returns a report dict with overflow stats before/after.
    """
    client = system.clients[client_index]
    meta = yield from client.open(name)
    if meta.scheme != "hybrid":
        raise ConfigError("the reclaimer only applies to hybrid files")
    before = system.overflow_stats(name)
    span = system.layout.group_span
    full_end = (meta.size // span) * span
    chunk = 16 * span
    for start in range(0, full_end, chunk):
        length = min(chunk, full_end - start)
        content = yield from client.read(name, start, length)
        yield from client.write(name, start, content)
    yield from client.parallel([
        client.rpc(iod, msg.CompactOverflowReq(name, xid=client.next_xid()))
        for iod in system.iods])
    after = system.overflow_stats(name)
    system.metrics.add("hybrid.reclaims")
    return {"before": before, "after": after}


def background_reclaimer(system, interval: float = 30.0,
                         fragmentation_threshold: int = 1 << 20,
                         client_index: int = 0,
                         ) -> Generator[Event, Any, None]:
    """A daemon that reclaims any file whose overflow garbage exceeds the
    threshold; runs forever (spawn with ``system.env.process``)."""
    while True:
        yield system.env.timeout(interval)
        for name in list(system.manager.files):
            stats = system.overflow_stats(name)
            if stats["fragmentation"] >= fragmentation_threshold \
                    or stats["live"] >= fragmentation_threshold:
                yield from reclaim_file(system, name, client_index)
