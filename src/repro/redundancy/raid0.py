"""RAID0: original PVFS striping, no redundancy.

The baseline every figure in the paper normalizes against.  A single
server failure loses data — :class:`~repro.errors.DataLoss` on any read
touching the failed server.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import DataLoss
from repro.pvfs.layout import ServerRange
from repro.redundancy import base
from repro.sim.engine import Event
from repro.storage.payload import Payload


@base.register
class Raid0(base.RedundancyScheme):
    """Plain striping (the unmodified PVFS behaviour)."""

    name = "raid0"

    def write(self, client, meta, offset: int,
              payload: Payload) -> Generator[Event, Any, None]:
        requests = self._data_write_requests(client, meta, offset, payload)
        yield from client.parallel([
            client.rpc(client.iods[server], request)
            for server, request in requests])

    def degraded_read(self, client, meta,
                      sr: ServerRange) -> Generator[Event, Any, Payload]:
        raise DataLoss(
            f"RAID0 stores no redundancy: bytes on failed server "
            f"{sr.server} are unrecoverable")
        yield  # pragma: no cover - makes this a generator
