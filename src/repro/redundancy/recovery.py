"""Full reconstruction of a failed I/O server.

The paper's long-term objective for CSAR is tolerance of single disk
failures; degraded reads (in each scheme's ``degraded_read``) cover the
online path, and this module covers repair: rebuilding every local file a
replacement server should hold, from the surviving redundancy.

For a failed server ``s`` holding files derived from PVFS file ``f``:

* ``f.data`` — RAID1: copy from the mirror on ``s+1``;
  RAID5/Hybrid: XOR of each parity group's surviving in-place blocks and
  its parity block;
* ``f.red`` — RAID1: re-mirror from the data on ``s-1``;
  RAID5/Hybrid: recompute the parity blocks ``s`` is responsible for;
* ``f.ovf`` + overflow table — Hybrid: replay from the overflow mirror on
  ``s+1``;
* ``f.ovfm`` + mirror table — Hybrid: replay from the overflow region on
  ``s-1``.

The rebuild runs as a simulation process driven by a recovery client, so
it has realistic cost (it is essentially a whole-file read plus a
whole-file write).
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.errors import ConfigError, ServerFailed
from repro.pvfs import messages as msg
from repro.pvfs.iod import IOD
from repro.sim.engine import Event
from repro.storage.payload import Payload


def _server_local_size(system, name: str, server: int) -> int:
    """Upper bound of the failed server's data-file size, derived from the
    logical file size (its own metadata is gone)."""
    meta = system.manager.files.get(name)
    if meta is None:
        return 0
    lay = system.layout
    total_blocks = -(-meta.size // lay.unit)
    # Blocks held by `server` are server, server+n, ... < total_blocks.
    if total_blocks <= server:
        return 0
    rows = (total_blocks - server + lay.n - 1) // lay.n
    return rows * lay.unit


class _RebuildTracker:
    """Collects the names of files written while a rebuild is copying.

    Registered as a :class:`~repro.pvfs.manager.WriteLedger` watcher;
    notifications arrive at write *completion*, when the survivors hold
    the settled bytes, so a re-copy of a dirty file always observes a
    state at least as new as the write that dirtied it.
    """

    def __init__(self) -> None:
        self.dirty: set = set()

    def note_write(self, name: str) -> None:
        self.dirty.add(name)

    def drain(self) -> set:
        dirty, self.dirty = self.dirty, set()
        return dirty


def rebuild_server(system, index: int,
                   recovery_client: int = 0) -> Generator[Event, Any, None]:
    """Process body: repair server ``index`` in place from survivors.

    The server must currently be failed; on return it is live again with
    all local files reconstructed.  Raises
    :class:`~repro.errors.ConfigError` for RAID0 (nothing to rebuild
    from).

    The rebuild is safe under concurrent client traffic: writes issued
    while it runs go down the degraded path (they skip the failed
    server), and the cluster :class:`~repro.pvfs.manager.WriteLedger`
    reports every completed write to this rebuild, which then re-copies
    the dirtied files.  The loop converges because each re-copy reads a
    strictly newer settled state; the server is only brought live — a
    synchronous flip, with zero sim-time between the final clean check
    and the flip — once no file is dirty *and* no write is in flight
    (an in-flight write saw the server as failed and would leave it
    stale if it completed after the rejoin).
    """
    if all(meta.scheme == "raid0"
           for meta in system.manager.files.values()) \
            and system.config.scheme == "raid0":
        raise ConfigError("RAID0 stores no redundancy; cannot rebuild")
    iod: IOD = system.iods[index]
    if not iod.failed:
        raise ServerFailed(f"server {index} is not failed; refusing rebuild")
    client = system.clients[recovery_client]
    names = list(system.manager.files)
    ledger = system.manager.write_ledger
    tracker = _RebuildTracker()
    ledger.watchers.append(tracker)

    # Stage the reconstructed state while the daemon still rejects I/O.
    iod.rebuilding = True
    iod.repair(wipe=True)
    iod.fail()
    try:
        for name in names:
            yield from _rebuild_file(system, client, iod, name)
        # Converge under concurrent traffic: re-copy files written while
        # we were copying, then wait out in-flight writes (which may
        # dirty more files when they complete), until both are clean.
        while True:
            dirty = tracker.drain()
            if dirty:
                system.metrics.add("recovery.dirty_passes")
                for name in sorted(dirty):
                    if name not in system.manager.files:
                        continue
                    _reset_local_overflow(system, iod, name)
                    yield from _rebuild_file(system, client, iod, name)
                continue
            if ledger.active:
                yield ledger.quiesce_event(system.env)
                continue
            break
    finally:
        ledger.watchers.remove(tracker)
        iod.rebuilding = False
        iod.failed = False
        for c in system.clients:
            c.suspected.discard(index)
    system.metrics.add("failures.rebuilt")
    if system.env.paritysan is not None:
        system.env.paritysan.on_recovery(index)
    if system.env.bufsan is not None:
        system.env.bufsan.on_recovery(index)


def _reset_local_overflow(system, iod: IOD, name: str) -> None:
    """Drop the rebuilt server's overflow state for one file before a
    re-copy: the replay in :func:`_rebuild_overflow` appends from a
    fresh table, so stale allocations from the previous pass must not
    survive (the table is authoritative — orphaned ``.ovf`` bytes past
    the new allocation are unreachable)."""
    iod.overflow.pop(name, None)
    predecessor = (iod.index - 1) % system.layout.n
    iod.overflow_mirror.pop((name, predecessor), None)


def _rebuild_file(system, client, iod: IOD,
                  name: str) -> Generator[Event, Any, None]:
    lay = system.layout
    n = lay.n
    index = iod.index
    scheme = system.manager.files[name].scheme
    if scheme == "raid0":
        # Nothing to rebuild from: the file's share on this server is
        # gone (PVFS semantics).  Reads will raise DataLoss.
        system.metrics.add("failures.raid0_files_lost")
        return
    local_size = _server_local_size(system, name, index)
    chunk = 64 * lay.unit

    # ---- data file -----------------------------------------------------
    # The data file must be rebuilt to its *in-place* content (what parity
    # covers), never the overflow-overlaid latest view — otherwise parity
    # would no longer match and a later failure would reconstruct garbage.
    from repro.redundancy.raid5 import Raid5

    meta = system.manager.files[name]
    scheme_obj = client.scheme_for(meta)
    for start in range(0, local_size, chunk):
        length = min(chunk, local_size - start)
        sr = _pieces_for_local(lay, index, start, length)
        if scheme == "raid1":
            payload = yield from scheme_obj.degraded_read(client, meta, sr)
        else:
            payload = yield from Raid5.degraded_read(
                scheme_obj, client, meta, sr)
        yield from iod.fs.write(f"{name}.data", start, payload)

    # ---- redundancy file -------------------------------------------------
    if scheme == "raid1":
        source = system.iods[(index - 1) % n]
        src_size = _server_local_size(system, name, source.index)
        for start in range(0, src_size, chunk):
            length = min(chunk, src_size - start)
            response = yield from client.rpc(source, msg.ReadReq(
                name, kind="data", offset=start, length=length,
                xid=client.next_xid()))
            yield from iod.fs.write(f"{name}.red", start, response.payload)
    else:
        yield from _rebuild_parity(system, client, iod, name)

    # ---- overflow region + tables (Hybrid) -------------------------------
    if scheme == "hybrid":
        yield from _rebuild_overflow(system, client, iod, name)


def _pieces_for_local(lay, server: int, local_start: int, length: int):
    """A ServerRange-shaped view of a failed server's local byte range."""
    from repro.pvfs.layout import Piece, ServerRange

    pieces: List[Piece] = []
    cursor = local_start
    end = local_start + length
    while cursor < end:
        row, intra = divmod(cursor, lay.unit)
        take = min(lay.unit - intra, end - cursor)
        pieces.append(Piece(
            server=server,
            logical_offset=(row * lay.n + server) * lay.unit + intra,
            local_offset=cursor,
            length=take))
        cursor += take
    return ServerRange(server, local_start, end, tuple(pieces))


def _rebuild_parity(system, client, iod: IOD,
                    name: str) -> Generator[Event, Any, None]:
    """Recompute the parity blocks a rebuilt server must hold."""
    lay = system.layout
    meta = system.manager.files[name]
    groups = -(-meta.size // lay.group_span)
    for group in range(groups):
        if lay.parity_server(group) != iod.index:
            continue
        calls = []
        for block in lay.blocks_of_group(group):
            server = lay.server_of_block(block)
            calls.append(client.rpc(system.iods[server], msg.ReadReq(
                name, kind="inplace",
                offset=lay.local_offset_of_block(block), length=lay.unit,
                xid=client.next_xid())))
        responses = yield from client.parallel(calls)
        parity = Payload.xor([r.payload for r in responses], lay.unit)
        yield from client.node.cpu.compute_parity(lay.group_span)
        yield from iod.fs.write(f"{name}.red",
                                lay.parity_local_offset(group), parity)


def _rebuild_overflow(system, client, iod: IOD,
                      name: str) -> Generator[Event, Any, None]:
    """Replay overflow (from the mirror) and the mirror (from the origin)."""
    n = system.layout.n
    index = iod.index

    # Own overflow region: the successor's mirror table is authoritative.
    successor = system.iods[(index + 1) % n]
    mtable = successor.overflow_mirror.get((name, index))
    if mtable is not None and mtable.covered:
        from repro.redundancy.overflow import OverflowTable

        table = iod.overflow.setdefault(
            name, OverflowTable(system.layout.unit))
        for ext in mtable.covered:
            response = yield from client.rpc(successor, msg.MirrorResolveReq(
                name, origin=index, offset=ext.start, length=ext.length,
                xid=client.next_xid()))
            for piece in table.append(ext.start, ext.end):
                yield from iod.fs.write(
                    f"{name}.ovf", piece.ovf_offset,
                    response.payload.slice(piece.local_start - ext.start,
                                           piece.local_end - ext.start))

    # Overflow mirror held for the predecessor: replay from its live table.
    predecessor = system.iods[(index - 1) % n]
    ptable = predecessor.overflow.get(name)
    if ptable is not None and ptable.covered:
        from repro.redundancy.overflow import OverflowTable

        mirror = iod.overflow_mirror.setdefault(
            (name, predecessor.index), OverflowTable(system.layout.unit))
        for ext in ptable.covered:
            _gaps, reads = ptable.resolve(ext.start, ext.end)
            content = Payload.zeros(ext.length) \
                if system.config.content_mode else Payload.virtual(ext.length)
            for r in reads:
                piece = yield from predecessor.fs.read(
                    f"{name}.ovf", r.ovf_offset, r.length)
                content = content.overlay(r.local_start - ext.start, piece)
            for piece in mirror.append(ext.start, ext.end):
                yield from iod.fs.write(
                    f"{name}.ovfm{predecessor.index}", piece.ovf_offset,
                    content.slice(piece.local_start - ext.start,
                                  piece.local_end - ext.start))
