"""The redundancy-scheme interface and shared read/write plumbing.

A scheme is a *client-side* strategy object: given a file's layout it
decides which servers receive which bytes and what redundancy accompanies
them.  Reads are identical across schemes during normal operation —
redundancy is never read (Section 4) — so the striped read with
degraded-mode fallback lives here; each scheme supplies only its
reconstruction rule and its write path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import ConfigError, DataLoss, ServerFailed
from repro.pvfs import messages as msg
from repro.pvfs.layout import ServerRange
from repro.sim.engine import Event
from repro.storage.payload import Payload


class RedundancyScheme(ABC):
    """Strategy interface: how writes carry redundancy, how reads recover."""

    #: registry key ("raid0", "raid1", ...)
    name: str = ""

    def __init__(self, config) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # write path (scheme-specific)
    # ------------------------------------------------------------------
    @abstractmethod
    def write(self, client, meta, offset: int,
              payload: Payload) -> Generator[Event, Any, None]:
        """Store ``payload`` at ``offset`` with this scheme's redundancy."""

    # ------------------------------------------------------------------
    # read path (shared striped read + degraded fallback)
    # ------------------------------------------------------------------
    def read(self, client, meta, offset: int,
             length: int) -> Generator[Event, Any, Payload]:
        ranges = meta.layout.map_range(offset, length)

        def fetch(sr):
            if sr.server in client.suspected:
                # Fail-fast: the client already saw this server fail, so
                # it reconstructs without re-trying the dead node.
                client.metrics.add("client.failfast_reads")
                raise ServerFailed(f"iod{sr.server} suspected")
            response = yield from client.rpc(
                client.iods[sr.server],
                msg.ReadReq(meta.name, kind="data", offset=sr.local_start,
                            length=sr.length, xid=client.next_xid()))
            return response

        outcomes = yield from client.try_parallel(
            [fetch(sr) for sr in ranges])
        parts: List[Tuple[int, Payload]] = []
        for sr, (response, error) in zip(ranges, outcomes):
            if error is not None:
                if not isinstance(error, ServerFailed):
                    raise error
                client.metrics.add("client.degraded_reads")
                piece_payload = yield from self.degraded_read(client, meta, sr)
            else:
                piece_payload = response.payload
            for p in sr.pieces:
                local = p.local_offset - sr.local_start
                parts.append((p.logical_offset - offset,
                              piece_payload.slice(local, local + p.length)))
        return Payload.assemble(length, parts)

    @abstractmethod
    def degraded_read(self, client, meta,
                      sr: ServerRange) -> Generator[Event, Any, Payload]:
        """Reconstruct a failed server's share ``sr`` from survivors.

        Returns a payload covering ``[sr.local_start, sr.local_end)`` of
        the failed server's data file.
        """

    # ------------------------------------------------------------------
    # degraded-write support
    # ------------------------------------------------------------------
    def _tolerant_parallel(self, client, targets: List[int], calls: List,
                           ) -> Generator[Event, Any, List[Tuple[Any, Optional[Exception]]]]:
        """Run calls concurrently, tolerating one failed *server*.

        ``targets[i]`` is the server index call ``i`` addresses.  All
        failures must come from a single server (the schemes' fault
        model); anything else re-raises.  Degraded writes keep the
        cluster available while a server is down: the redundancy carried
        by the surviving writes keeps every byte recoverable, and a
        rebuild folds the new data back in.
        """
        outcomes = yield from client.try_parallel(calls)
        failed_servers = set()
        for target, (_value, error) in zip(targets, outcomes):
            if error is None:
                continue
            if not isinstance(error, ServerFailed):
                raise error
            failed_servers.add(target)
        if len(failed_servers) > 1:
            raise DataLoss(
                f"servers {sorted(failed_servers)} failed during one "
                "write; this scheme tolerates a single failure")
        if failed_servers:
            client.metrics.add("client.degraded_writes")
        return outcomes

    # ------------------------------------------------------------------
    # shared write helpers
    # ------------------------------------------------------------------
    def _gather(self, payload: Payload, base_offset: int,
                sr: ServerRange) -> Payload:
        """The bytes of ``payload`` destined for one server, in local order."""
        parts = []
        at = 0
        for p in sr.pieces:
            lo = p.logical_offset - base_offset
            parts.append((at, payload.slice(lo, lo + p.length)))
            at += p.length
        return Payload.assemble(sr.length, parts)

    def _data_write_requests(self, client, meta, offset: int,
                             payload: Payload, invalidate: bool = False,
                             ) -> List[Tuple[int, msg.WriteReq]]:
        """One data-file WriteReq per server for a logical range."""
        out = []
        for sr in meta.layout.map_range(offset, payload.length):
            out.append((sr.server, msg.WriteReq(
                meta.name, kind="data", offset=sr.local_start,
                payload=self._gather(payload, offset, sr),
                invalidate=invalidate, xid=client.next_xid())))
        return out


SCHEMES: Dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a scheme to the registry."""
    SCHEMES[cls.name] = cls
    return cls


def make_scheme(name: str, config) -> RedundancyScheme:
    """Instantiate a redundancy scheme by registry name."""
    try:
        cls = SCHEMES[name]
    except KeyError:
        raise ConfigError(
            f"unknown redundancy scheme {name!r}; known: {sorted(SCHEMES)}"
        ) from None
    return cls(config)


# Import the concrete schemes so the registry is populated on package use.
from repro.redundancy import raid0, raid1, raid5, hybrid  # noqa: E402,F401
