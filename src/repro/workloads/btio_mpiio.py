"""BTIO through the real MPI-IO collective path.

Where :mod:`repro.workloads.btio` models the *result* of ROMIO's
collective buffering (one large unaligned write per rank per step), this
workload generates BT's actual non-contiguous access pattern and pushes
it through the two-phase collective layer — validating the premise of
Section 6.5: "ROMIO optimizes small, non-contiguous accesses by merging
them into large requests ... the PVFS layer sees large writes, most of
which are about 4 MB in size [with unaligned starting offsets]".

BT solves on an N³ grid with 5 solution variables per cell (40 bytes).
We decompose the grid over a √P x √P processor mesh in (x, y) — a
simplification of BT's diagonal multipartition that produces the same
*file-level* structure: each rank owns, for every z-plane, a run of
cells per owned y-row, i.e. thousands of ~KB pieces strided through the
checkpoint file.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.csar.system import System
from repro.errors import ConfigError
from repro.mpiio import AccessPattern, CollectiveConfig, MPIFile
from repro.units import MiB, mbps
from repro.workloads.base import WorkloadResult

#: grid points per dimension for each BT class
BTIO_GRIDS = {"A": 64, "B": 102, "C": 162}
#: bytes per grid cell: 5 solution variables, double precision
CELL = 5 * 8


def _mesh(nprocs: int) -> int:
    side = int(math.isqrt(nprocs))
    if side * side != nprocs:
        raise ConfigError(
            f"BTIO needs a square process count, got {nprocs}")
    return side


def rank_pattern(rank: int, nprocs: int, grid: int,
                 step_offset: int = 0) -> AccessPattern:
    """The flattened file pieces rank ``rank`` writes in one checkpoint."""
    side = _mesh(nprocs)
    xi, yi = rank % side, rank // side
    x0 = xi * grid // side
    x1 = (xi + 1) * grid // side
    y0 = yi * grid // side
    y1 = (yi + 1) * grid // side
    pieces: List[Tuple[int, int]] = []
    run = (x1 - x0) * CELL
    for z in range(grid):
        for y in range(y0, y1):
            offset = step_offset + ((z * grid + y) * grid + x0) * CELL
            pieces.append((offset, run))
    return AccessPattern(tuple(pieces))


def btio_collective_benchmark(system: System, io_class: str = "A",
                              steps: int = 1,
                              cb_buffer_size: int = 4 * MiB,
                              file_name: str = "btio_mpiio",
                              ) -> WorkloadResult:
    """Checkpoint ``steps`` times through two-phase collective writes."""
    try:
        grid = BTIO_GRIDS[io_class]
    except KeyError:
        raise ConfigError(
            f"unknown BTIO class {io_class!r}; known: {sorted(BTIO_GRIDS)}"
        ) from None
    nprocs = len(system.clients)
    _mesh(nprocs)  # validate early
    step_bytes = grid ** 3 * CELL
    mpifile = MPIFile(system, file_name,
                      CollectiveConfig(cb_buffer_size=cb_buffer_size))

    def opener():
        yield from mpifile.open()

    system.run(opener())

    def one_step(step: int):
        contributions: Dict[int, tuple] = {
            rank: (rank_pattern(rank, nprocs, grid,
                                step_offset=step * step_bytes), None)
            for rank in range(nprocs)}
        yield from mpifile.collective_write(contributions)

    def driver():
        for step in range(steps):
            yield from one_step(step)

    elapsed, _ = system.timed(driver())
    total = steps * step_bytes
    result = WorkloadResult(name=f"btio-mpiio-{io_class}", elapsed=elapsed,
                            bytes_written=total)
    result.extra["pvfs_write_bandwidth"] = mbps(total, elapsed)
    return result
