"""The NAS BTIO benchmark (Sections 6.5 and 6.6).

BTIO periodically checkpoints the BT solver's solution array through
MPI-IO.  With the *full-mpiio* collective implementation the paper used,
ROMIO merges each process's many small non-contiguous pieces into one
large contiguous write per process per checkpoint step: "the PVFS layer
sees large writes, most of which are about 4 MB in size.  The starting
offsets ... are not usually aligned with the start of a stripe and each
write usually results in one or two partial stripe writes."

We therefore model a checkpoint step as a contiguous file region divided
evenly among the P processes (adjacent processes sharing boundary
stripes — the source of the RAID5 lock contention that collapses the
25-process run in Figure 6a).  Class totals follow Table 2's RAID0
column: A = 419 MB, B = 1698 MB, C = 6802 MB, written over 40 steps.

Two measured cases match the paper's: the *initial write* of a new file,
and the *overwrite* of a preexisting file whose contents have been
evicted from the server caches (Figures 6b / 7b).

Unlike ``perf`` (where the paper explicitly reports post-flush numbers),
BTIO reports its own elapsed time with the server page caches absorbing
the writes, so the flush is excluded by default; the disk enters the
timed path only through cold-cache read-modify-write (overwrite) or
dirty-throttling when a scheme's write volume overflows the caches
(Class C under RAID1, Figure 7).
"""

from __future__ import annotations

from typing import Dict

from repro.csar.system import System
from repro.errors import ConfigError
from repro.storage.payload import Payload
from repro.units import MB
from repro.workloads.base import WorkloadResult, ensure_file, run_clients

#: total bytes each class outputs: grid³ cells x 5 doubles x 40 steps.
#: These land exactly on Table 2's RAID0 column (419 / 1698 / 6802 MB),
#: confirming the geometry: A=64³, B=102³, C=162³.
BTIO_CLASSES: Dict[str, int] = {
    "A": 64 ** 3 * 40 * 40,    # 419,430,400  = "419 MB"
    "B": 102 ** 3 * 40 * 40,   # 1,697,932,800 = "1698 MB"
    "C": 162 ** 3 * 40 * 40,   # 6,802,444,800 = "6802 MB"
}

#: BT writes one checkpoint every 5 of its 200 time steps
BTIO_STEPS = 40


def btio_benchmark(system: System, io_class: str = "B",
                   scale: float = 1.0, overwrite: bool = False,
                   steps: int = BTIO_STEPS, include_flush: bool = False,
                   file_name: str = "btio") -> WorkloadResult:
    """Run one BTIO case with every configured client as one MPI rank.

    ``scale`` shrinks the data volume for affordable simulation by
    reducing the number of checkpoint steps while keeping each step's
    per-process write at its paper-scale size — so alignment behaviour
    (1-2 partial stripes per write) and per-write lock contention are
    preserved.  Pass the same factor as ``CSARConfig.scale`` so
    cache-volume effects are preserved too.  With ``overwrite`` the file
    is written once, caches are dropped, and the measured pass rewrites
    it (the paper's case 2).
    """
    try:
        class_total = BTIO_CLASSES[io_class]
    except KeyError:
        raise ConfigError(
            f"unknown BTIO class {io_class!r}; known: {sorted(BTIO_CLASSES)}"
        ) from None
    nprocs = len(system.clients)
    share = class_total // (steps * nprocs)
    steps = max(1, round(steps * scale))
    step_bytes = share * nprocs
    if share == 0:
        raise ConfigError("too many processes: zero bytes per process")

    def setup():
        yield from ensure_file(system.client(0), file_name)

    system.run(setup())

    def make_barriers():
        """BT computes between checkpoint steps, so the ranks arrive at
        each collective write together; the barrier reproduces that."""
        return [{"event": system.env.event(), "waiting": 0}
                for _ in range(steps)]

    def barrier_wait(barriers, step):
        b = barriers[step]
        b["waiting"] += 1
        if b["waiting"] == nprocs:
            b["event"].succeed()
        else:
            yield b["event"]

    def rank_proc(rank, barriers, measured=True):
        client = system.clients[rank]
        yield from client.open(file_name)
        for step in range(steps):
            offset = step * step_bytes + rank * share
            yield from client.write(file_name, offset, Payload.virtual(share))
            yield from barrier_wait(barriers, step)
        if measured and include_flush:
            yield from client.fsync(file_name)

    if overwrite:
        # Populate the file, flush everything, then forget the caches.
        bars = make_barriers()
        system.run(*[rank_proc(k, bars, measured=False)
                     for k in range(nprocs)])
        system.drop_all_caches()

    bars = make_barriers()
    result = run_clients(system,
                         [rank_proc(k, bars) for k in range(nprocs)],
                         f"btio-{io_class}{'-overwrite' if overwrite else ''}",
                         bytes_written=steps * nprocs * share)
    result.extra["lock_wait_time"] = sum(
        iod.locks.total_wait_time for iod in system.iods)
    result.extra["nprocs"] = nprocs
    return result
