"""An IOR-like parameterized synthetic benchmark.

The community's standard way to probe a parallel file system: every
process writes (then optionally reads) ``block_size`` bytes per segment,
either to its own region (segmented) or interleaved (strided), with a
configurable transfer size and alignment shift.  Covers the whole space
between the paper's microbenchmarks — Figure 4(a) is segmented aligned
large transfers, Figure 4(b) is tiny transfers, BTIO's behaviour emerges
from unaligned segmented runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.csar.system import System
from repro.errors import ConfigError
from repro.storage.payload import Payload
from repro.units import KiB, MiB
from repro.workloads.base import WorkloadResult, ensure_file, run_clients


@dataclass(frozen=True)
class SyntheticSpec:
    """IOR-style parameters."""

    #: bytes each process contributes per segment
    block_size: int = 4 * MiB
    #: bytes per write/read call (must divide block_size)
    transfer_size: int = 256 * KiB
    #: repetitions of the per-process block
    segments: int = 2
    #: "segmented" = each rank owns a contiguous region per segment;
    #: "strided" = ranks interleave transfer-sized pieces
    layout: str = "segmented"
    #: byte shift applied to every offset (0 = aligned)
    alignment_shift: int = 0
    #: also read everything back afterwards
    read_back: bool = False

    def __post_init__(self) -> None:
        if self.block_size <= 0 or self.transfer_size <= 0:
            raise ConfigError("sizes must be positive")
        if self.block_size % self.transfer_size:
            raise ConfigError("transfer_size must divide block_size")
        if self.layout not in ("segmented", "strided"):
            raise ConfigError(f"unknown layout {self.layout!r}")
        if self.segments < 1:
            raise ConfigError("need at least one segment")


def _offsets(spec: SyntheticSpec, rank: int, nprocs: int):
    """Every (offset) this rank writes, in issue order."""
    transfers = spec.block_size // spec.transfer_size
    for segment in range(spec.segments):
        segment_base = segment * nprocs * spec.block_size
        for t in range(transfers):
            if spec.layout == "segmented":
                offset = segment_base + rank * spec.block_size \
                    + t * spec.transfer_size
            else:
                offset = segment_base \
                    + (t * nprocs + rank) * spec.transfer_size
            yield offset + spec.alignment_shift


def synthetic_benchmark(system: System, spec: SyntheticSpec,
                        file_name: str = "ior") -> WorkloadResult:
    """Run the spec with every configured client as one process."""
    nprocs = len(system.clients)

    def setup():
        yield from ensure_file(system.client(0), file_name)

    system.run(setup())

    def writer(rank):
        client = system.clients[rank]
        yield from client.open(file_name)
        for offset in _offsets(spec, rank, nprocs):
            yield from client.write(file_name, offset,
                                    Payload.virtual(spec.transfer_size))

    total = nprocs * spec.segments * spec.block_size
    result = run_clients(system, [writer(r) for r in range(nprocs)],
                         "synthetic-write", bytes_written=total)
    if spec.read_back:
        def reader(rank):
            client = system.clients[rank]
            for offset in _offsets(spec, rank, nprocs):
                yield from client.read(file_name, offset,
                                       spec.transfer_size)

        read = run_clients(system, [reader(r) for r in range(nprocs)],
                           "synthetic-read", bytes_read=total)
        result.extra["read_bandwidth"] = read.read_bandwidth
        result.extra["read_elapsed"] = read.elapsed
    return result
