"""The ROMIO ``perf`` benchmark (Section 6.4).

An MPI program where every client writes one large buffer (4 MB by
default) at offset ``rank * buffer_size`` of a shared file, then reads it
back.  The paper reports bandwidth *after the file is flushed to disk*, so
the write phase here includes an fsync.
"""

from __future__ import annotations

from typing import Dict

from repro.csar.system import System
from repro.storage.payload import Payload
from repro.units import MiB
from repro.workloads.base import WorkloadResult, ensure_file, run_clients


def perf_benchmark(system: System, buffer_size: int = 4 * MiB,
                   rounds: int = 4, include_flush: bool = True,
                   file_name: str = "perf",
                   ) -> Dict[str, WorkloadResult]:
    """Run perf with every configured client; returns write/read results."""
    clients = system.clients
    nprocs = len(clients)
    stride = nprocs * buffer_size

    def setup():
        yield from ensure_file(system.client(0), file_name)

    system.run(setup())

    def writer(rank):
        client = clients[rank]
        yield from client.open(file_name)
        for r in range(rounds):
            offset = r * stride + rank * buffer_size
            yield from client.write(file_name, offset,
                                    Payload.virtual(buffer_size))
        if include_flush:
            yield from client.fsync(file_name)

    total = nprocs * rounds * buffer_size
    write = run_clients(system, [writer(k) for k in range(nprocs)],
                        "perf-write", bytes_written=total)

    def reader(rank):
        client = clients[rank]
        for r in range(rounds):
            offset = r * stride + rank * buffer_size
            yield from client.read(file_name, offset, buffer_size)

    read = run_clients(system, [reader(k) for k in range(nprocs)],
                       "perf-read", bytes_read=total)
    return {"write": write, "read": read}
