"""The FLASH I/O benchmark (Sections 6.6 and 6.7).

FLASH I/O recreates the FLASH astrophysics code's primary data structures
and writes a checkpoint file plus two plotfiles through HDF5/MPI-IO.  The
paper characterizes the stream CSAR sees: "mostly small and medium size
write requests ranging from a few kilobytes to a few hundred kilobytes";
for the 4-process run 46% of requests were under 2 KB, for 24 processes
37%, "the rest ... in the 100KB-300KB range" (Section 6.7).  Totals from
Table 2's RAID0 column: 45 MB at 4 processes, 235 MB at 24.

We reproduce that mixture with a deterministic generator: each process
appends 100-300 KB data-block writes to its slab of the checkpoint file,
interleaved with sub-2 KB writes that *rewrite* a small header region at
the front of the slab — the way HDF5 updates object headers, B-tree nodes
and the heap after each dataset.  The small-request fraction matches the
published numbers exactly.  The header rewrites matter for Table 2: under
Hybrid they repeatedly supersede overflow slots, which is why the paper
measures Hybrid *above* RAID1 at a 64 KB stripe unit and below it at
16 KB.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.csar.system import System
from repro.storage.payload import Payload
from repro.units import KiB, MB
from repro.workloads.base import WorkloadResult, ensure_file, run_clients

#: Table 2 totals for the two published configurations.
FLASH_TOTALS = {4: 45 * MB, 24: 235 * MB}
#: fraction of requests under 2 KiB, per Section 6.7
FLASH_SMALL_FRACTION = {4: 0.46, 24: 0.37}


def flash_request_sizes(nprocs: int, total_bytes: int,
                        seed: int = 2003) -> List[int]:
    """The deterministic per-process request-size schedule.

    Builds a list whose small-request fraction matches the paper and
    whose sizes sum to ``total_bytes / nprocs``.
    """
    rng = np.random.default_rng(seed)
    small_fraction = FLASH_SMALL_FRACTION.get(nprocs, 0.40)
    per_proc = total_bytes // nprocs
    sizes: List[int] = []
    written = 0
    small_count = 0
    while written < per_proc:
        # Pin the small-request fraction by construction (the sizes stay
        # random): emit a small request whenever doing so keeps the
        # running fraction at the published target.
        if small_count < small_fraction * (len(sizes) + 1):
            size = int(rng.integers(256, 2 * KiB))
            small_count += 1
        else:
            size = int(rng.integers(100 * KiB, 300 * KiB))
        size = min(size, per_proc - written)
        sizes.append(size)
        written += size
    return sizes


#: per-rank header (HDF5 metadata) region rewritten by small requests
HEADER_REGION = 8 * KiB


def flash_io_benchmark(system: System, nprocs: int | None = None,
                       scale: float = 1.0, include_flush: bool = True,
                       file_name: str = "flash",
                       ) -> WorkloadResult:
    """Run FLASH I/O with the system's clients as MPI ranks."""
    nprocs = nprocs or len(system.clients)
    total = int(FLASH_TOTALS.get(nprocs, 45 * MB) * scale)
    per_proc = total // nprocs
    schedules: List[List[int]] = [
        flash_request_sizes(nprocs, total, seed=2003 + rank)
        for rank in range(nprocs)]

    def setup():
        yield from ensure_file(system.client(0), file_name)

    system.run(setup())

    def rank_proc(rank):
        client = system.clients[rank % len(system.clients)]
        yield from client.open(file_name)
        slab = rank * per_proc
        offset = slab + HEADER_REGION   # data appends after the header
        header_cursor = 0
        for size in schedules[rank]:
            if size < 2 * KiB:
                # Metadata update: rewrite part of the slab header.
                at = slab + header_cursor % max(HEADER_REGION - size, 1)
                header_cursor += 512
                yield from client.write(file_name, at, Payload.virtual(size))
            else:
                yield from client.write(file_name, offset,
                                        Payload.virtual(size))
                offset += size
        if include_flush:
            yield from client.fsync(file_name)

    written = sum(sum(s) for s in schedules)
    result = run_clients(system, [rank_proc(k) for k in range(nprocs)],
                         f"flash-io-{nprocs}p", bytes_written=written)
    small = sum(1 for s in schedules for x in s if x < 2 * KiB)
    result.extra["small_fraction"] = small / sum(len(s) for s in schedules)
    return result


def request_mix(nprocs: int) -> Tuple[float, float]:
    """(small fraction target, achieved) — used by tests and docs."""
    sizes = flash_request_sizes(nprocs, FLASH_TOTALS.get(nprocs, 45 * MB))
    achieved = sum(1 for s in sizes if s < 2 * KiB) / len(sizes)
    return FLASH_SMALL_FRACTION.get(nprocs, 0.40), achieved
