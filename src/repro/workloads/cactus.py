"""Cactus BenchIO (Section 6.6).

"We ran the application on eight nodes and we configured it so that each
node was writing approximately 400MB of data to a checkpoint file in
chunks of 4MB" — large sequential per-rank regions, HDF5 over MPI-IO.
"""

from __future__ import annotations

from repro.csar.system import System
from repro.storage.payload import Payload
from repro.units import MB, MiB
from repro.workloads.base import WorkloadResult, ensure_file, run_clients

PER_NODE_BYTES = 400 * MB
CHUNK = 4 * MiB


def cactus_benchio(system: System, scale: float = 1.0,
                   include_flush: bool = True,
                   file_name: str = "cactus") -> WorkloadResult:
    """Checkpoint with every configured client as one Cactus node."""
    nprocs = len(system.clients)
    per_node = int(PER_NODE_BYTES * scale)
    chunks = max(1, per_node // CHUNK)

    def setup():
        yield from ensure_file(system.client(0), file_name)

    system.run(setup())

    def rank_proc(rank):
        client = system.clients[rank]
        yield from client.open(file_name)
        base = rank * chunks * CHUNK
        for i in range(chunks):
            yield from client.write(file_name, base + i * CHUNK,
                                    Payload.virtual(CHUNK))
        if include_flush:
            yield from client.fsync(file_name)

    total = nprocs * chunks * CHUNK
    return run_clients(system, [rank_proc(k) for k in range(nprocs)],
                       "cactus-benchio", bytes_written=total)
