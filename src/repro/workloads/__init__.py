"""Workload generators reproducing the paper's benchmarks and applications.

Each workload emits, at the PVFS layer, the access stream the paper
describes for it (sizes, alignment, concurrency, totals) and reports the
bandwidth/time figures the paper's evaluation plots.
"""

from repro.workloads.base import WorkloadResult, run_clients
from repro.workloads.micro import (
    full_stripe_write_bench,
    shared_stripe_bench,
    small_write_bench,
)
from repro.workloads.romio_perf import perf_benchmark
from repro.workloads.btio import BTIO_CLASSES, btio_benchmark
from repro.workloads.flashio import flash_io_benchmark
from repro.workloads.cactus import cactus_benchio
from repro.workloads.hartree_fock import hartree_fock_argos

__all__ = [
    "WorkloadResult",
    "run_clients",
    "full_stripe_write_bench",
    "small_write_bench",
    "shared_stripe_bench",
    "perf_benchmark",
    "BTIO_CLASSES",
    "btio_benchmark",
    "flash_io_benchmark",
    "cactus_benchio",
    "hartree_fock_argos",
]
