"""The paper's microbenchmarks (Sections 5.1, 6.2, 6.3).

* :func:`full_stripe_write_bench` — Figure 4(a): a single client writes
  chunks that are an integral number of stripes, the best case for RAID5.
* :func:`small_write_bench` — Figure 4(b): a single client creates a
  large file, then rewrites it in one-block chunks (RAID5's worst case;
  the old data and parity are warm in the server caches).
* :func:`shared_stripe_bench` — Figure 3: five clients write different
  blocks of the same stripe, measuring the parity-lock overhead.
"""

from __future__ import annotations

from repro.csar.system import System
from repro.storage.payload import Payload
from repro.workloads.base import WorkloadResult, ensure_file, run_clients


def full_stripe_write_bench(system: System, total_bytes: int,
                            chunk_stripes: int = 12,
                            file_name: str = "fullstripe",
                            ) -> WorkloadResult:
    """Sequential stripe-aligned writes from one client (Fig 4a)."""
    lay = system.layout
    span = lay.group_span if lay.n >= 2 else lay.unit
    chunk = chunk_stripes * span
    count = max(1, total_bytes // chunk)
    client = system.client(0)

    def setup():
        yield from ensure_file(client, file_name)

    system.run(setup())

    def work():
        for i in range(count):
            yield from client.write(file_name, i * chunk,
                                    Payload.virtual(chunk))

    result = run_clients(system, [work()], "full-stripe-write",
                         bytes_written=count * chunk)
    return result


def small_write_bench(system: System, count: int = 200,
                      file_name: str = "smallwrite") -> WorkloadResult:
    """One-block rewrites of an existing, cached file (Fig 4b)."""
    unit = system.layout.unit
    client = system.client(0)

    def setup():
        yield from ensure_file(client, file_name)
        yield from client.write(file_name, 0, Payload.virtual(count * unit))

    system.run(setup())

    def work():
        for i in range(count):
            yield from client.write(file_name, i * unit,
                                    Payload.virtual(unit))

    return run_clients(system, [work()], "small-write",
                       bytes_written=count * unit)


def shared_stripe_bench(system: System, rounds: int = 50,
                        file_name: str = "shared") -> WorkloadResult:
    """Concurrent clients writing distinct blocks of one stripe (Fig 3).

    Uses as many clients as the system has (the paper used 5 with a
    6-server stripe: 5 data blocks + parity).
    """
    unit = system.layout.unit
    clients = system.clients

    def setup():
        yield from ensure_file(system.client(0), file_name)

    system.run(setup())

    def writer(k):
        client = clients[k]
        yield from client.open(file_name)
        for _ in range(rounds):
            yield from client.write(file_name, k * unit,
                                    Payload.virtual(unit))

    total = len(clients) * rounds * unit
    result = run_clients(system, [writer(k) for k in range(len(clients))],
                         "shared-stripe", bytes_written=total)
    locks = sum(iod.locks.total_wait_time for iod in system.iods)
    result.extra["lock_wait_time"] = locks
    return result
