"""Common workload plumbing: timing client processes and reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.csar.system import System
from repro.errors import FileExists
from repro.units import mbps


@dataclass
class WorkloadResult:
    """What one workload phase measured."""

    name: str
    elapsed: float
    bytes_written: int = 0
    bytes_read: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def write_bandwidth(self) -> float:
        """MB/s of application data written (not counting redundancy)."""
        return mbps(self.bytes_written, self.elapsed)

    @property
    def read_bandwidth(self) -> float:
        return mbps(self.bytes_read, self.elapsed)


def run_clients(system: System, generators: List, name: str,
                bytes_written: int = 0, bytes_read: int = 0,
                ) -> WorkloadResult:
    """Run client processes concurrently and time them."""
    elapsed, _ = system.timed(*generators)
    return WorkloadResult(name=name, elapsed=elapsed,
                          bytes_written=bytes_written, bytes_read=bytes_read)


def ensure_file(client, name: str):
    """Process body: create the file, or open it if it already exists."""
    try:
        yield from client.create(name)
    except FileExists:
        yield from client.open(name)


def fsync_all(system: System, name: str) -> None:
    """Flush one file everywhere (the paper reports post-flush numbers)."""
    client = system.client(0)

    def work():
        yield from client.fsync(name)

    system.run(work())
