"""Hartree-Fock ``argos`` (Section 6.6).

The most I/O-intensive executable of the Hartree-Fock chemistry suite:
a *sequential* application writing ~150 MB of integral data with most
requests of size 16 KB, accessing CSAR through the mounted kernel module
(whose per-request crossing cost levels the four schemes to within ~5% in
Figure 8).
"""

from __future__ import annotations

from repro.csar.system import System
from repro.storage.payload import Payload
from repro.units import KiB, MB
from repro.workloads.base import WorkloadResult, ensure_file, run_clients

TOTAL_BYTES = 150 * MB
REQUEST = 16 * KiB


def hartree_fock_argos(system: System, scale: float = 1.0,
                       include_flush: bool = True,
                       file_name: str = "hf_argos") -> WorkloadResult:
    """Run argos's write phase on client 0 via the kernel module."""
    total = int(TOTAL_BYTES * scale)
    count = max(1, total // REQUEST)
    client = system.client(0)
    client.via_kernel_module = True

    def setup():
        yield from ensure_file(client, file_name)

    system.run(setup())

    def work():
        for i in range(count):
            yield from client.write(file_name, i * REQUEST,
                                    Payload.virtual(REQUEST))
        if include_flush:
            yield from client.fsync(file_name)

    try:
        return run_clients(system, [work()], "hartree-fock",
                           bytes_written=count * REQUEST)
    finally:
        client.via_kernel_module = False
