"""FLASH I/O through the HDF5-lite library (first-principles variant).

:mod:`repro.workloads.flashio` scripts the request mix the paper
*reports*; this variant produces it the way the real benchmark does —
by writing FLASH's data structures through an HDF5-style library and
letting the container format generate the metadata traffic:

* a checkpoint file with all 24 solution variables ("unknowns"), each a
  dataset of (blocks x 8x8x8 cells) doubles with unit/time attributes;
* two plotfiles with 4 plot variables each, single precision.

The emergent access pattern — large chunk writes interleaved with sub-
2 KB header/heap rewrites near offset 0 — is what Sections 6.6/6.7
describe, and what drives Hybrid's overflow-slot churn in Table 2.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.csar.system import System
from repro.hdf5lite import H5File
from repro.storage.payload import Payload
from repro.units import mbps
from repro.workloads.base import WorkloadResult

#: FLASH's solution variables (the real benchmark's "unk" array slabs)
N_UNKNOWNS = 24
#: plot variables per plotfile
N_PLOTVARS = 4
#: cells per AMR block (8x8x8, like the benchmark's default nxb=nyb=nzb=8)
CELLS_PER_BLOCK = 8 * 8 * 8


def _write_file(system: System, name: str, n_vars: int, blocks_per_rank: int,
                dtype_size: int) -> Generator[Any, Any, int]:
    """One HDF5 output file written cooperatively by all ranks.

    Rank 0 owns the metadata (as HDF5's collective metadata writes do);
    every rank contributes its blocks of each variable's dataset.
    """
    nprocs = len(system.clients)
    writer = H5File(system.clients[0], name)
    yield from writer.create(max_datasets=max(64, n_vars))
    total_blocks = nprocs * blocks_per_rank
    written = 0
    for v in range(n_vars):
        var = f"unk{v:02d}"
        yield from writer.create_dataset(
            var, shape=(total_blocks, CELLS_PER_BLOCK),
            dtype_size=dtype_size)
        yield from writer.set_attribute(var, "units", b"code units")
        yield from writer.set_attribute(var, "time", b"0.000")
        chunk = blocks_per_rank * CELLS_PER_BLOCK
        procs = []
        for rank in range(nprocs):
            def rank_write(rank=rank, var=var, chunk=chunk):
                # Ranks write their slab through their own client; the
                # shared H5File handle serializes only metadata updates.
                yield from system.clients[rank].write(
                    name,
                    writer.datasets[writer._by_name[var]].data_addr
                    + rank * chunk * dtype_size,
                    Payload.virtual(chunk * dtype_size))

            procs.append(system.env.process(rank_write()))
        yield system.env.all_of(procs)
        # Record the extent (one header rewrite, as HDF5 does at the end
        # of a collective dataset write).
        writer.datasets[writer._by_name[var]].data_bytes = \
            total_blocks * CELLS_PER_BLOCK * dtype_size
        yield from writer._write_header(writer._by_name[var])
        written += total_blocks * CELLS_PER_BLOCK * dtype_size
    return written


def flash_io_hdf5_benchmark(system: System, blocks_per_rank: int = 20,
                            ) -> WorkloadResult:
    """Checkpoint + two plotfiles, like the FLASH I/O benchmark."""

    def driver():
        total = 0
        total += yield from _write_file(system, "flash_hdf5_chk",
                                        N_UNKNOWNS, blocks_per_rank, 8)
        for plot in ("cnt", "crn"):
            total += yield from _write_file(
                system, f"flash_hdf5_plt_{plot}", N_PLOTVARS,
                blocks_per_rank, 4)
        return total

    elapsed, total = system.timed(driver())
    result = WorkloadResult(name="flash-io-hdf5", elapsed=elapsed,
                            bytes_written=total)
    result.extra["write_bandwidth"] = mbps(total, elapsed)
    return result


def flash_hdf5_storage(system: System) -> int:
    """Total storage across the three output files (Table 2 style)."""
    names: List[str] = ["flash_hdf5_chk", "flash_hdf5_plt_cnt",
                        "flash_hdf5_plt_crn"]
    return sum(system.storage_report(n)["total"] for n in names)
