"""Exception hierarchy for the CSAR reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """A discrete-event simulation invariant was violated."""


class ProcessInterrupt(ReproError):
    """Raised inside a simulation process that was interrupted.

    Carries the ``cause`` given to :meth:`repro.sim.engine.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ConfigError(ReproError):
    """Invalid configuration (stripe geometry, hardware profile, workload)."""


class ProtocolError(ReproError):
    """A malformed or out-of-sequence message in the PVFS/CSAR protocol."""


class FileSystemError(ReproError):
    """Base class for file-system level failures."""


class FileNotFound(FileSystemError):
    """The named PVFS file does not exist."""


class FileExists(FileSystemError):
    """The named PVFS file already exists and exclusive creation was asked."""


class ServerFailed(FileSystemError):
    """An I/O server has been marked failed and cannot serve requests."""


class DataLoss(FileSystemError):
    """Data could not be recovered (e.g. two failures under single-fault
    tolerant redundancy, or any failure under RAID0)."""


class RpcTimeout(ServerFailed):
    """A client RPC exceeded its per-request deadline.

    Subclasses :class:`ServerFailed` so a timed-out server rides the same
    degraded-mode machinery (suspect lists, degraded reads, tolerant
    writes) as an explicitly failed one.
    """


class DiskFault(FileSystemError):
    """An injected disk error (the simulated medium returned EIO)."""


class FaultPlanError(ConfigError):
    """A fault plan is malformed or references unknown triggers/targets."""


class InconsistentRedundancy(FileSystemError):
    """A scrub detected redundancy (mirror/parity) inconsistent with data."""


class LockProtocolError(ProtocolError):
    """The distributed parity-lock protocol was used out of order."""


class LockSanError(ProtocolError):
    """The LockSan runtime sanitizer observed a protocol violation
    (see :mod:`repro.analysis.locksan`)."""


class DeadlockError(LockSanError):
    """LockSan found a wait-for cycle among parity-lock waiters: the
    simulation would hang.  Raised *before* the hang, naming the
    processes involved."""


class ParitySanError(ReproError):
    """The ParitySan runtime sanitizer observed a redundancy-invariant
    violation (see :mod:`repro.analysis.paritysan`)."""


class BufSanError(ReproError):
    """The BufSan runtime sanitizer observed a captured buffer changing
    after it was shared (see :mod:`repro.analysis.bufsan`)."""
