"""The chaos campaign runner.

One chaos run is fully determined by a :class:`~repro.faults.plan.FaultPlan`
(itself determined by a seed): build a content-mode :class:`System` with
the plan armed and every sanitizer installed, drive a seeded workload of
writes and reads against a flat in-memory reference file, inject the
plan's faults, recover every crashed/restarted/suspected server, and
check two oracles:

* **differential** — every byte of every *acknowledged* write must read
  back exactly as written (unacknowledged writes become wildcard
  extents: the simulated servers may hold the old bytes, the new bytes,
  or a torn mixture, all of which are legal for a write that never
  completed);
* **durability** — after the post-fault recovery, the full file must be
  readable with every acknowledged byte intact, for every redundant
  scheme, under any single-server fault the plan injected (RAID0 keeps
  no redundancy, so bytes on a permanently crashed server are accepted
  losses there).

A run also fails on any raised :class:`~repro.errors.ReproError` /
``AssertionError`` or any LockSan/BufSan/ParitySan report, with the same
attribution priority as the schedule explorer.  Same seed, same plan,
same bit-identical outcome: the run's :attr:`~ChaosResult.digest` hashes
the plan, the fired-fault log, the per-op outcomes and the final file
contents, and ``--replay`` asserts the digest and failure reproduce.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.errors import DataLoss, ReproError, ServerFailed
from repro.faults import injector as _injector
from repro.faults.plan import FaultPlan, sample_plan
from repro.storage.payload import Payload

#: The schemes a chaos campaign sweeps.
CHAOS_SCHEMES = ("raid0", "raid1", "raid5", "hybrid")

#: Workload geometry: small stripes keep runs fast while still crossing
#: every protocol path (full stripes, head/tail partials, overflow).
_UNIT = 1024
_SERVERS = 5
_FILES = ("chaos0", "chaos1")


@dataclass
class ChaosResult:
    """Outcome of one chaos run (one plan, one system)."""

    plan: FaultPlan
    ok: bool
    #: ``kind`` is ``exception:<Class>``, ``locksan:<kind>``,
    #: ``bufsan:<kind>``, ``paritysan:<kind>``, or ``differential``
    failure_kind: Optional[str] = None
    failure: Optional[str] = None
    #: sha256 over plan + fired faults + op outcomes + final contents;
    #: the run's bit-identical-replay witness
    digest: str = ""
    fired: List[Tuple[float, str, int]] = field(default_factory=list)
    ops_acked: int = 0
    ops_failed: int = 0

    def format(self) -> str:
        status = "ok" if self.ok else f"FAIL [{self.failure_kind}]"
        return (f"seed {self.plan.seed} {self.plan.scheme}: {status} "
                f"({len(self.plan.faults)} fault(s), "
                f"{self.ops_acked} acked / {self.ops_failed} failed ops, "
                f"digest {self.digest[:12]})")


def _chaos_config(plan: FaultPlan):
    from repro.csar.config import CSARConfig

    return CSARConfig(
        scheme=plan.scheme, num_servers=plan.num_servers, num_clients=1,
        stripe_unit=_UNIT, content_mode=True,
        # Hardened RPCs: drops and silent hangs must surface as
        # RpcTimeout and ride the degraded machinery, not wedge the run.
        rpc_timeout=0.25, rpc_retries=2, rpc_jitter_seed=plan.seed)


def _op_stream(rng: Random, num_ops: int, span: int,
               size: int) -> List[tuple]:
    """The seeded op mix: writes (partial-heavy) and verifying reads."""
    ops: List[tuple] = []
    for _ in range(num_ops):
        name = _FILES[rng.randrange(len(_FILES))]
        if rng.random() < 0.7:
            if rng.random() < 0.3:
                # A full-stripe write: RAID5's lock-free path, Hybrid's
                # overflow invalidation path.
                offset, length = rng.randrange(3) * span, span
            else:
                offset = rng.randrange(size - 2 * _UNIT)
                length = rng.randint(1, 2 * _UNIT)
            ops.append(("write", name, offset, length, rng.randrange(1 << 30)))
        else:
            offset = rng.randrange(size - 2 * _UNIT)
            length = rng.randint(1, 2 * _UNIT)
            ops.append(("read", name, offset, length))
    return ops


def _payload_array(payload: Payload) -> np.ndarray:
    return np.frombuffer(payload.to_bytes(), dtype=np.uint8)


def _drive(plan: FaultPlan, system) -> Dict[str, Any]:
    """Run the workload + recovery + verification inside one system.

    Everything happens in a single ``system.run`` so the sanitizers'
    quiescent checks fire only after recovery has restored the
    redundancy invariants the faults broke.
    """
    from repro.redundancy.recovery import rebuild_server

    client = system.client()
    injector = system.env.faults
    span = system.layout.group_span
    size = 3 * span + 2 * _UNIT
    rng = Random(plan.seed * 48271 + 11)
    ops = _op_stream(rng, plan.num_ops, span, size)

    ref = {name: np.zeros(size, dtype=np.uint8) for name in _FILES}
    mask = {name: np.zeros(size, dtype=bool) for name in _FILES}
    diffs: List[str] = []
    outcomes: List[list] = []

    def apply_write(name: str, offset: int, payload: Payload,
                    acked: bool) -> None:
        end = offset + payload.length
        if acked:
            ref[name][offset:end] = _payload_array(payload)
            mask[name][offset:end] = True
        else:
            # The write never completed: the servers may hold any
            # mixture of old and new bytes there.  Wildcard the extent.
            mask[name][offset:end] = False

    def check(name: str, offset: int, got: np.ndarray, what: str) -> None:
        end = offset + got.size
        m = mask[name][offset:end]
        if not np.array_equal(got[m], ref[name][offset:end][m]):
            bad = int(np.count_nonzero(
                got[m] != ref[name][offset:end][m]))
            diffs.append(f"{what}: {name}[{offset}:{end}] diverged from "
                         f"the flat reference ({bad} acked byte(s))")

    def driver() -> Generator:
        # Prefill both files so every later read is well-defined.
        for name in _FILES:
            yield from client.create(name)
            payload = Payload.zeros(size)
            try:
                yield from client.write(name, 0, payload)
            except (ServerFailed, DataLoss):
                apply_write(name, 0, payload, acked=False)
                outcomes.append(["prefill", name, False])
            else:
                apply_write(name, 0, payload, acked=True)
                outcomes.append(["prefill", name, True])

        rebuilds: Dict[int, Any] = {}
        for i, op in enumerate(ops):
            if injector is not None:
                injector.note_op(i)
            kind, name, offset, length = op[:4]
            if kind == "write":
                payload = Payload.pattern(length, seed=op[4])
                try:
                    yield from client.write(name, offset, payload)
                except (ServerFailed, DataLoss):
                    apply_write(name, offset, payload, acked=False)
                    outcomes.append([i, "write", offset, length, False])
                else:
                    apply_write(name, offset, payload, acked=True)
                    outcomes.append([i, "write", offset, length, True])
            else:
                try:
                    data = yield from client.read(name, offset, length)
                except (ServerFailed, DataLoss):
                    outcomes.append([i, "read", offset, length, False])
                else:
                    outcomes.append([i, "read", offset, length, True])
                    check(name, offset, _payload_array(data), f"op {i}")
            # Online recovery: rebuild a crashed server while the
            # remaining ops keep writing (the concurrent-traffic path).
            if plan.scheme != "raid0" and i < len(ops) - 2:
                for s in range(plan.num_servers):
                    iod = system.iods[s]
                    if iod.failed and not iod.rebuilding \
                            and s not in rebuilds:
                        rebuilds[s] = system.env.process(
                            rebuild_server(system, s),
                            name="chaos.rebuild")
        for proc in rebuilds.values():
            yield proc

        # Post-fault recovery: every server that is still down, came
        # back stale from a restart, or is merely *suspected* (a timed-
        # out RPC may have been dropped before or after taking effect)
        # is rebuilt to a known-consistent state.
        if plan.scheme != "raid0":
            needs = {s for s in range(plan.num_servers)
                     if system.iods[s].failed}
            if injector is not None:
                needs |= injector.restarted
            for c in system.clients:
                needs |= set(c.suspected)
            for s in sorted(needs):
                if not system.iods[s].failed:
                    system.iods[s].fail()
                yield from rebuild_server(system, s)

        # Final verification sweep: the durability oracle.
        for name in _FILES:
            for start in range(0, size, _UNIT):
                length = min(_UNIT, size - start)
                try:
                    data = yield from client.read(name, start, length)
                except (ServerFailed, DataLoss) as exc:
                    if plan.scheme != "raid0":
                        diffs.append(
                            f"durability: {name}[{start}:{start + length}]"
                            f" unreadable after recovery: {exc}")
                    else:
                        # RAID0 keeps no redundancy: bytes on the lost
                        # server are accepted losses, not violations.
                        mask[name][start:start + length] = False
                    continue
                check(name, start, _payload_array(data), "durability")

    system.run(driver())
    contents = {name: hashlib.sha256(
        ref[name].tobytes() + mask[name].tobytes()).hexdigest()
        for name in _FILES}
    return {
        "diffs": diffs,
        "outcomes": outcomes,
        "contents": contents,
        "fired": list(injector.fired) if injector is not None else [],
    }


def run_plan(plan: FaultPlan, inject=None) -> ChaosResult:
    """Execute one fault plan under full sanitizer coverage.

    ``inject`` (tests only) receives the built :class:`System` before
    the workload starts — the hook the verify-the-verifier tests use to
    swap in :mod:`repro.analysis.seeded_bugs` schemes.
    """
    from repro.analysis import bufsan, locksan, paritysan
    from repro.csar.system import System

    locksan.install()
    bufsan.install()
    paritysan.install()
    _injector.install(plan)
    try:
        locksan.drain_reports()
        bufsan.drain_reports()
        paritysan.drain_reports()
        failure_kind: Optional[str] = None
        failure: Optional[str] = None
        data: Dict[str, Any] = {"diffs": [], "outcomes": [],
                                "contents": {}, "fired": []}
        try:
            system = System(_chaos_config(plan))
            if inject is not None:
                inject(system)
            data = _drive(plan, system)
        except (ReproError, AssertionError) as exc:
            failure_kind = f"exception:{type(exc).__name__}"
            failure = str(exc)
        lock_reports = locksan.drain_reports()
        buf_reports = bufsan.drain_reports()
        parity_reports = paritysan.drain_reports()
    finally:
        _injector.uninstall()
        locksan.uninstall()
        bufsan.uninstall()
        paritysan.uninstall()

    # Attribution priority mirrors the explorer: an exception beats a
    # LockSan report beats BufSan beats ParitySan beats a differential
    # mismatch (the sanitizers point closer to the root cause).
    if failure_kind is None and lock_reports:
        failure_kind = f"locksan:{lock_reports[0].kind}"
        failure = lock_reports[0].format()
    if failure_kind is None and buf_reports:
        failure_kind = f"bufsan:{buf_reports[0].kind}"
        failure = buf_reports[0].format()
    if failure_kind is None and parity_reports:
        failure_kind = f"paritysan:{parity_reports[0].kind}"
        failure = parity_reports[0].format()
    if failure_kind is None and data["diffs"]:
        failure_kind = "differential"
        failure = "; ".join(data["diffs"][:4])

    digest = hashlib.sha256(json.dumps({
        "plan": plan.to_json(),
        "fired": [[repr(t), k, s] for t, k, s in data["fired"]],
        "outcomes": data["outcomes"],
        "contents": data["contents"],
        "failure_kind": failure_kind,
    }, sort_keys=True).encode()).hexdigest()

    acked = sum(1 for o in data["outcomes"] if o[-1])
    return ChaosResult(
        plan=plan, ok=failure_kind is None, failure_kind=failure_kind,
        failure=failure, digest=digest, fired=data["fired"],
        ops_acked=acked, ops_failed=len(data["outcomes"]) - acked)


def run_chaos(seed: int, scheme: str, num_servers: int = _SERVERS,
              num_ops: int = 10) -> ChaosResult:
    """Sample the seed's fault plan for ``scheme`` and execute it."""
    plan = sample_plan(seed, scheme, num_servers, num_ops)
    return run_plan(plan)


# ---------------------------------------------------------------------------
# failing-plan serialization + replay
# ---------------------------------------------------------------------------
def save_failing_plan(result: ChaosResult, path: str) -> None:
    """Serialize a failing run: the plan plus the expected outcome."""
    data = result.plan.to_json()
    data["failure"] = {"kind": result.failure_kind,
                       "description": result.failure}
    data["digest"] = result.digest
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def replay(path: str) -> Tuple[bool, ChaosResult]:
    """Re-run a saved plan; ``reproduced`` is True when the outcome
    (digest, or at least the failure kind) matches the recording."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    plan = FaultPlan.from_json(data)
    result = run_plan(plan)
    expected = data.get("failure") or {}
    expected_digest = data.get("digest")
    if expected_digest is not None:
        reproduced = result.digest == expected_digest
    elif expected.get("kind"):
        reproduced = result.failure_kind == expected["kind"]
    else:
        reproduced = result.ok
    return reproduced, result


def run_campaign(seeds, schemes=CHAOS_SCHEMES, num_servers: int = _SERVERS,
                 num_ops: int = 10, plan_dir: Optional[str] = None,
                 ) -> List[ChaosResult]:
    """The seed × scheme sweep CI runs; failing plans land in plan_dir."""
    import os

    results: List[ChaosResult] = []
    for seed in seeds:
        for scheme in schemes:
            result = run_chaos(seed, scheme, num_servers=num_servers,
                               num_ops=num_ops)
            results.append(result)
            if not result.ok and plan_dir is not None:
                os.makedirs(plan_dir, exist_ok=True)
                save_failing_plan(result, os.path.join(
                    plan_dir, f"seed{seed}-{scheme}.json"))
    return results
