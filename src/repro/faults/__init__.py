"""Deterministic fault injection for the CSAR reproduction.

The package has three layers:

* :mod:`repro.faults.plan` — declarative, JSON-serializable **fault
  plans**: what to break (server crash, transient crash-with-restart,
  message drop/delay/duplication, slow/erroring disk, torn block
  write) and when (a sim time, an op ordinal, or a named protocol
  step).  Plans are sampled seed-deterministically and round-trip
  through the same ``schema_version``-guarded JSON convention as the
  explorer's ``.sched`` files.
* :mod:`repro.faults.injector` — the runtime that arms a plan inside a
  simulation.  It is installed through the engine's factory-hook idiom
  (:func:`repro.sim.engine.set_fault_factory`) so the engine never
  imports this package; hook points in ``hw.link``, ``hw.disk``,
  ``storage.blockfile``, ``pvfs.iod`` and the redundancy schemes
  consult ``env.faults`` when present and cost nothing when not.
* :mod:`repro.faults.runner` — the chaos campaign behind
  ``csar-repro chaos``: samples plans, runs content-mode workloads
  under all three sanitizers, and checks the differential oracle plus
  the durability invariant.
"""

from repro.faults.plan import (
    PLAN_SCHEMA_VERSION,
    STEP_NAMES,
    FaultPlan,
    FaultSpec,
    Trigger,
    load_plan,
    sample_plan,
)
from repro.faults.injector import FaultInjector, fault_step, install, uninstall

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "STEP_NAMES",
    "FaultPlan",
    "FaultSpec",
    "Trigger",
    "FaultInjector",
    "fault_step",
    "install",
    "uninstall",
    "load_plan",
    "sample_plan",
]
