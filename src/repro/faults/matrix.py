"""The crash-consistency matrix.

For a fixed two-write scenario — a full prefill followed by a victim
partial write — crash **every server** at **every named protocol step**
the scenario reaches (one run per cell), recover the cluster, and
assert the durability invariant: every byte of every *acknowledged*
write reads back intact.  A write that raised is a wildcard (old, new,
or torn bytes are all legal), but an acked write lost after recovery is
a protocol bug.

The matrix is the existential proof behind the chaos campaign: crashes
*between* operations (what the pre-existing failure tests do) never
reach the windows inside the RAID5 read-modify-write or the Hybrid
overflow append, and :class:`~repro.analysis.seeded_bugs.\
CompensatingWritebackRaid5` is a bug class that is only visible inside
such a window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Tuple

import numpy as np

from repro.errors import DataLoss, ServerFailed
from repro.faults import injector as _injector
from repro.faults.plan import FaultPlan, FaultSpec, Trigger
from repro.storage.payload import Payload

_UNIT = 512
_SERVERS = 5
_NAME = "mtx"

#: ``(step, nth)`` cells per scheme.  nth counts global occurrences of
#: the step: the raid5 RMW steps fire once (only the victim write takes
#: that path), ``full_stripe.before_write`` fires for the prefill, and
#: the iod-side append steps fire once on the home server and once on
#: the mirror.
MATRIX_STEPS = {
    "raid5": (
        ("raid5.full_stripe.before_write", 1),
        ("raid5.rmw.before_parity_read", 1),
        ("raid5.rmw.after_parity_read", 1),
        ("raid5.rmw.before_writeback", 1),
        ("raid5.rmw.after_writeback", 1),
    ),
    "hybrid": (
        ("hybrid.overflow.before_write", 1),
        ("hybrid.overflow.after_write", 1),
        ("iod.overflow.before_append", 1),
        ("iod.overflow.before_append", 2),
        ("iod.overflow.after_append", 1),
        ("iod.overflow.after_append", 2),
    ),
}


@dataclass
class MatrixCell:
    """One (step, nth, victim-server) crash experiment."""

    scheme: str
    step: str
    nth: int
    victim: int
    ok: bool
    detail: str = ""

    def format(self) -> str:
        status = "ok" if self.ok else f"FAIL ({self.detail})"
        return f"{self.scheme} {self.step}#{self.nth} victim={self.victim}: {status}"


def _matrix_config(scheme: str):
    from repro.csar.config import CSARConfig

    return CSARConfig(scheme=scheme, num_servers=_SERVERS, num_clients=1,
                      stripe_unit=_UNIT, content_mode=True,
                      rpc_timeout=0.25, rpc_retries=1, rpc_jitter_seed=7)


def run_cell(scheme: str, step: str, nth: int, victim: int,
             make_scheme: Optional[Callable[[Any], Any]] = None,
             ) -> MatrixCell:
    """Run one crash-matrix cell in a fresh system.

    ``make_scheme`` (tests only) maps the built config to a replacement
    scheme object — the hook for seeded-bug verification.
    """
    plan = FaultPlan(
        seed=0, scheme=scheme, num_servers=_SERVERS, num_ops=0,
        faults=[FaultSpec("crash", victim, Trigger("step", step, nth=nth))],
        note=f"crash matrix: {step}#{nth}, victim iod{victim}")
    plan.validate()
    _injector.install(plan)
    try:
        from repro.csar.system import System

        system = System(_matrix_config(scheme))
        if make_scheme is not None:
            from repro.analysis.seeded_bugs import inject

            inject(system, make_scheme(system.config))
        diffs: List[str] = []
        system.run(_scenario(system, diffs))
    finally:
        _injector.uninstall()
    return MatrixCell(scheme=scheme, step=step, nth=nth, victim=victim,
                      ok=not diffs, detail="; ".join(diffs[:3]))


def _scenario(system, diffs: List[str]) -> Generator:
    """Prefill + victim partial write + recovery + durability check."""
    from repro.redundancy.recovery import rebuild_server

    client = system.client()
    span = system.layout.group_span
    size = 2 * span
    ref = np.zeros(size, dtype=np.uint8)
    mask = np.zeros(size, dtype=bool)

    # The victim partial write: head-partial in group 0, small enough
    # to stay on one home server in the Hybrid overflow path.
    writes = [
        (0, Payload.pattern(size, seed=11)),
        (_UNIT // 4, Payload.pattern(_UNIT // 2, seed=22)),
    ]

    yield from client.create(_NAME)
    for offset, payload in writes:
        end = offset + payload.length
        try:
            yield from client.write(_NAME, offset, payload)
        except (ServerFailed, DataLoss):
            mask[offset:end] = False  # torn extent: any content is legal
        else:
            ref[offset:end] = np.frombuffer(payload.to_bytes(),
                                            dtype=np.uint8)
            mask[offset:end] = True

    # Recover: rebuild every crashed and every suspected server.
    needs = {s for s in range(system.layout.n) if system.iods[s].failed}
    for c in system.clients:
        needs |= set(c.suspected)
    for s in sorted(needs):
        if not system.iods[s].failed:
            system.iods[s].fail()
        yield from rebuild_server(system, s)

    # Durability: the full file must read back with acked bytes intact.
    try:
        data = yield from client.read(_NAME, 0, size)
    except (ServerFailed, DataLoss) as exc:
        diffs.append(f"file unreadable after recovery: {exc}")
        return
    got = np.frombuffer(data.to_bytes(), dtype=np.uint8)
    if not np.array_equal(got[mask], ref[mask]):
        bad = int(np.count_nonzero(got[mask] != ref[mask]))
        diffs.append(f"{bad} acked byte(s) lost after recovery")


def crash_matrix(scheme: str,
                 make_scheme: Optional[Callable[[Any], Any]] = None,
                 victims: Optional[Tuple[int, ...]] = None,
                 ) -> List[MatrixCell]:
    """Run the full (step × victim) crash matrix for ``scheme``."""
    cells: List[MatrixCell] = []
    for step, nth in MATRIX_STEPS[scheme]:
        for victim in (victims if victims is not None
                       else range(_SERVERS)):
            cells.append(run_cell(scheme, step, nth, victim,
                                  make_scheme=make_scheme))
    return cells
