"""Declarative fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each a
fault *kind* plus a :class:`Trigger` saying when it fires.  Plans are
pure data: they serialize to JSON (``schema_version``-guarded, the same
convention as the explorer's ``.sched`` files) so a failing chaos run
can be replayed bit-for-bit with ``csar-repro chaos --replay``.

Fault kinds
-----------

``crash``
    Permanent server failure: :meth:`IODaemon.fail` on ``server``.
``restart_crash``
    Transient failure: the server crashes, then restarts
    ``restart_after`` sim-seconds later with its disk contents intact
    (``repair(wipe=False)``).  The server stays *suspected* by clients
    until it is rebuilt, so restarted-but-stale state is never read.
``link_drop`` / ``link_delay`` / ``link_dup``
    The next ``count`` messages to/from ``server`` on ``hw.link`` are
    silently dropped / delayed by ``delay`` sim-seconds / transit the
    wire twice.  Drops require client RPC timeouts to be enabled.
``disk_slow`` / ``disk_error``
    The next ``count`` I/Os on ``server``'s disk take ``factor``×
    longer / raise :class:`~repro.errors.DiskFault` (the server treats
    EIO as fatal and crashes).
``torn_write``
    The next block-file write on ``server`` persists only a ``frac``
    prefix of its payload, then the server crashes — the classic torn
    partial write.

Triggers
--------

``time``  — fire at sim time ``at`` (float seconds).
``op``    — fire just before workload op ordinal ``at`` (0-based).
``step``  — fire synchronously at the ``nth`` occurrence of the named
            protocol step ``at`` (see :data:`STEP_NAMES`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from random import Random
from typing import Iterable, Optional, Sequence

from repro.errors import FaultPlanError

PLAN_SCHEMA_VERSION = 1

FAULT_KINDS = (
    "crash",
    "restart_crash",
    "link_drop",
    "link_delay",
    "link_dup",
    "disk_slow",
    "disk_error",
    "torn_write",
)

TRIGGER_KINDS = ("time", "op", "step")

#: Named protocol steps that accept ``step`` triggers.  Client-side
#: steps bracket the RAID5 read-modify-write and the Hybrid overflow
#: write; the ``iod.*`` steps fire server-side (with ``server`` set to
#: the serving daemon) so a crash can land between a home overflow
#: append and its mirror copy.
STEP_NAMES = frozenset({
    "raid5.rmw.before_parity_read",
    "raid5.rmw.after_parity_read",
    "raid5.rmw.before_writeback",
    "raid5.rmw.after_writeback",
    "raid5.full_stripe.before_write",
    "hybrid.overflow.before_write",
    "hybrid.overflow.after_write",
    "iod.overflow.before_append",
    "iod.overflow.after_append",
})

_LINK_KINDS = ("link_drop", "link_delay", "link_dup")
_DISK_KINDS = ("disk_slow", "disk_error")
_CRASH_KINDS = ("crash", "restart_crash", "torn_write", "disk_error")


@dataclass(frozen=True)
class Trigger:
    """When a fault fires: a sim time, an op ordinal, or a named step."""

    kind: str
    at: object
    nth: int = 1

    def validate(self) -> None:
        if self.kind not in TRIGGER_KINDS:
            raise FaultPlanError(f"unknown trigger kind {self.kind!r}")
        if self.kind == "time" and not isinstance(self.at, (int, float)):
            raise FaultPlanError(f"time trigger needs a number, got {self.at!r}")
        if self.kind == "op" and not (isinstance(self.at, int) and self.at >= 0):
            raise FaultPlanError(f"op trigger needs an ordinal >= 0, got {self.at!r}")
        if self.kind == "step":
            if self.at not in STEP_NAMES:
                raise FaultPlanError(f"unknown protocol step {self.at!r}")
            if self.nth < 1:
                raise FaultPlanError(f"step trigger nth must be >= 1, got {self.nth}")

    def to_json(self) -> dict:
        out = {"kind": self.kind, "at": self.at}
        if self.nth != 1:
            out["nth"] = self.nth
        return out

    @classmethod
    def from_json(cls, data: dict) -> "Trigger":
        trig = cls(kind=data["kind"], at=data["at"], nth=int(data.get("nth", 1)))
        trig.validate()
        return trig


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind, target server, trigger, kind-specific knobs."""

    kind: str
    server: int
    trigger: Trigger
    restart_after: Optional[float] = None  # restart_crash
    count: int = 1                         # link_* / disk_*
    delay: float = 0.0                     # link_delay
    factor: float = 1.0                    # disk_slow
    frac: float = 0.5                      # torn_write
    direction: str = "any"                 # link_*: "req" | "reply" | "any"

    def validate(self, num_servers: int) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}")
        if not 0 <= self.server < num_servers:
            raise FaultPlanError(
                f"fault {self.kind} targets server {self.server}, "
                f"but the system has {num_servers} servers")
        self.trigger.validate()
        if self.kind == "restart_crash" and (
                self.restart_after is None or self.restart_after <= 0):
            raise FaultPlanError("restart_crash needs restart_after > 0")
        if self.kind in _LINK_KINDS or self.kind in _DISK_KINDS:
            if self.count < 1:
                raise FaultPlanError(f"{self.kind} needs count >= 1")
        if self.kind == "link_delay" and self.delay <= 0:
            raise FaultPlanError("link_delay needs delay > 0")
        if self.kind == "disk_slow" and self.factor <= 1.0:
            raise FaultPlanError("disk_slow needs factor > 1")
        if self.kind == "torn_write" and not 0.0 <= self.frac < 1.0:
            raise FaultPlanError("torn_write needs 0 <= frac < 1")
        if self.direction not in ("req", "reply", "any"):
            raise FaultPlanError(f"bad link direction {self.direction!r}")

    def to_json(self) -> dict:
        out = {
            "kind": self.kind,
            "server": self.server,
            "trigger": self.trigger.to_json(),
        }
        if self.kind == "restart_crash":
            out["restart_after"] = self.restart_after
        if self.kind in _LINK_KINDS:
            out["count"] = self.count
            out["direction"] = self.direction
        if self.kind == "link_delay":
            out["delay"] = self.delay
        if self.kind in _DISK_KINDS:
            out["count"] = self.count
        if self.kind == "disk_slow":
            out["factor"] = self.factor
        if self.kind == "torn_write":
            out["frac"] = self.frac
        return out

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            server=int(data["server"]),
            trigger=Trigger.from_json(data["trigger"]),
            restart_after=data.get("restart_after"),
            count=int(data.get("count", 1)),
            delay=float(data.get("delay", 0.0)),
            factor=float(data.get("factor", 1.0)),
            frac=float(data.get("frac", 0.5)),
            direction=data.get("direction", "any"),
        )

    @property
    def needs_timeout(self) -> bool:
        """Drops and long delays strand an RPC; the client must time out."""
        return self.kind == "link_drop"

    @property
    def crashes_server(self) -> bool:
        return self.kind in _CRASH_KINDS


@dataclass
class FaultPlan:
    """A full, replayable fault plan for one chaos run."""

    seed: int
    scheme: str
    num_servers: int
    num_ops: int
    faults: list = field(default_factory=list)
    note: str = ""

    def validate(self) -> None:
        for spec in self.faults:
            spec.validate(self.num_servers)

    @property
    def needs_timeout(self) -> bool:
        return any(spec.needs_timeout for spec in self.faults)

    def crashed_servers(self) -> set:
        return {spec.server for spec in self.faults if spec.crashes_server}

    def to_json(self) -> dict:
        return {
            "schema_version": PLAN_SCHEMA_VERSION,
            "seed": self.seed,
            "scheme": self.scheme,
            "num_servers": self.num_servers,
            "num_ops": self.num_ops,
            "note": self.note,
            "faults": [spec.to_json() for spec in self.faults],
        }

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        version = data.get("schema_version")
        if version != PLAN_SCHEMA_VERSION:
            raise ValueError(
                f"fault plan schema_version {version!r} is not supported "
                f"(this build reads version {PLAN_SCHEMA_VERSION})")
        plan = cls(
            seed=int(data["seed"]),
            scheme=data["scheme"],
            num_servers=int(data["num_servers"]),
            num_ops=int(data["num_ops"]),
            note=data.get("note", ""),
            faults=[FaultSpec.from_json(f) for f in data["faults"]],
        )
        plan.validate()
        return plan


def load_plan(path: str) -> FaultPlan:
    with open(path, "r", encoding="utf-8") as handle:
        return FaultPlan.from_json(json.load(handle))


# ---------------------------------------------------------------------------
# Seed-deterministic sampling
# ---------------------------------------------------------------------------

#: Steps that are only reached by the named scheme.
_SCHEME_STEPS = {
    "raid5": (
        "raid5.rmw.before_parity_read",
        "raid5.rmw.after_parity_read",
        "raid5.rmw.before_writeback",
        "raid5.rmw.after_writeback",
        "raid5.full_stripe.before_write",
    ),
    "hybrid": (
        "raid5.rmw.before_parity_read",
        "raid5.rmw.after_parity_read",
        "raid5.rmw.before_writeback",
        "raid5.rmw.after_writeback",
        "hybrid.overflow.before_write",
        "hybrid.overflow.after_write",
        "iod.overflow.before_append",
        "iod.overflow.after_append",
    ),
}


def _sample_trigger(rng: Random, scheme: str, num_ops: int) -> Trigger:
    steps = _SCHEME_STEPS.get(scheme)
    kinds = ["op", "time"] + (["step", "step"] if steps else [])
    kind = rng.choice(kinds)
    if kind == "op":
        return Trigger("op", rng.randrange(num_ops))
    if kind == "time":
        # Workload ops land in the first few sim seconds; spread over them.
        return Trigger("time", round(rng.uniform(0.0005, 2.0), 6))
    return Trigger("step", rng.choice(steps), nth=rng.randint(1, 3))


def sample_plan(seed: int, scheme: str, num_servers: int,
                num_ops: int) -> FaultPlan:
    """Sample a fault plan deterministically from ``seed``.

    At most one server is ever *permanently* lost (CSAR is single-fault
    tolerant; losing two servers is declared :class:`DataLoss` and the
    write is never acknowledged, so a two-crash plan proves nothing
    about durability).  Nuisance faults (link, slow disk) may target
    any server.
    """
    rng = Random(seed)
    plan = FaultPlan(seed=seed, scheme=scheme, num_servers=num_servers,
                     num_ops=num_ops)
    # One "lethal" fault: crash / restart / torn write / disk error.
    victim = rng.randrange(num_servers)
    lethal = rng.choice(("crash", "crash", "restart_crash", "torn_write",
                         "disk_error"))
    if scheme == "raid0" and rng.random() < 0.5:
        lethal = None  # raid0 has no redundancy; usually run fault-free
    if lethal is not None:
        trigger = _sample_trigger(rng, scheme, num_ops)
        if lethal == "crash":
            spec = FaultSpec("crash", victim, trigger)
        elif lethal == "restart_crash":
            spec = FaultSpec("restart_crash", victim, trigger,
                             restart_after=round(rng.uniform(0.01, 0.5), 6))
        elif lethal == "torn_write":
            spec = FaultSpec("torn_write", victim, trigger,
                             frac=round(rng.uniform(0.0, 0.9), 3))
        else:
            spec = FaultSpec("disk_error", victim, trigger,
                             count=rng.randint(1, 2))
        plan.faults.append(spec)
    # Zero or more nuisance faults on any server.
    for _ in range(rng.randint(0, 2)):
        server = rng.randrange(num_servers)
        kind = rng.choice(("link_delay", "link_dup", "disk_slow", "link_drop"))
        trigger = _sample_trigger(rng, scheme, num_ops)
        if kind == "link_delay":
            spec = FaultSpec(kind, server, trigger, count=rng.randint(1, 4),
                             delay=round(rng.uniform(0.001, 0.05), 6),
                             direction=rng.choice(("req", "reply", "any")))
        elif kind == "link_dup":
            spec = FaultSpec(kind, server, trigger, count=rng.randint(1, 4),
                             direction=rng.choice(("req", "reply", "any")))
        elif kind == "disk_slow":
            spec = FaultSpec(kind, server, trigger, count=rng.randint(1, 8),
                             factor=round(rng.uniform(2.0, 16.0), 3))
        else:
            spec = FaultSpec("link_drop", server, trigger,
                             count=1, direction="req")
        plan.faults.append(spec)
    plan.validate()
    return plan
