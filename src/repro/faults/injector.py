"""The fault-injection runtime.

A :class:`FaultInjector` is built per :class:`~repro.sim.engine.Environment`
through the engine's factory hook (:func:`install` /
:func:`repro.sim.engine.set_fault_factory`) and armed against a
:class:`~repro.csar.system.System` by ``System.__init__`` calling
:meth:`FaultInjector.attach`.  Hook points consult it:

* :func:`repro.hw.link.transfer` / ``stream`` call :meth:`link_action`
  per message (drop / delay / duplicate);
* :meth:`repro.hw.disk.Disk.io` calls :meth:`disk_action` per operation
  (slow down, or inject an EIO that panics the serving daemon);
* :meth:`repro.storage.blockfile.BlockFile.write` calls the module-level
  torn-write hook (truncate the payload, then panic the server);
* protocol code calls :func:`fault_step` at named steps (see
  :data:`repro.faults.plan.STEP_NAMES`), which fires step-triggered
  faults synchronously at exactly that point;
* the chaos runner calls :meth:`note_op` before each workload op.

Crash semantics: a fired crash calls :meth:`IODaemon.fail`, which
rejects new requests, errors out in-flight handlers, and clears the
parity-lock table (see ``pvfs/iod.py``).  ``restart_crash`` brings the
server back ``restart_after`` sim-seconds later with its (possibly
stale) disk intact; clients keep it *suspected* — reads reconstruct
around it — until a rebuild clears the suspicion.

Everything is driven by the armed plan and the sim clock: no wall
clock, no unseeded randomness, so a plan replays bit-identically.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import FaultPlanError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.sim import engine as _engine
from repro.storage import blockfile as _blockfile

#: The injector of the most recently attached System.  Chaos runs are
#: sequential (one live System at a time), so a single slot suffices;
#: the blockfile torn-write hook routes through it because a
#: :class:`BlockFile` holds no environment reference.
_CURRENT: Optional["FaultInjector"] = None

#: The plan new environments will arm, while installed.
_installed_plan: Optional[FaultPlan] = None


class FaultInjector:
    """Armed fault plan + live trigger state for one environment."""

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self.plan = plan
        self.system = None
        self.env = None
        #: ``(sim_time, kind, server)`` log of every fired fault — part
        #: of the chaos determinism digest.
        self.fired: List[Tuple[float, str, int]] = []
        self._step_counts: Dict[str, int] = {}
        self._pending_steps: Dict[str, List[FaultSpec]] = {}
        self._pending_ops: Dict[int, List[FaultSpec]] = {}
        self._link_active: List[dict] = []
        self._disk_active: List[dict] = []
        self._torn_active: List[FaultSpec] = []
        self._nic_owner: Dict[int, int] = {}
        self._disk_owner: Dict[int, int] = {}
        self.restarted: set = set()

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def attach(self, system) -> None:
        """Arm the plan against a freshly built :class:`System`."""
        global _CURRENT
        self.system = system
        self.env = system.env
        _CURRENT = self
        plan = self.plan
        if plan is None:
            return
        if plan.num_servers != system.config.num_servers:
            raise FaultPlanError(
                f"plan was sampled for {plan.num_servers} servers, "
                f"system has {system.config.num_servers}")
        if plan.needs_timeout and \
                getattr(system.config, "rpc_timeout", None) is None:
            raise FaultPlanError(
                "plan drops messages, which strands RPCs forever unless "
                "CSARConfig.rpc_timeout is set")
        self._nic_owner = {id(node.nic): i
                          for i, node in enumerate(system.server_nodes)}
        self._disk_owner = {id(node.disk): i
                           for i, node in enumerate(system.server_nodes)}
        for spec in plan.faults:
            trigger = spec.trigger
            if trigger.kind == "time":
                self.env.process(self._timer(spec), name="faults.timer")
            elif trigger.kind == "op":
                self._pending_ops.setdefault(trigger.at, []).append(spec)
            else:
                self._pending_steps.setdefault(trigger.at, []).append(spec)

    def _timer(self, spec: FaultSpec) -> Generator:
        delay = spec.trigger.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self._fire(spec)

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------
    def note_op(self, ordinal: int) -> None:
        """The workload is about to issue op ``ordinal`` (0-based)."""
        for spec in self._pending_ops.pop(ordinal, ()):
            self._fire(spec)

    def on_step(self, name: str, server: Optional[int] = None) -> None:
        """A named protocol step was reached (see :func:`fault_step`)."""
        count = self._step_counts.get(name, 0) + 1
        self._step_counts[name] = count
        pending = self._pending_steps.get(name)
        if not pending:
            return
        for spec in list(pending):
            if spec.trigger.nth == count:
                pending.remove(spec)
                self._fire(spec)

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def _fire(self, spec: FaultSpec) -> None:
        self.fired.append((self.env.now, spec.kind, spec.server))
        kind = spec.kind
        if kind in ("crash", "restart_crash"):
            self._crash(spec.server)
            if kind == "restart_crash":
                iod = self.system.iods[spec.server]
                self.env.process(self._restarter(spec, iod),
                                 name="faults.restarter")
        elif kind in ("link_drop", "link_delay", "link_dup"):
            self._link_active.append({"spec": spec, "left": spec.count})
        elif kind in ("disk_slow", "disk_error"):
            self._disk_active.append({"spec": spec, "left": spec.count})
        elif kind == "torn_write":
            self._torn_active.append(spec)

    def _crash(self, server: int) -> None:
        iod = self.system.iods[server]
        if not iod.failed:
            iod.fail()
            self.system.metrics.add("failures.injected")

    def _restarter(self, spec: FaultSpec, iod) -> Generator:
        yield self.env.timeout(spec.restart_after)
        if self.system.iods[spec.server] is iod and iod.failed \
                and not iod.rebuilding:
            # Disk contents survive the restart but may be stale; the
            # server serves again, yet stays suspected by every client
            # that saw it fail until a rebuild clears the suspicion.
            iod.repair(wipe=False)
            self.restarted.add(spec.server)
            self.fired.append((self.env.now, "restart", spec.server))

    # ------------------------------------------------------------------
    # hook-point queries
    # ------------------------------------------------------------------
    def link_action(self, src, dst, nbytes: int) -> Optional[tuple]:
        """Fault action for one message ``src -> dst``, or ``None``.

        Returns ``("drop",)``, ``("delay", seconds)`` or ``("dup",)``;
        each armed fault consumes ``count`` matching messages.
        """
        if not self._link_active:
            return None
        src_owner = self._nic_owner.get(id(src))
        dst_owner = self._nic_owner.get(id(dst))
        for entry in self._link_active:
            spec = entry["spec"]
            direction = spec.direction
            if not ((direction in ("req", "any") and dst_owner == spec.server)
                    or (direction in ("reply", "any")
                        and src_owner == spec.server)):
                continue
            entry["left"] -= 1
            if entry["left"] <= 0:
                self._link_active.remove(entry)
            self.fired.append((self.env.now, spec.kind, spec.server))
            if spec.kind == "link_drop":
                return ("drop",)
            if spec.kind == "link_delay":
                return ("delay", spec.delay)
            return ("dup",)
        return None

    def disk_action(self, disk) -> Optional[tuple]:
        """Fault action for one disk I/O, or ``None``.

        ``("slow", factor)`` stretches the operation; ``("error",)``
        makes it raise :class:`~repro.errors.DiskFault` *after* this
        injector has panicked the owning server (EIO is treated as
        fatal, like an ext2 remount-ro).  Errors only fire on I/O
        issued by the server's own request handlers, so background
        flusher processes never raise into unsupervised code.
        """
        if not self._disk_active:
            return None
        owner = self._disk_owner.get(id(disk))
        if owner is None:
            return None
        for entry in self._disk_active:
            spec = entry["spec"]
            if spec.server != owner:
                continue
            if spec.kind == "disk_error":
                active = self.env.active_process
                name = getattr(active, "name", "") if active else ""
                if not name.startswith(f"iod{owner}."):
                    continue
            entry["left"] -= 1
            if entry["left"] <= 0:
                self._disk_active.remove(entry)
            self.fired.append((self.env.now, spec.kind, spec.server))
            if spec.kind == "disk_slow":
                return ("slow", spec.factor)
            self._crash(owner)
            return ("error",)
        return None

    def torn_action(self, block, offset: int, payload):
        """Torn-write decision for one block-file write, or ``None``.

        Returns ``(truncated_payload_or_None, exception)``: the block
        file persists only the prefix, then raises — and the owning
        server is panicked, so the write is never acknowledged.
        """
        if not self._torn_active:
            return None
        owner = getattr(block, "owner", None)
        if owner is None:
            return None
        for spec in self._torn_active:
            if spec.server != owner:
                continue
            self._torn_active.remove(spec)
            keep = int(payload.length * spec.frac)
            self.fired.append((self.env.now, spec.kind, spec.server))
            self._crash(owner)
            from repro.errors import DiskFault

            torn = payload.slice(0, keep) if keep else None
            return (torn, DiskFault(
                f"torn write on iod{owner}: {keep}/{payload.length} bytes "
                f"persisted"))
        return None


# ---------------------------------------------------------------------------
# step hook (called from protocol code)
# ---------------------------------------------------------------------------
def fault_step(env, name: str, server: Optional[int] = None) -> None:
    """Announce a named protocol step; a no-op unless a plan is armed."""
    faults = env.faults
    if faults is not None:
        faults.on_step(name, server)


def _torn_dispatch(block, offset, payload):
    injector = _CURRENT
    if injector is None:
        return None
    return injector.torn_action(block, offset, payload)


# ---------------------------------------------------------------------------
# install / uninstall
# ---------------------------------------------------------------------------
def install(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` for every subsequently created environment."""
    global _installed_plan
    _installed_plan = plan
    _engine.set_fault_factory(lambda: FaultInjector(_installed_plan))
    _blockfile.set_torn_hook(_torn_dispatch)


def uninstall() -> None:
    """Remove the injector factory and the blockfile hook."""
    global _installed_plan, _CURRENT
    _installed_plan = None
    _CURRENT = None
    _engine.set_fault_factory(None)
    _blockfile.set_torn_hook(None)


def installed() -> bool:
    return _engine.fault_factory() is not None
