"""Run-wide counters and timers.

One :class:`Metrics` object is shared by every model in a simulated cluster;
experiments read it to report bandwidth, byte amplification, lock overhead,
cache behaviour and storage use.  Counters are plain dict entries so new
models can add their own without schema churn.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.units import mbps


class Metrics:
    """Cumulative counters for one simulation run."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        #: per-node transmitted payload bytes (client NIC saturation checks)
        self.node_tx_bytes: Dict[str, int] = defaultdict(int)
        self.node_rx_bytes: Dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def add(self, key: str, amount: float = 1.0) -> None:
        self.counters[key] += amount

    def get(self, key: str) -> float:
        return self.counters.get(key, 0.0)

    def record_tx(self, node: str, nbytes: int) -> None:
        self.node_tx_bytes[node] += nbytes
        self.counters["net.bytes"] += nbytes

    def record_rx(self, node: str, nbytes: int) -> None:
        self.node_rx_bytes[node] += nbytes

    # ------------------------------------------------------------------
    def bandwidth(self, bytes_key: str, seconds: float) -> float:
        """MB/s for the bytes accumulated under ``bytes_key``."""
        return mbps(self.get(bytes_key), seconds)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy, for assertions and reports."""
        snap = dict(self.counters)
        snap.update({f"tx.{k}": v for k, v in self.node_tx_bytes.items()})
        snap.update({f"rx.{k}": v for k, v in self.node_rx_bytes.items()})
        return snap

    def diff(self, before: Dict[str, float]) -> Dict[str, float]:
        """Counters accumulated since ``before`` (a prior snapshot)."""
        now = self.snapshot()
        keys = set(now) | set(before)
        return {k: now.get(k, 0.0) - before.get(k, 0.0)
                for k in keys if now.get(k, 0.0) != before.get(k, 0.0)}
