"""The CSAR client library.

Mirrors the PVFS client library's role: open files through the manager,
then move data directly between the application and the I/O daemons.  All
redundancy intelligence — which servers get which bytes, parity
read-modify-write, overflow placement — lives in the pluggable
:class:`~repro.redundancy.base.RedundancyScheme` the client delegates to,
exactly as CSAR added redundancy "by adding new routines" around intact
PVFS code.
"""

from __future__ import annotations

import itertools
from random import Random
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.errors import ReproError, RpcTimeout, ServerFailed
from repro.hw.link import stream, transfer
from repro.hw.node import Node
from repro.metrics import Metrics
from repro.pvfs import messages as msg
from repro.pvfs.manager import FileMeta, Manager
from repro.sim.engine import Environment, Event
from repro.storage.payload import Payload


class PVFSClient:
    """One application process's file-system endpoint."""

    def __init__(self, env: Environment, index: int, node: Node,
                 iods: Sequence, manager: Manager, metrics: Metrics,
                 scheme) -> None:
        self.env = env
        self.index = index
        self.node = node
        self.iods = list(iods)
        self.manager = manager
        self.metrics = metrics
        self.scheme = scheme
        self._xids = itertools.count(index << 32)
        self._handles: Dict[str, FileMeta] = {}
        #: route operations through the mounted kernel module (Section 6.6)
        self.via_kernel_module = False
        #: optional :class:`~repro.util.trace.TraceRecorder`
        self.tracer = None
        #: servers this client has seen fail — reads skip them and go
        #: straight to reconstruction (fail-fast); cleared on rebuild
        self.suspected: set = set()
        self._scheme_cache: Dict[str, object] = {}
        #: seeded jitter source for retry backoff — sim-deterministic,
        #: de-phased across clients by mixing in the client index
        self._retry_rng = Random(
            getattr(scheme.config, "rpc_jitter_seed", 0) * 1000003 + index)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def next_xid(self) -> int:
        return next(self._xids)

    def rpc(self, target, request) -> Generator[Event, Any, Any]:
        """Send ``request`` to an iod or the manager; return its response.

        Payload-bearing requests stream: the server's per-byte data
        handling overlaps the transfer, as over a real socket.  Raises the
        server-reported error, so callers see
        :class:`~repro.errors.ServerFailed` and friends as exceptions.
        """
        config = self.scheme.config
        if getattr(config, "rpc_timeout", None) is not None \
                and hasattr(target, "failed"):
            return (yield from self._rpc_hardened(target, request, config))
        wire = request.wire_size()
        if wire > msg.HEADER and hasattr(target, "failed") and not target.failed:
            yield from stream(self.env, self.node.nic, target.node.nic,
                              wire, self.metrics, cpu=target.node.cpu,
                              cpu_at="dst")
        else:
            yield from transfer(self.env, self.node.nic, target.node.nic,
                                wire, self.metrics)
        done = self.env.event()
        target.inbox.put((request, self.node.nic, done))
        response = yield done
        error = getattr(response, "error", None)
        if error is not None:
            from repro.errors import ServerFailed

            if isinstance(error, ServerFailed) and hasattr(target, "index"):
                self.suspected.add(target.index)
            raise error
        return response

    # ------------------------------------------------------------------
    # hardened RPC: deadlines, bounded backoff, failover
    # ------------------------------------------------------------------
    @staticmethod
    def _idempotent(request) -> bool:
        """May this request be safely delivered more than once?

        Plain reads and in-place writes are idempotent (same bytes to
        the same place); so are mirror resolves and fsyncs.  Parity
        reads are idempotent only when they do not carry a lock
        acquisition, and everything that mutates protocol state (lock
        messages, parity writes with their release, overflow appends —
        a second append would allocate a second slot) must never be
        retried blind.
        """
        if type(request) in (msg.ReadReq, msg.WriteReq,
                             msg.MirrorResolveReq, msg.FsyncReq):
            return True
        if type(request) is msg.ParityReadReq:
            return not request.lock
        return False

    def _rpc_attempt(self, target, request,
                     ) -> Generator[Event, Any,
                                    Tuple[Any, Optional[Exception]]]:
        """One send + reply wait as a spawnable process.

        Never raises: the hardened path races this against a deadline,
        and an abandoned attempt that fails later must not poison the
        run with an unobserved event failure.
        """
        try:
            wire = request.wire_size()
            if wire > msg.HEADER and not target.failed:
                yield from stream(self.env, self.node.nic, target.node.nic,
                                  wire, self.metrics, cpu=target.node.cpu,
                                  cpu_at="dst")
            else:
                yield from transfer(self.env, self.node.nic, target.node.nic,
                                    wire, self.metrics)
            done = self.env.event()
            target.inbox.put((request, self.node.nic, done))
            response = yield done
        except ReproError as exc:
            return (None, exc)
        error = getattr(response, "error", None)
        if error is not None:
            return (None, error)
        return (response, None)

    def _rpc_hardened(self, target, request, config,
                      ) -> Generator[Event, Any, Any]:
        """RPC with a per-request deadline and bounded retry.

        Timeouts surface as :class:`~repro.errors.RpcTimeout` — a
        :class:`ServerFailed` — so an unresponsive server rides the
        same failover machinery as a crashed one: it joins
        ``self.suspected``, reads reconstruct around it through the
        scheme's degraded path, and tolerant writes record a degraded
        write instead of blocking forever.  Suspected servers fail
        fast without touching the wire; the suspicion is cleared only
        by a rebuild, so a restarted-but-stale server is quarantined
        until recovery has made it consistent.
        """
        if target.index in self.suspected:
            self.metrics.add("client.failfast_rpcs")
            raise ServerFailed(f"iod{target.index} suspected")
        retries = config.rpc_retries if self._idempotent(request) else 0
        attempt = 0
        while True:
            proc = self.env.process(self._rpc_attempt(target, request),
                                    name=f"client{self.index}.rpc")
            deadline = self.env.timeout(config.rpc_timeout)
            yield self.env.any_of([proc, deadline])
            if proc.triggered:
                response, error = proc.value
                if error is None:
                    return response
                if isinstance(error, ServerFailed):
                    self.suspected.add(target.index)
                raise error
            # Deadline hit: the attempt is abandoned (a late reply is
            # consumed by the guarded process and discarded).
            self.metrics.add("client.rpc_timeouts")
            if attempt >= retries:
                self.suspected.add(target.index)
                raise RpcTimeout(
                    f"iod{target.index} did not answer "
                    f"{type(request).__name__} within "
                    f"{config.rpc_timeout:g}s "
                    f"({attempt + 1} attempt(s))")
            backoff = min(config.rpc_backoff_cap,
                          config.rpc_backoff_base * (2 ** attempt))
            yield self.env.timeout(
                backoff + self._retry_rng.uniform(0.0, backoff))
            attempt += 1

    def parallel(self, gens: List) -> Generator[Event, Any, List[Any]]:
        """Run generators concurrently; fail fast on the first error."""
        procs = [self.env.process(g) for g in gens]
        values = yield self.env.all_of(procs)
        return values

    def try_parallel(self, gens: List,
                     ) -> Generator[Event, Any, List[Tuple[Any, Optional[Exception]]]]:
        """Run generators concurrently, collecting per-item outcomes.

        Returns ``(value, None)`` or ``(None, error)`` per generator, in
        order.  Needed by degraded reads, which must learn *which* server
        failed rather than aborting wholesale.
        """

        def guard(gen):
            try:
                value = yield from gen
            except ReproError as exc:
                return (None, exc)
            return (value, None)

        procs = [self.env.process(guard(g)) for g in gens]
        outcomes = yield self.env.all_of(procs)
        return outcomes

    # ------------------------------------------------------------------
    # per-server request coalescing
    # ------------------------------------------------------------------
    @staticmethod
    def _merge_key(target, request) -> Optional[tuple]:
        """Coalescing identity of a request, or ``None`` if unmergeable.

        Only plain data/redundancy reads and writes merge; parity
        messages carry lock protocol and overflow appends carry range
        tables, so both always travel alone.
        """
        if type(request) is msg.ReadReq:
            return (id(target), msg.ReadReq, request.file, request.kind)
        if type(request) is msg.WriteReq:
            return (id(target), msg.WriteReq, request.file, request.kind,
                    request.invalidate)
        return None

    def _coalesce(self, pairs: Sequence[Tuple[Any, Any]],
                  ) -> List[Tuple[Any, Any, List[int]]]:
        """Plan vectored messages for ``(target, request)`` pairs.

        Adjacent fragments (``prev.offset + prev.length == next.offset``)
        of the same server/file/kind are merged into one request with one
        header and one payload stream.  Returns ``(target, request,
        fragment_indices)`` triples in first-fragment order; a run of one
        keeps its original request untouched.
        """
        runs: List[List[int]] = []
        open_runs: Dict[tuple, int] = {}  # merge key -> index into runs
        ends: Dict[tuple, int] = {}       # merge key -> current end offset
        for i, (target, request) in enumerate(pairs):
            key = self._merge_key(target, request)
            if key is not None and open_runs.get(key) is not None \
                    and ends[key] == request.offset:
                runs[open_runs[key]].append(i)
            else:
                if key is not None:
                    open_runs[key] = len(runs)
                runs.append([i])
            if key is not None:
                length = (request.length if type(request) is msg.ReadReq
                          else request.payload.length)
                ends[key] = request.offset + length
        plan: List[Tuple[Any, Any, List[int]]] = []
        for indices in runs:
            target, first = pairs[indices[0]]
            if len(indices) == 1:
                plan.append((target, first, indices))
                continue
            fragments = [pairs[i][1] for i in indices]
            if type(first) is msg.ReadReq:
                merged = msg.ReadReq(
                    first.file, kind=first.kind, offset=first.offset,
                    length=sum(f.length for f in fragments), xid=first.xid)
            else:
                total = sum(f.payload.length for f in fragments)
                # One merged wire message per run: the flattening here IS
                # the coalescing win (k fragments -> one header).
                payload = Payload.assemble(total, [  # csar-lint: disable=CSAR012
                    (f.offset - first.offset, f.payload) for f in fragments])
                mirror_invalidate: tuple = ()
                for f in fragments:
                    mirror_invalidate += f.mirror_invalidate
                merged = msg.WriteReq(
                    first.file, kind=first.kind, offset=first.offset,
                    payload=payload, invalidate=first.invalidate,
                    mirror_invalidate=mirror_invalidate, xid=first.xid)
            plan.append((target, merged, indices))
        return plan

    def rpc_coalesced(self, pairs: Sequence[Tuple[Any, Any]],
                      ) -> Generator[Event, Any,
                                     List[Tuple[Any, Optional[Exception]]]]:
        """Issue ``(target, request)`` pairs, merging adjacent fragments.

        The vectored companion of :meth:`try_parallel`: per-server runs of
        adjacent same-kind fragments travel as one message (saving a
        header and a round-trip each), and the merged reply is split back
        into per-fragment responses with zero-copy slices.  Returns
        ``(response, error)`` per input pair, in order.  With
        ``config.coalescing`` off every request travels alone.
        """
        if not getattr(self.scheme.config, "coalescing", True) \
                or len(pairs) < 2:
            plan = [(t, r, [i]) for i, (t, r) in enumerate(pairs)]
        else:
            plan = self._coalesce(pairs)
            saved = len(pairs) - len(plan)
            if saved:
                self.metrics.add("client.coalesced_fragments", saved)
                self.metrics.add("client.coalesced_header_bytes",
                                 saved * msg.HEADER)
        merged_outcomes = yield from self.try_parallel(
            [self.rpc(target, request) for target, request, _ in plan])
        outcomes: List[Any] = [None] * len(pairs)
        for (target, request, indices), (response, error) in zip(
                plan, merged_outcomes):
            if error is not None:
                for i in indices:
                    outcomes[i] = (None, error)
            elif len(indices) == 1:
                outcomes[indices[0]] = (response, None)
            elif type(request) is msg.ReadReq:
                # Split the merged reply; overflow accounting (a
                # whole-message property) rides on the first fragment.
                cursor = 0
                for slot, i in enumerate(indices):
                    length = pairs[i][1].length
                    outcomes[i] = (msg.Response(
                        payload=response.payload.slice(cursor,
                                                       cursor + length),
                        overflow_bytes=(response.overflow_bytes
                                        if slot == 0 else 0)), None)
                    cursor += length
            else:
                for i in indices:
                    outcomes[i] = (msg.Response(), None)
        return outcomes

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------
    def create(self, name: str,
               scheme: Optional[str] = None) -> Generator[Event, Any, FileMeta]:
        """Create a file, optionally overriding the deployment's
        redundancy scheme for it (e.g. raid0 scratch next to hybrid
        checkpoints)."""
        response = yield from self.rpc(self.manager,
                                       msg.MgrCreate(name, scheme=scheme))
        self._handles[name] = response.meta
        return response.meta

    def scheme_for(self, meta: FileMeta):
        """The strategy object serving this file's scheme."""
        if meta.scheme == self.scheme.name:
            return self.scheme
        cached = self._scheme_cache.get(meta.scheme)
        if cached is None:
            from repro.redundancy.base import make_scheme

            cached = make_scheme(meta.scheme, self.scheme.config)
            self._scheme_cache[meta.scheme] = cached
        return cached

    def open(self, name: str) -> Generator[Event, Any, FileMeta]:
        meta = self._handles.get(name)
        if meta is None:
            response = yield from self.rpc(self.manager, msg.MgrOpen(name))
            meta = self._handles[name] = response.meta
        return meta

    def _open_guarded(self, name: str,
                      ) -> Generator[Event, Any,
                                     Tuple[Optional[FileMeta],
                                           Optional[Exception]]]:
        """:meth:`open` as a spawnable process: returns ``(meta, error)``
        instead of raising, so a pipelined open can run concurrently with
        work that must not be torn down by its failure."""
        try:
            meta = yield from self.open(name)
        except ReproError as exc:
            return (None, exc)
        return (meta, None)

    def unlink(self, name: str) -> Generator[Event, Any, None]:
        yield from self.rpc(self.manager, msg.MgrUnlink(name))
        self._handles.pop(name, None)

    # ------------------------------------------------------------------
    # data operations
    # ------------------------------------------------------------------
    def write(self, name: str, offset: int,
              payload: Payload) -> Generator[Event, Any, None]:
        # First touch: the manager open overlaps the client-side entry
        # costs (trace record, kernel-module crossing).  The write itself
        # cannot speculate past the open — placement depends on the
        # file's scheme, which only the open reveals.
        meta = self._handles.get(name)
        open_proc = None if meta is not None else self.env.process(
            self._open_guarded(name))
        if self.tracer is not None:
            self.tracer.record(self.index, "write", name, offset,
                               payload.length)
        if self.via_kernel_module:
            yield from self.node.cpu.kernel_module_crossing()
        if open_proc is not None:
            meta, error = yield open_proc
            if error is not None:
                raise error
        # Register with the cluster write ledger so an online rebuild
        # sees this write: re-copy the file after it settles, and hold
        # the rebuilt server offline until in-flight writes drain.
        token = self.manager.write_ledger.begin(name)
        try:
            yield from self.scheme_for(meta).write(self, meta, offset,
                                                   payload)
        finally:
            self.manager.write_ledger.end(token)
        end = offset + payload.length
        if end > meta.size:
            meta.size = end
        self.metrics.add("client.bytes_written", payload.length)

    def read(self, name: str, offset: int,
             length: int) -> Generator[Event, Any, Payload]:
        if self.tracer is not None:
            self.tracer.record(self.index, "read", name, offset, length)
        if self.via_kernel_module:
            yield from self.node.cpu.kernel_module_crossing()
        meta = self._handles.get(name)
        if meta is None:
            payload = yield from self._speculative_read(name, offset, length)
        else:
            payload = yield from self.scheme_for(meta).read(self, meta,
                                                            offset, length)
        self.metrics.add("client.bytes_read", length)
        return payload

    def _speculative_read(self, name: str, offset: int, length: int,
                          ) -> Generator[Event, Any, Payload]:
        """First-touch read: pipeline the manager open with the data RPCs.

        Normal-operation reads are scheme-independent — redundancy is
        never read (Section 4) and striping geometry is deployment-global
        — so the striped fetches may race the open.  Server-side reads
        leave no state behind (:meth:`LocalFS.read` never creates files),
        so a failed open leaks nothing.  On any fetch failure the real
        meta is awaited and the read retried through the scheme, which
        knows how to reconstruct.
        """
        open_proc = self.env.process(self._open_guarded(name))
        ranges = self.manager.layout.map_range(offset, length)

        def fetch(sr):
            if sr.server in self.suspected:
                self.metrics.add("client.failfast_reads")
                raise ServerFailed(f"iod{sr.server} suspected")
            response = yield from self.rpc(
                self.iods[sr.server],
                msg.ReadReq(name, kind="data", offset=sr.local_start,
                            length=sr.length, xid=self.next_xid()))
            return response

        outcomes = yield from self.try_parallel([fetch(sr) for sr in ranges])
        meta, open_error = yield open_proc
        if open_error is not None:
            raise open_error
        parts: List[Tuple[int, Payload]] = []
        for sr, (response, error) in zip(ranges, outcomes):
            if error is not None:
                if not isinstance(error, ServerFailed):
                    raise error
                return (yield from self.scheme_for(meta).read(
                    self, meta, offset, length))
            for p in sr.pieces:
                local = p.local_offset - sr.local_start
                parts.append((p.logical_offset - offset,
                              response.payload.slice(local,
                                                     local + p.length)))
        return Payload.assemble(length, parts)

    def fsync(self, name: str) -> Generator[Event, Any, None]:
        """Flush the file's local files on every I/O server."""
        meta = yield from self.open(name)
        del meta
        yield from self.parallel([
            self.rpc(iod, msg.FsyncReq(name)) for iod in self.iods])
