"""The CSAR client library.

Mirrors the PVFS client library's role: open files through the manager,
then move data directly between the application and the I/O daemons.  All
redundancy intelligence — which servers get which bytes, parity
read-modify-write, overflow placement — lives in the pluggable
:class:`~repro.redundancy.base.RedundancyScheme` the client delegates to,
exactly as CSAR added redundancy "by adding new routines" around intact
PVFS code.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.hw.link import stream, transfer
from repro.hw.node import Node
from repro.metrics import Metrics
from repro.pvfs import messages as msg
from repro.pvfs.manager import FileMeta, Manager
from repro.sim.engine import Environment, Event
from repro.storage.payload import Payload


class PVFSClient:
    """One application process's file-system endpoint."""

    def __init__(self, env: Environment, index: int, node: Node,
                 iods: Sequence, manager: Manager, metrics: Metrics,
                 scheme) -> None:
        self.env = env
        self.index = index
        self.node = node
        self.iods = list(iods)
        self.manager = manager
        self.metrics = metrics
        self.scheme = scheme
        self._xids = itertools.count(index << 32)
        self._handles: Dict[str, FileMeta] = {}
        #: route operations through the mounted kernel module (Section 6.6)
        self.via_kernel_module = False
        #: optional :class:`~repro.util.trace.TraceRecorder`
        self.tracer = None
        #: servers this client has seen fail — reads skip them and go
        #: straight to reconstruction (fail-fast); cleared on rebuild
        self.suspected: set = set()
        self._scheme_cache: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def next_xid(self) -> int:
        return next(self._xids)

    def rpc(self, target, request) -> Generator[Event, Any, Any]:
        """Send ``request`` to an iod or the manager; return its response.

        Payload-bearing requests stream: the server's per-byte data
        handling overlaps the transfer, as over a real socket.  Raises the
        server-reported error, so callers see
        :class:`~repro.errors.ServerFailed` and friends as exceptions.
        """
        wire = request.wire_size()
        if wire > msg.HEADER and hasattr(target, "failed") and not target.failed:
            yield from stream(self.env, self.node.nic, target.node.nic,
                              wire, self.metrics, cpu=target.node.cpu,
                              cpu_at="dst")
        else:
            yield from transfer(self.env, self.node.nic, target.node.nic,
                                wire, self.metrics)
        done = self.env.event()
        target.inbox.put((request, self.node.nic, done))
        response = yield done
        error = getattr(response, "error", None)
        if error is not None:
            from repro.errors import ServerFailed

            if isinstance(error, ServerFailed) and hasattr(target, "index"):
                self.suspected.add(target.index)
            raise error
        return response

    def parallel(self, gens: List) -> Generator[Event, Any, List[Any]]:
        """Run generators concurrently; fail fast on the first error."""
        procs = [self.env.process(g) for g in gens]
        values = yield self.env.all_of(procs)
        return values

    def try_parallel(self, gens: List,
                     ) -> Generator[Event, Any, List[Tuple[Any, Optional[Exception]]]]:
        """Run generators concurrently, collecting per-item outcomes.

        Returns ``(value, None)`` or ``(None, error)`` per generator, in
        order.  Needed by degraded reads, which must learn *which* server
        failed rather than aborting wholesale.
        """

        def guard(gen):
            try:
                value = yield from gen
            except ReproError as exc:
                return (None, exc)
            return (value, None)

        procs = [self.env.process(guard(g)) for g in gens]
        outcomes = yield self.env.all_of(procs)
        return outcomes

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------
    def create(self, name: str,
               scheme: Optional[str] = None) -> Generator[Event, Any, FileMeta]:
        """Create a file, optionally overriding the deployment's
        redundancy scheme for it (e.g. raid0 scratch next to hybrid
        checkpoints)."""
        response = yield from self.rpc(self.manager,
                                       msg.MgrCreate(name, scheme=scheme))
        self._handles[name] = response.meta
        return response.meta

    def scheme_for(self, meta: FileMeta):
        """The strategy object serving this file's scheme."""
        if meta.scheme == self.scheme.name:
            return self.scheme
        cached = self._scheme_cache.get(meta.scheme)
        if cached is None:
            from repro.redundancy.base import make_scheme

            cached = make_scheme(meta.scheme, self.scheme.config)
            self._scheme_cache[meta.scheme] = cached
        return cached

    def open(self, name: str) -> Generator[Event, Any, FileMeta]:
        meta = self._handles.get(name)
        if meta is None:
            response = yield from self.rpc(self.manager, msg.MgrOpen(name))
            meta = self._handles[name] = response.meta
        return meta

    def unlink(self, name: str) -> Generator[Event, Any, None]:
        yield from self.rpc(self.manager, msg.MgrUnlink(name))
        self._handles.pop(name, None)

    # ------------------------------------------------------------------
    # data operations
    # ------------------------------------------------------------------
    def write(self, name: str, offset: int,
              payload: Payload) -> Generator[Event, Any, None]:
        meta = yield from self.open(name)
        if self.tracer is not None:
            self.tracer.record(self.index, "write", name, offset,
                               payload.length)
        if self.via_kernel_module:
            yield from self.node.cpu.kernel_module_crossing()
        yield from self.scheme_for(meta).write(self, meta, offset, payload)
        end = offset + payload.length
        if end > meta.size:
            meta.size = end
        self.metrics.add("client.bytes_written", payload.length)

    def read(self, name: str, offset: int,
             length: int) -> Generator[Event, Any, Payload]:
        meta = yield from self.open(name)
        if self.tracer is not None:
            self.tracer.record(self.index, "read", name, offset, length)
        if self.via_kernel_module:
            yield from self.node.cpu.kernel_module_crossing()
        payload = yield from self.scheme_for(meta).read(self, meta, offset,
                                                         length)
        self.metrics.add("client.bytes_read", length)
        return payload

    def fsync(self, name: str) -> Generator[Event, Any, None]:
        """Flush the file's local files on every I/O server."""
        meta = yield from self.open(name)
        del meta
        yield from self.parallel([
            self.rpc(iod, msg.FsyncReq(name)) for iod in self.iods])
