"""The PVFS-like substrate: striping layout, manager, I/O daemons, client."""

from repro.pvfs.layout import Piece, ServerRange, StripeLayout

__all__ = ["Piece", "ServerRange", "StripeLayout"]
