"""The PVFS metadata manager.

A single daemon that owns the file namespace: creation, lookup (returning
the striping layout to clients at open time) and unlink.  Like PVFS, the
manager is *not* on the data path — clients talk to I/O daemons directly
after open — so its model stays deliberately small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator

from repro.errors import FileExists, FileNotFound, ProtocolError
from repro.hw.link import transfer
from repro.hw.node import Node
from repro.metrics import Metrics
from repro.pvfs import messages as msg
from repro.pvfs.layout import StripeLayout
from repro.sim.engine import Environment, Event
from repro.sim.resources import Store


@dataclass
class FileMeta:
    """What the manager knows about one PVFS file."""

    name: str
    layout: StripeLayout
    scheme: str
    size: int = 0  # logical EOF, maintained as clients complete writes


class Manager:
    """The metadata daemon."""

    def __init__(self, env: Environment, node: Node, metrics: Metrics,
                 layout: StripeLayout, scheme: str) -> None:
        self.env = env
        self.node = node
        self.metrics = metrics
        self.layout = layout
        self.scheme = scheme
        self.files: Dict[str, FileMeta] = {}
        self.inbox = Store(env)
        env.process(self._serve(), name="manager")

    def _serve(self) -> Generator[Event, Any, None]:
        while True:
            request, reply_nic, done = yield self.inbox.get()
            yield from self.node.cpu.request_processing()
            try:
                result = self._dispatch(request)
                error = None
            except (FileExists, FileNotFound, ProtocolError) as exc:
                result, error = None, exc
            yield from transfer(self.env, self.node.nic, reply_nic,
                                request.reply_size(), self.metrics)
            done.succeed(msg.MgrResponse(meta=result, error=error))

    def _dispatch(self, request) -> FileMeta | None:
        if isinstance(request, msg.MgrCreate):
            if request.name in self.files:
                raise FileExists(request.name)
            if request.scheme is not None:
                from repro.redundancy.base import SCHEMES

                if request.scheme not in SCHEMES:
                    raise ProtocolError(
                        f"unknown scheme {request.scheme!r}")
                if request.scheme in ("raid5", "hybrid") \
                        and self.layout.n < 2:
                    raise ProtocolError(
                        f"{request.scheme} needs at least 2 servers")
            meta = FileMeta(request.name, self.layout,
                            request.scheme or self.scheme)
            self.files[request.name] = meta
            return meta
        if isinstance(request, msg.MgrOpen):
            meta = self.files.get(request.name)
            if meta is None:
                raise FileNotFound(request.name)
            return meta
        if isinstance(request, msg.MgrUnlink):
            if request.name not in self.files:
                raise FileNotFound(request.name)
            del self.files[request.name]
            return None
        raise ProtocolError(f"manager: unknown request {request!r}")
