"""The PVFS metadata manager.

A single daemon that owns the file namespace: creation, lookup (returning
the striping layout to clients at open time) and unlink.  Like PVFS, the
manager is *not* on the data path — clients talk to I/O daemons directly
after open — so its model stays deliberately small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator

from repro.errors import FileExists, FileNotFound, ProtocolError
from repro.hw.link import transfer
from repro.hw.node import Node
from repro.metrics import Metrics
from repro.pvfs import messages as msg
from repro.pvfs.layout import StripeLayout
from repro.sim.engine import Environment, Event
from repro.sim.resources import Store


@dataclass
class FileMeta:
    """What the manager knows about one PVFS file."""

    name: str
    layout: StripeLayout
    scheme: str
    size: int = 0  # logical EOF, maintained as clients complete writes


class WriteLedger:
    """Cluster-wide registry of writes in flight.

    Every client write registers here (``begin``/``end``), so an online
    rebuild (:func:`repro.redundancy.recovery.rebuild_server`) can (a)
    learn which files were modified while it was copying them — its
    *watchers* get ``note_write(name)`` at write completion, when the
    survivors hold the settled bytes — and (b) wait for the cluster to
    quiesce before bringing the rebuilt server live, so no write that
    started while the server was down can complete after it rejoined
    (such a write skips the "failed" server and would leave it stale).
    """

    def __init__(self) -> None:
        self._active: Dict[int, str] = {}
        self._next = 0
        self._waiters: list = []
        #: rebuild trackers; each gets ``note_write(name)`` per completion
        self.watchers: list = []

    @property
    def active(self) -> int:
        """Number of client writes currently in flight."""
        return len(self._active)

    def begin(self, name: str) -> int:
        self._next += 1
        self._active[self._next] = name
        return self._next

    def end(self, token: int) -> None:
        name = self._active.pop(token)
        for watcher in list(self.watchers):
            watcher.note_write(name)
        if not self._active:
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                if not event.triggered:
                    event.succeed()

    def quiesce_event(self, env: Environment) -> Event:
        """An event that fires when no write is in flight."""
        event = env.event()
        if not self._active:
            event.succeed()
        else:
            self._waiters.append(event)
        return event


class Manager:
    """The metadata daemon."""

    def __init__(self, env: Environment, node: Node, metrics: Metrics,
                 layout: StripeLayout, scheme: str) -> None:
        self.env = env
        self.node = node
        self.metrics = metrics
        self.layout = layout
        self.scheme = scheme
        self.files: Dict[str, FileMeta] = {}
        self.write_ledger = WriteLedger()
        self.inbox = Store(env)
        env.process(self._serve(), name="manager")

    def _serve(self) -> Generator[Event, Any, None]:
        while True:
            request, reply_nic, done = yield self.inbox.get()
            yield from self.node.cpu.request_processing()
            try:
                result = self._dispatch(request)
                error = None
            except (FileExists, FileNotFound, ProtocolError) as exc:
                result, error = None, exc
            yield from transfer(self.env, self.node.nic, reply_nic,
                                request.reply_size(), self.metrics)
            done.succeed(msg.MgrResponse(meta=result, error=error))

    def _dispatch(self, request) -> FileMeta | None:
        if isinstance(request, msg.MgrCreate):
            if request.name in self.files:
                raise FileExists(request.name)
            if request.scheme is not None:
                from repro.redundancy.base import SCHEMES

                if request.scheme not in SCHEMES:
                    raise ProtocolError(
                        f"unknown scheme {request.scheme!r}")
                if request.scheme in ("raid5", "hybrid") \
                        and self.layout.n < 2:
                    raise ProtocolError(
                        f"{request.scheme} needs at least 2 servers")
            meta = FileMeta(request.name, self.layout,
                            request.scheme or self.scheme)
            self.files[request.name] = meta
            return meta
        if isinstance(request, msg.MgrOpen):
            meta = self.files.get(request.name)
            if meta is None:
                raise FileNotFound(request.name)
            return meta
        if isinstance(request, msg.MgrUnlink):
            if request.name not in self.files:
                raise FileNotFound(request.name)
            del self.files[request.name]
            return None
        raise ProtocolError(f"manager: unknown request {request!r}")
