"""Wire protocol between CSAR clients and I/O daemons.

Requests are typed dataclasses; ``wire_size()`` is the number of bytes the
message occupies on the network (a fixed header plus any payload).  The
manager protocol (create/open/unlink) uses its own small message types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.storage.payload import Payload

#: Fixed per-message header: request ids, file handle, offsets, flags.
HEADER = 64


@dataclass
class Request:
    """Base I/O daemon request."""

    file: str
    xid: int = field(default=0, kw_only=True)

    def wire_size(self) -> int:
        return HEADER

    def reply_size(self) -> int:
        return HEADER


@dataclass
class ReadReq(Request):
    """Read a contiguous local range of one of the file's local files.

    ``kind`` selects which local file: ``data`` (with Hybrid overflow
    resolution), ``red`` (mirror/parity file, used by recovery), ``ovf``
    or ``ovfm`` (overflow files, used by recovery).
    """

    kind: str = "data"
    offset: int = 0
    length: int = 0

    def reply_size(self) -> int:
        return HEADER + self.length


@dataclass
class WriteReq(Request):
    """Write a contiguous local range of the data or redundancy file.

    ``invalidate`` marks the written range as superseding any Hybrid
    overflow entries (set on full-stripe data writes).
    ``mirror_invalidate`` carries (origin, start, end) triples telling this
    server to drop overflow-*mirror* entries it holds on behalf of
    ``origin`` — piggybacked on Hybrid full-stripe writes so a failed
    origin's recovery never resurrects superseded overflow data.
    """

    kind: str = "data"
    offset: int = 0
    payload: Payload = field(default_factory=lambda: Payload.virtual(0))
    invalidate: bool = False
    mirror_invalidate: Tuple[Tuple[int, int, int], ...] = ()

    def wire_size(self) -> int:
        return HEADER + self.payload.length


@dataclass
class ParityReadReq(Request):
    """Read part of a parity block; acquires the block's lock (§5.1).

    ``intra`` is the byte range within the parity block; ``local_offset``
    locates the block in the server's redundancy file.  ``lock=False``
    skips the acquisition — used under strict whole-group locking, where
    the writer already holds the group lock.
    """

    group: int = 0
    local_offset: int = 0
    intra: Tuple[int, int] = (0, 0)
    lock: bool = True

    def reply_size(self) -> int:
        return HEADER + (self.intra[1] - self.intra[0])


@dataclass
class GroupLockReq(Request):
    """Strict-consistency extension (§5.1's closing remark): take the
    whole parity-group lock before any write touching the group."""

    group: int = 0


@dataclass
class GroupUnlockReq(Request):
    """Release a strict group lock taken by :class:`GroupLockReq`."""

    group: int = 0


@dataclass
class ParityWriteReq(Request):
    """Write part of a parity block.

    With ``unlock`` set (the read-modify-write path) the write releases
    the lock this xid acquired with its earlier :class:`ParityReadReq`.
    Full-stripe parity writes never locked, so they leave ``unlock``
    False.
    """

    group: int = 0
    local_offset: int = 0
    intra: Tuple[int, int] = (0, 0)
    payload: Payload = field(default_factory=lambda: Payload.virtual(0))
    unlock: bool = False

    def wire_size(self) -> int:
        return HEADER + self.payload.length


@dataclass
class OverflowWriteReq(Request):
    """Append updated byte ranges to an overflow region (Hybrid partials).

    ``ranges`` are (local_start, local_end) in data-file byte space; the
    payload is their concatenation.  With ``mirror`` set, the receiving
    server stores the copy in its overflow-mirror file on behalf of
    ``origin`` (the failed-server recovery source).
    """

    ranges: List[Tuple[int, int]] = field(default_factory=list)
    payload: Payload = field(default_factory=lambda: Payload.virtual(0))
    mirror: bool = False
    origin: int = -1

    def wire_size(self) -> int:
        return HEADER + self.payload.length


@dataclass
class MirrorResolveReq(Request):
    """Recovery read: resolve ``origin``'s overflow from this server's
    mirror table, returning the covered ranges and their latest bytes.

    Used when server ``origin`` has failed and its own overflow table is
    gone; the mirror on ``origin + 1`` is the authoritative surviving copy.
    """

    origin: int = -1
    offset: int = 0
    length: int = 0

    def reply_size(self) -> int:
        return HEADER + self.length


@dataclass
class FsyncReq(Request):
    """Flush one PVFS file's local files on this server."""


@dataclass
class TruncateOverflowReq(Request):
    """Drop the overflow region and table for one file (reclaimer)."""


@dataclass
class CompactOverflowReq(Request):
    """Rewrite the overflow region keeping only live bytes (reclaimer).

    Applied to both the server's own overflow table and any mirror tables
    it holds for this file; superseded and invalidated versions are
    dropped and the overflow files shrink to the live footprint.
    """


@dataclass
class Response:
    """Reply from an I/O daemon."""

    payload: Optional[Payload] = None
    error: Optional[Exception] = None
    #: bytes actually sourced from the overflow region (Hybrid reads)
    overflow_bytes: int = 0
    #: covered (start, end) ranges for MirrorResolveReq replies
    ranges: Tuple[Tuple[int, int], ...] = ()


@dataclass
class MgrResponse:
    """Reply from the metadata manager."""

    meta: object = None
    error: Optional[Exception] = None


# ---------------------------------------------------------------------------
# manager protocol
# ---------------------------------------------------------------------------
@dataclass
class MgrCreate:
    name: str
    #: per-file redundancy override (None = the deployment default) — an
    #: AutoRAID-flavoured extension: scratch data can run raid0 while
    #: checkpoints run hybrid, in one namespace
    scheme: Optional[str] = None

    def wire_size(self) -> int:
        return HEADER

    def reply_size(self) -> int:
        return HEADER


@dataclass
class MgrOpen:
    name: str

    def wire_size(self) -> int:
        return HEADER

    def reply_size(self) -> int:
        return HEADER + 64  # layout descriptor


@dataclass
class MgrUnlink:
    name: str

    def wire_size(self) -> int:
        return HEADER

    def reply_size(self) -> int:
        return HEADER
