"""The I/O daemon (iod): one storage server of the CSAR file system.

Per PVFS file ``f`` an iod keeps up to four local files:

* ``f.data`` — the PVFS-identical striped data;
* ``f.red``  — redundancy: the mirror copy (RAID1) or parity blocks (RAID5
  and Hybrid);
* ``f.ovf``  — Hybrid overflow region (appended partial-stripe data);
* ``f.ovfm`` — Hybrid overflow *mirror*, holding copies of the previous
  server's overflow appends.

The daemon runs a dispatch loop over an inbox; every request is handled in
its own simulation process so independent requests proceed concurrently
while the parity-lock table serializes conflicting read-modify-writes
(Section 5.1).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Tuple

from repro.errors import DiskFault, ProtocolError, ServerFailed
from repro.faults.injector import fault_step
from repro.hw.link import stream, transfer
from repro.hw.node import Node
from repro.metrics import Metrics
from repro.pvfs import messages as msg
from repro.redundancy.locks import ParityLockTable
from repro.redundancy.overflow import OverflowTable
from repro.sim.engine import Environment, Event, Interrupt
from repro.sim.resources import Store
from repro.storage.localfs import LocalFS
from repro.storage.payload import Payload


def data_file(name: str) -> str:
    return f"{name}.data"


def red_file(name: str) -> str:
    return f"{name}.red"


def ovf_file(name: str) -> str:
    return f"{name}.ovf"


def ovfm_file(name: str, origin: int) -> str:
    # One mirror file per origin server: two origins' slot offsets would
    # otherwise collide in a shared file.
    return f"{name}.ovfm{origin}"


class IOD:
    """One I/O daemon bound to one cluster node."""

    def __init__(self, env: Environment, index: int, node: Node,
                 metrics: Metrics, stripe_unit: int,
                 content_mode: bool = True,
                 write_buffering: bool = True, locking: bool = True) -> None:
        self.env = env
        self.index = index
        self.node = node
        self.metrics = metrics
        self.stripe_unit = stripe_unit
        self.fs = LocalFS(node, content_mode=content_mode,
                          write_buffering=write_buffering)
        self.fs.owner = index
        self.locks = ParityLockTable(env, enabled=locking)
        #: handler processes currently serving requests; a crash must
        #: error these out rather than let them run to a success reply
        self._inflight: set = set()
        #: Hybrid overflow tables: file -> table
        self.overflow: Dict[str, OverflowTable] = {}
        #: overflow mirror tables: (file, origin server) -> table
        self.overflow_mirror: Dict[Tuple[str, int], OverflowTable] = {}
        self.inbox = Store(env)
        self.failed = False
        #: an online rebuild is staging this server's state; an injected
        #: restart must not flip ``failed`` back mid-rebuild
        self.rebuilding = False
        self._server_proc = env.process(self._serve(), name=f"iod{index}")

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Fail-stop this server; requests are rejected until repair.

        A crash must not wedge the cluster: every in-flight handler is
        errored out (its client sees the connection drop as
        :class:`ServerFailed` instead of waiting forever), and the
        parity-lock table is crashed — held locks are forgotten with
        the sanitizer notified, queued waiters are woken by their
        handler's interrupt and cancel themselves — so no other
        client's read-modify-write can stay stuck in the FIFO queue
        behind a dead lock holder.
        """
        self.failed = True
        active = self.env.active_process
        for proc in list(self._inflight):
            # The crash may be triggered synchronously from inside one
            # of our own handlers (disk error, torn write, an injected
            # protocol-step fault): that handler aborts itself by
            # raising, and a process cannot interrupt itself anyway.
            if proc is not active and proc.is_alive:
                proc.interrupt(ServerFailed(f"iod{self.index} crashed"))
        self.locks.crash()

    def repair(self, wipe: bool = True) -> None:
        """Bring the server back, optionally with a fresh (empty) disk."""
        if wipe:
            self.fs.files.clear()
            self.overflow.clear()
            self.overflow_mirror.clear()
        self.failed = False

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------
    def _serve(self) -> Generator[Event, Any, None]:
        while True:
            envelope = yield self.inbox.get()
            proc = self.env.process(self._handle(envelope),
                                    name=f"iod{self.index}.handler")
            if proc.is_alive:
                self._inflight.add(proc)
                proc.callbacks.append(self._retire)

    def _retire(self, proc) -> None:
        self._inflight.discard(proc)

    def _handle(self, envelope) -> Generator[Event, Any, None]:
        request, reply_nic, done = envelope
        try:
            if self.failed:
                response = msg.Response(error=ServerFailed(
                    f"iod{self.index} is failed"))
            else:
                yield from self.node.cpu.request_processing()
                try:
                    response = yield from self._dispatch(request)
                except (ProtocolError, ValueError, ServerFailed) as exc:
                    response = msg.Response(error=exc)
                except DiskFault as exc:
                    # EIO is fatal (the injector panicked us already);
                    # the request that hit it reports the crash.
                    response = msg.Response(error=ServerFailed(str(exc)))
            reply_bytes = (request.reply_size() if response.error is None
                           else msg.HEADER)
            if reply_bytes > msg.HEADER:
                # Data-bearing reply: per-byte send cost overlaps the wire.
                yield from stream(self.env, self.node.nic, reply_nic,
                                  reply_bytes, self.metrics,
                                  cpu=self.node.cpu, cpu_at="src")
            else:
                yield from transfer(self.env, self.node.nic, reply_nic,
                                    reply_bytes, self.metrics)
            done.succeed(response)
        except Interrupt:
            # The daemon crashed under this request: the client sees the
            # connection drop immediately rather than waiting forever.
            if not done.triggered:
                done.succeed(msg.Response(error=ServerFailed(
                    f"iod{self.index} crashed mid-request")))

    def _dispatch(self, request: msg.Request,
                  ) -> Generator[Event, Any, msg.Response]:
        if isinstance(request, msg.ReadReq):
            return (yield from self._read(request))
        if isinstance(request, msg.WriteReq):
            return (yield from self._write(request))
        if isinstance(request, msg.ParityReadReq):
            return (yield from self._parity_read(request))
        if isinstance(request, msg.GroupLockReq):
            # The release arrives as a separate GroupUnlockReq message;
            # the lock is protocol-carried, not scoped to this handler.
            yield from self.locks.acquire(  # csar-lint: disable=CSAR001,CSAR008
                request.file, request.group, request.xid)
            return msg.Response()
        if isinstance(request, msg.GroupUnlockReq):
            self.locks.release(request.file, request.group, request.xid)
            return msg.Response()
        if isinstance(request, msg.ParityWriteReq):
            return (yield from self._parity_write(request))
        if isinstance(request, msg.OverflowWriteReq):
            return (yield from self._overflow_write(request))
        if isinstance(request, msg.MirrorResolveReq):
            return (yield from self._mirror_resolve(request))
        if isinstance(request, msg.FsyncReq):
            return (yield from self._fsync(request))
        if isinstance(request, msg.TruncateOverflowReq):
            return self._truncate_overflow(request)
        if isinstance(request, msg.CompactOverflowReq):
            return (yield from self._compact_overflow(request))
        raise ProtocolError(f"iod{self.index}: unknown request {request!r}")

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    _KIND_FILES = {
        "data": data_file, "red": red_file, "ovf": ovf_file,
    }

    def _local_name(self, request: msg.Request, kind: str) -> str:
        try:
            return self._KIND_FILES[kind](request.file)
        except KeyError:
            raise ProtocolError(f"unknown file kind {kind!r}") from None

    def _read(self, request: msg.ReadReq,
              ) -> Generator[Event, Any, msg.Response]:
        kind = "data" if request.kind == "inplace" else request.kind
        name = self._local_name(request, kind)
        start, length = request.offset, request.length
        if request.kind != "data":
            # "inplace" bypasses overflow resolution: parity always covers
            # the in-place data, so reconstruction must read it raw.
            payload = yield from self.fs.read(name, start, length)
            return msg.Response(payload=payload)
        table = self.overflow.get(request.file)
        if table is None or not table.covered.overlap(start, start + length):
            payload = yield from self.fs.read(name, start, length)
            return msg.Response(payload=payload)
        # Hybrid resolution: latest copy may live in the overflow region.
        data_parts, ovf_reads = table.resolve(start, start + length)
        base = Payload.sparse(length) if self.fs.content_mode \
            else Payload.virtual(length)
        for part in data_parts:
            piece = yield from self.fs.read(name, part.start, part.length)
            base = base.overlay(part.start - start, piece)
        ovf_bytes = 0
        oname = ovf_file(request.file)
        for item in ovf_reads:
            piece = yield from self.fs.read(oname, item.ovf_offset,
                                            item.length)
            base = base.overlay(item.local_start - start, piece)
            ovf_bytes += item.length
        self.metrics.add("hybrid.overflow_read_bytes", ovf_bytes)
        return msg.Response(payload=base.slice(0, length),
                            overflow_bytes=ovf_bytes)

    def _write(self, request: msg.WriteReq,
               ) -> Generator[Event, Any, msg.Response]:
        name = self._local_name(request, request.kind)
        yield from self.fs.write(name, request.offset, request.payload)
        if request.invalidate and request.kind == "data":
            table = self.overflow.get(request.file)
            if table is not None:
                table.invalidate(request.offset,
                                 request.offset + request.payload.length)
        for origin, start, end in request.mirror_invalidate:
            mtable = self.overflow_mirror.get((request.file, origin))
            if mtable is not None:
                mtable.invalidate(start, end)
        return msg.Response()

    def _parity_read(self, request: msg.ParityReadReq,
                     ) -> Generator[Event, Any, msg.Response]:
        if request.lock:
            # Section 5.1: the parity *read* acquires and the matching
            # parity *write* (a later message) releases — the lock rides
            # the data path across handler processes by design.
            yield from self.locks.acquire(  # csar-lint: disable=CSAR001
                request.file, request.group, request.xid)
        lo, hi = request.intra
        payload = yield from self.fs.read(red_file(request.file),
                                          request.local_offset + lo, hi - lo)
        return msg.Response(payload=payload)

    def _parity_write(self, request: msg.ParityWriteReq,
                      ) -> Generator[Event, Any, msg.Response]:
        lo, hi = request.intra
        if request.payload.length != hi - lo:
            raise ProtocolError("parity payload does not match intra range")
        yield from self.fs.write(red_file(request.file),
                                 request.local_offset + lo, request.payload)
        if request.unlock:
            self.locks.release(request.file, request.group, request.xid)
        return msg.Response()

    def _overflow_write(self, request: msg.OverflowWriteReq,
                        ) -> Generator[Event, Any, msg.Response]:
        expected = sum(end - start for start, end in request.ranges)
        if expected != request.payload.length:
            raise ProtocolError("overflow ranges do not match payload size")
        if request.mirror:
            key = (request.file, request.origin)
            table = self.overflow_mirror.get(key)
            if table is None:
                table = self.overflow_mirror[key] = \
                    OverflowTable(self.stripe_unit)
            name = ovfm_file(request.file, request.origin)
        else:
            table = self.overflow.get(request.file)
            if table is None:
                table = self.overflow[request.file] = \
                    OverflowTable(self.stripe_unit)
            name = ovf_file(request.file)
        # Named crash points for the fault matrix: a failure here leaves
        # the overflow append torn between the table and its mirror.
        fault_step(self.env, "iod.overflow.before_append", self.index)
        if self.failed:
            raise ServerFailed(f"iod{self.index} crashed")
        cursor = 0
        parts = []
        for start, end in request.ranges:
            for piece in table.append(start, end):
                parts.append((piece.ovf_offset, request.payload.slice(
                    cursor + piece.local_start - start,
                    cursor + piece.local_end - start)))
            cursor += end - start
        # One vectored local write: the scattered append slots charge the
        # cache in a single pass and the slices land without flattening.
        yield from self.fs.write_gather(name, parts)
        fault_step(self.env, "iod.overflow.after_append", self.index)
        if self.failed:
            raise ServerFailed(f"iod{self.index} crashed")
        self.metrics.add("hybrid.overflow_write_bytes", cursor)
        return msg.Response()

    def _mirror_resolve(self, request: msg.MirrorResolveReq,
                        ) -> Generator[Event, Any, msg.Response]:
        start, end = request.offset, request.offset + request.length
        table = self.overflow_mirror.get((request.file, request.origin))
        if table is None:
            payload = (Payload.sparse(request.length) if self.fs.content_mode
                       else Payload.virtual(request.length))
            return msg.Response(payload=payload, ranges=())
        _gaps, reads = table.resolve(start, end)
        base = (Payload.sparse(request.length) if self.fs.content_mode
                else Payload.virtual(request.length))
        name = ovfm_file(request.file, request.origin)
        covered = []
        for item in reads:
            piece = yield from self.fs.read(name, item.ovf_offset, item.length)
            base = base.overlay(item.local_start - start, piece)
            covered.append((item.local_start, item.local_start + item.length))
        return msg.Response(payload=base.slice(0, request.length),
                            ranges=tuple(sorted(covered)))

    def _fsync(self, request: msg.FsyncReq,
               ) -> Generator[Event, Any, msg.Response]:
        for name in self._local_files(request.file):
            yield from self.fs.fsync(name)
        return msg.Response()

    def _local_files(self, file: str) -> list:
        """Every existing local file backing one PVFS file."""
        prefixes = (data_file(file), red_file(file), ovf_file(file),
                    f"{file}.ovfm")
        return [name for name in self.fs.files
                if name in prefixes[:3] or name.startswith(prefixes[3])]

    def _compact_overflow(self, request: msg.CompactOverflowReq,
                          ) -> Generator[Event, Any, msg.Response]:
        table = self.overflow.get(request.file)
        if table is not None:
            yield from self._compact_one(table, ovf_file(request.file))
        for (fname, origin), mtable in self.overflow_mirror.items():
            if fname == request.file:
                yield from self._compact_one(
                    mtable, ovfm_file(request.file, origin))
        return msg.Response()

    def _compact_one(self, table: OverflowTable,
                     name: str) -> Generator[Event, Any, None]:
        """Rewrite one overflow file keeping only the live (latest) bytes."""
        live = []
        for ext in table.covered:
            _gaps, reads = table.resolve(ext.start, ext.end)
            content = (Payload.sparse(ext.length) if self.fs.content_mode
                       else Payload.virtual(ext.length))
            for item in reads:
                piece = yield from self.fs.read(name, item.ovf_offset,
                                                item.length)
                content = content.overlay(item.local_start - ext.start, piece)
            live.append((ext.start, ext.end, content))
        table.truncate()
        if self.fs.exists(name):
            self.fs.files[name].truncate()
        for start, end, content in live:
            for piece in table.append(start, end):
                yield from self.fs.write(
                    name, piece.ovf_offset,
                    content.slice(piece.local_start - start,
                                  piece.local_end - start))
        self.metrics.add("hybrid.compactions")

    def _truncate_overflow(self, request: msg.TruncateOverflowReq,
                           ) -> msg.Response:
        table = self.overflow.get(request.file)
        if table is not None:
            table.truncate()
        names = [ovf_file(request.file)]
        for (fname, origin), mtable in self.overflow_mirror.items():
            if fname == request.file:
                mtable.truncate()
                names.append(ovfm_file(request.file, origin))
        for name in names:
            if self.fs.exists(name):
                self.fs.files[name].truncate()
        return msg.Response()

    # ------------------------------------------------------------------
    # storage accounting (Table 2)
    # ------------------------------------------------------------------
    def storage_of(self, file: str) -> Dict[str, int]:
        """Local file sizes for one PVFS file."""
        out = {}
        for kind, maker in self._KIND_FILES.items():
            name = maker(file)
            out[kind] = self.fs.files[name].size if self.fs.exists(name) else 0
        out["ovfm"] = sum(
            f.size for name, f in self.fs.files.items()
            if name.startswith(f"{file}.ovfm"))
        return out
