"""Striping and parity-placement arithmetic.

PVFS stripes a file round-robin over ``n`` I/O servers in units of
``stripe_unit`` bytes: logical block ``b`` lives on server ``b % n`` at
local-file offset ``(b // n) * stripe_unit``.  Consecutive blocks held by
one server are therefore consecutive in its local file, so any contiguous
logical range maps to exactly one contiguous local range per server.

RAID5 parity groups (Figure 2 of the paper): group ``g`` covers the
``n - 1`` consecutive data blocks ``[g*(n-1), (g+1)*(n-1))``; those blocks
occupy ``n - 1`` distinct servers, and the parity block is stored on the
one server holding none of them — ``(n - 1 - g) mod n`` — in that server's
redundancy file, packed densely (the ``j``-th parity block a server holds
sits at local offset ``j * stripe_unit``, with ``j = g // n``).

With the paper's 6 I/O servers this gives 5 data blocks per stripe
(Section 5.1's microbenchmark) and a 20% parity overhead (Table 2's
RAID5 = 1.2x RAID0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError


@dataclass(frozen=True)
class Piece:
    """One stripe-unit-contained fragment of a logical range."""

    server: int
    logical_offset: int
    local_offset: int
    length: int


@dataclass(frozen=True)
class ServerRange:
    """A server's single contiguous share of a logical range."""

    server: int
    local_start: int
    local_end: int
    pieces: tuple  # tuple[Piece, ...] in ascending logical order

    @property
    def length(self) -> int:
        return self.local_end - self.local_start


class StripeLayout:
    """Round-robin striping plus RAID5 group geometry."""

    def __init__(self, stripe_unit: int, num_servers: int) -> None:
        if stripe_unit <= 0:
            raise ConfigError(f"stripe unit must be positive, got {stripe_unit}")
        if num_servers < 1:
            raise ConfigError(f"need at least one server, got {num_servers}")
        self.unit = stripe_unit
        self.n = num_servers

    # ------------------------------------------------------------------
    # plain striping
    # ------------------------------------------------------------------
    def block_of(self, offset: int) -> int:
        return offset // self.unit

    def server_of_block(self, block: int) -> int:
        return block % self.n

    def local_offset_of_block(self, block: int) -> int:
        return (block // self.n) * self.unit

    def logical_of_local(self, server: int, local_offset: int) -> int:
        """Inverse map: a server-local byte back to its logical offset."""
        row, intra = divmod(local_offset, self.unit)
        return (row * self.n + server) * self.unit + intra

    def pieces(self, offset: int, length: int) -> List[Piece]:
        """Unit-grain fragments of ``[offset, offset+length)``."""
        out: List[Piece] = []
        cursor = offset
        end = offset + length
        while cursor < end:
            block = cursor // self.unit
            intra = cursor - block * self.unit
            take = min(self.unit - intra, end - cursor)
            out.append(Piece(
                server=self.server_of_block(block),
                logical_offset=cursor,
                local_offset=self.local_offset_of_block(block) + intra,
                length=take,
            ))
            cursor += take
        return out

    def map_range(self, offset: int, length: int) -> List[ServerRange]:
        """Per-server contiguous shares of a logical range.

        Sorted by server id; each server appears at most once because its
        fragments are consecutive in its local file.
        """
        by_server: dict[int, List[Piece]] = {}
        for piece in self.pieces(offset, length):
            by_server.setdefault(piece.server, []).append(piece)
        out: List[ServerRange] = []
        for server in sorted(by_server):
            plist = by_server[server]
            local_start = plist[0].local_offset
            local_end = plist[-1].local_offset + plist[-1].length
            if local_end - local_start != sum(p.length for p in plist):
                raise AssertionError(
                    "per-server fragments not contiguous — layout bug")
            out.append(ServerRange(server, local_start, local_end,
                                   tuple(plist)))
        return out

    # ------------------------------------------------------------------
    # RAID5 parity-group geometry
    # ------------------------------------------------------------------
    @property
    def group_width(self) -> int:
        """Data blocks per parity group (``n - 1``)."""
        if self.n < 2:
            raise ConfigError("RAID5 geometry needs at least 2 servers")
        return self.n - 1

    @property
    def group_span(self) -> int:
        """Logical bytes per parity group."""
        return self.group_width * self.unit

    def group_of(self, offset: int) -> int:
        return offset // self.group_span

    def group_range(self, group: int) -> tuple[int, int]:
        return group * self.group_span, (group + 1) * self.group_span

    def blocks_of_group(self, group: int) -> range:
        return range(group * self.group_width, (group + 1) * self.group_width)

    def parity_server(self, group: int) -> int:
        return (self.n - 1 - group) % self.n

    def parity_local_offset(self, group: int) -> int:
        return (group // self.n) * self.unit

    def split_by_groups(self, offset: int, length: int,
                        ) -> tuple[tuple[int, int], tuple[int, int], tuple[int, int]]:
        """Split a range into (head partial, full groups, tail partial).

        Each part is a half-open ``(start, end)``; empty parts have
        ``start == end``.  This is the Hybrid scheme's three-way write
        decomposition from Section 4; head and tail each lie within a
        single group (a contiguous write touches at most two partial
        stripes, Section 5.1).
        """
        end = offset + length
        span = self.group_span
        first_full = -(-offset // span) * span   # round up
        last_full = (end // span) * span          # round down
        if first_full < last_full:
            return ((offset, first_full),
                    (first_full, last_full),
                    (last_full, end))
        if offset < first_full < end:
            # Crosses exactly one group boundary with no full group:
            # two partial stripes, no full part.
            return (offset, first_full), (first_full, first_full), (first_full, end)
        # Entirely within one group.
        return (offset, end), (end, end), (end, end)
