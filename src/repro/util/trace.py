"""I/O trace capture and replay.

Records every client read/write (simulated timestamp, client, file,
offset, length) so an application's access pattern can be inspected,
characterized the way Section 6.6/6.7 characterizes FLASH and
Hartree-Fock ("46% of requests under 2 KB", "most write requests of size
16K"), saved to a portable JSON-lines file, and replayed against a
different configuration — e.g. captured under RAID0, replayed under every
redundancy scheme.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Generator, Iterable, List, TextIO

from repro.errors import ConfigError
from repro.storage.payload import Payload


@dataclass(frozen=True)
class TraceRecord:
    """One client I/O operation."""

    time: float
    client: int
    op: str           # "write" | "read"
    file: str
    offset: int
    length: int


class Trace:
    """An ordered collection of I/O records."""

    def __init__(self, records: Iterable[TraceRecord] = ()) -> None:
        self.records: List[TraceRecord] = list(records)

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # persistence (JSON lines)
    # ------------------------------------------------------------------
    def dump(self, fp: TextIO) -> None:
        for record in self.records:
            fp.write(json.dumps(asdict(record)) + "\n")

    @classmethod
    def load(cls, fp: TextIO) -> "Trace":
        trace = cls()
        for line in fp:
            line = line.strip()
            if line:
                trace.append(TraceRecord(**json.loads(line)))
        return trace

    # ------------------------------------------------------------------
    # characterization (the paper's workload descriptions)
    # ------------------------------------------------------------------
    def stats(self, op: str = "write") -> Dict[str, Any]:
        """Request-size statistics for one operation type."""
        sizes = sorted(r.length for r in self.records if r.op == op)
        if not sizes:
            return {"count": 0, "bytes": 0}
        total = sum(sizes)
        return {
            "count": len(sizes),
            "bytes": total,
            "min": sizes[0],
            "median": sizes[len(sizes) // 2],
            "max": sizes[-1],
            "mean": total / len(sizes),
            "small_fraction_2k": sum(1 for s in sizes if s < 2048)
            / len(sizes),
        }

    def files(self) -> List[str]:
        seen: List[str] = []
        for r in self.records:
            if r.file not in seen:
                seen.append(r.file)
        return seen

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self, system, preserve_timing: bool = False,
               ) -> Generator[Any, Any, None]:
        """Process body: re-issue the trace against ``system``.

        Operations replay per client in record order (clients run
        concurrently, as they did at capture).  With ``preserve_timing``
        each client also waits out the recorded inter-arrival gaps —
        reproducing the original burstiness instead of running closed
        loop.  Payloads are virtual (a trace carries no data).
        """
        per_client: Dict[int, List[TraceRecord]] = {}
        for record in self.records:
            per_client.setdefault(record.client, []).append(record)
        for index in per_client:
            if index >= len(system.clients):
                raise ConfigError(
                    f"trace references client {index}; system has "
                    f"{len(system.clients)}")

        from repro.workloads.base import ensure_file

        def prepare():
            for name in self.files():
                yield from ensure_file(system.client(0), name)

        def client_proc(index: int, records: List[TraceRecord]):
            client = system.clients[index]
            start = system.env.now
            first = records[0].time if records else 0.0
            for record in records:
                if preserve_timing:
                    due = start + (record.time - first)
                    if due > system.env.now:
                        yield system.env.timeout(due - system.env.now)
                yield from client.open(record.file)
                if record.op == "write":
                    yield from client.write(record.file, record.offset,
                                            Payload.virtual(record.length))
                elif record.op == "read":
                    yield from client.read(record.file, record.offset,
                                           record.length)
                else:
                    raise ConfigError(f"unknown trace op {record.op!r}")

        yield system.env.process(prepare(), name="trace.prepare")
        procs = [system.env.process(client_proc(i, recs),
                                    name=f"trace.client{i}")
                 for i, recs in per_client.items()]
        if procs:
            yield system.env.all_of(procs)


class TraceRecorder:
    """Attach to a :class:`~repro.csar.system.System` to capture a trace.

    ::

        recorder = TraceRecorder(system)
        ... run workload ...
        trace = recorder.trace
    """

    def __init__(self, system) -> None:
        self.system = system
        self.trace = Trace()
        for client in system.clients:
            client.tracer = self

    def record(self, client: int, op: str, file: str, offset: int,
               length: int) -> None:
        self.trace.append(TraceRecord(
            time=self.system.env.now, client=client, op=op, file=file,
            offset=offset, length=length))

    def detach(self) -> Trace:
        for client in self.system.clients:
            client.tracer = None
        return self.trace
