"""XOR parity kernels.

The Swift/RAID paper (and Section 3 of the CSAR paper) report that computing
parity one machine word at a time instead of one byte at a time was a large
win; CSAR inherited that lesson.  We provide both kernels:

* :func:`xor_bytes` — word-at-a-time, implemented as a vectorized numpy XOR
  over a ``uint64`` view when alignment permits (the production kernel);
* :func:`xor_bytes_bytewise` — a deliberately naive pure-Python byte loop,
  kept for the ablation benchmark that reproduces the Swift observation.

Both operate on ``bytes``-like inputs and return ``bytes``.  Inputs of
unequal length are XOR-ed as if the shorter ones were zero-padded, which is
exactly the semantics RAID5 needs when the trailing blocks of a stripe are
shorter than the stripe unit (end of file).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def _as_u8(buf: bytes | bytearray | memoryview | np.ndarray) -> np.ndarray:
    if isinstance(buf, np.ndarray):
        if buf.dtype != np.uint8:
            raise TypeError("ndarray payloads must be uint8")
        return buf
    return np.frombuffer(buf, dtype=np.uint8)


def xor_into(acc: np.ndarray, buf: bytes | bytearray | memoryview | np.ndarray) -> None:
    """XOR ``buf`` into the first ``len(buf)`` bytes of ``acc`` in place.

    ``acc`` must be a writable uint8 array at least as long as ``buf``.
    The in-place update avoids one copy per block, which matters when
    computing parity over wide stripes (see the hpc guide on in-place ops).
    """
    other = _as_u8(buf)
    if other.size > acc.size:
        raise ValueError("accumulator shorter than operand")
    np.bitwise_xor(acc[: other.size], other, out=acc[: other.size])


def xor_into_at(acc: np.ndarray, at: int,
                buf: bytes | bytearray | memoryview | np.ndarray) -> None:
    """XOR ``buf`` into ``acc[at : at+len(buf)]`` in place.

    The strided companion of :func:`xor_into`: segment lists from a
    scatter-gather payload fold straight into one accumulator, so RMW
    parity deltas and stripe parity never build intermediate buffers.
    """
    other = _as_u8(buf)
    if at < 0 or at + other.size > acc.size:
        raise ValueError(
            f"xor region [{at}, +{other.size}) outside accumulator "
            f"of {acc.size}")
    np.bitwise_xor(acc[at: at + other.size], other,
                   out=acc[at: at + other.size])


def xor_segments(parts: Iterable[Iterable[tuple[int, np.ndarray]]],
                 length: int) -> np.ndarray:
    """Fold ``(offset, uint8-array)`` segment lists into fresh parity.

    Each element of ``parts`` is one operand's segment list (uncovered
    gaps are zeros, contributing nothing to the XOR); segments past
    ``length`` are clipped, shorter operands are zero-padded — the same
    end-of-stripe semantics as :func:`xor_bytes`, without flattening any
    operand first.
    """
    acc = np.zeros(length, dtype=np.uint8)
    for segments in parts:
        for at, seg in segments:
            if at >= length:
                continue
            if at + seg.size > length:
                seg = seg[: length - at]
            xor_into_at(acc, at, seg)
    return acc


def xor_bytes(blocks: Iterable[bytes | bytearray | memoryview | np.ndarray],
              length: int | None = None) -> bytes:
    """Word-at-a-time XOR of all ``blocks``; result length is the maximum
    block length (or ``length`` when given, zero-padding shorter blocks).

    An empty iterable with no explicit ``length`` yields ``b""``.
    """
    blocks = list(blocks)
    if length is None:
        length = max((len(_as_u8(b)) for b in blocks), default=0)
    acc = np.zeros(length, dtype=np.uint8)
    for block in blocks:
        arr = _as_u8(block)
        if arr.size > length:
            arr = arr[:length]
        xor_into(acc, arr)
    return acc.tobytes()


def xor_bytes_bytewise(blocks: Sequence[bytes], length: int | None = None) -> bytes:
    """Byte-at-a-time XOR — the slow kernel Swift/RAID warned about.

    Only used by the parity-kernel ablation benchmark; semantics are
    identical to :func:`xor_bytes`.
    """
    blocks = list(blocks)
    if length is None:
        length = max((len(b) for b in blocks), default=0)
    acc = bytearray(length)
    for block in blocks:
        for i, byte in enumerate(block[:length]):
            acc[i] ^= byte
    return bytes(acc)


def parity_of_stripe(data_blocks: Sequence[bytes], stripe_unit: int) -> bytes:
    """Parity block for one RAID5 stripe.

    ``data_blocks`` are the (up to ``n-1``) data blocks of the stripe, each
    at most ``stripe_unit`` bytes; the parity block is always a full
    ``stripe_unit`` long so a later partial update can XOR against it
    without length bookkeeping.
    """
    for b in data_blocks:
        if len(b) > stripe_unit:
            raise ValueError("data block longer than stripe unit")
    return xor_bytes(data_blocks, length=stripe_unit)
