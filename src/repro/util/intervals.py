"""Half-open byte-range arithmetic.

Sparse files, page-cache residency, overflow tables and storage accounting
all need the same primitive: a set of non-overlapping, half-open intervals
``[start, end)`` over file offsets, with union/difference/intersection and
coverage queries.  :class:`ExtentMap` keeps the intervals sorted and merged
and offers those operations in ``O(log n + k)`` per call (``k`` = touched
intervals), which is what makes extent-mode simulation of multi-gigabyte
benchmark files cheap.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple


@dataclass(frozen=True, order=True)
class Extent:
    """A half-open byte range ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid extent [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def is_empty(self) -> bool:
        return self.end == self.start

    def contains(self, offset: int) -> bool:
        return self.start <= offset < self.end

    def overlaps(self, other: "Extent") -> bool:
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "Extent") -> "Extent":
        """The overlapping part of two extents (possibly empty)."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end < start:
            return Extent(start, start)
        return Extent(start, end)

    def shift(self, delta: int) -> "Extent":
        return Extent(self.start + delta, self.end + delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start},{self.end})"


class ExtentMap:
    """A mutable, always-merged set of disjoint half-open intervals.

    Internally two parallel lists of starts and ends, sorted ascending,
    with adjacent intervals coalesced (``[0,4)`` + ``[4,8)`` = ``[0,8)``).
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, extents: Iterable[Tuple[int, int]] = ()) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        for start, end in extents:
            self.add(start, end)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, start: int, end: int) -> None:
        """Union ``[start, end)`` into the map."""
        if end < start:
            raise ValueError(f"invalid extent [{start}, {end})")
        if end == start:
            return
        # All intervals with end >= start can merge on the left; all with
        # start <= end can merge on the right.
        lo = bisect_left(self._ends, start)
        hi = bisect_right(self._starts, end)
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        self._starts[lo:hi] = [start]
        self._ends[lo:hi] = [end]

    def remove(self, start: int, end: int) -> None:
        """Difference: delete ``[start, end)`` from the map."""
        if end < start:
            raise ValueError(f"invalid extent [{start}, {end})")
        if end == start or not self._starts:
            return
        lo = bisect_right(self._ends, start)
        hi = bisect_left(self._starts, end)
        if lo >= hi:
            return
        replacement_starts: List[int] = []
        replacement_ends: List[int] = []
        if self._starts[lo] < start:
            replacement_starts.append(self._starts[lo])
            replacement_ends.append(start)
        if self._ends[hi - 1] > end:
            replacement_starts.append(end)
            replacement_ends.append(self._ends[hi - 1])
        self._starts[lo:hi] = replacement_starts
        self._ends[lo:hi] = replacement_ends

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Extent]:
        for start, end in zip(self._starts, self._ends):
            yield Extent(start, end)

    def iter_tuples(self) -> Iterator[Tuple[int, int]]:
        """All intervals as ``(start, end)`` tuples, in order.

        The allocation-free counterpart of ``__iter__`` for hot paths
        (no :class:`Extent` dataclass per interval).
        """
        return zip(self._starts, self._ends)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtentMap):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ExtentMap(" + ", ".join(map(repr, self)) + ")"

    def total(self) -> int:
        """Total number of bytes covered."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def max_end(self) -> int:
        """End of the last interval, or 0 when empty (sparse file size)."""
        return self._ends[-1] if self._ends else 0

    def contains(self, start: int, end: int) -> bool:
        """True when ``[start, end)`` is fully covered."""
        if end <= start:
            return True
        i = bisect_right(self._starts, start) - 1
        return i >= 0 and self._ends[i] >= end

    def contains_offset(self, offset: int) -> bool:
        i = bisect_right(self._starts, offset) - 1
        return i >= 0 and self._ends[i] > offset

    def overlap_iter(self, start: int, end: int) -> Iterator[Tuple[int, int]]:
        """Covered sub-ranges of ``[start, end)`` as ``(s, e)`` tuples.

        The batched, allocation-free form of :meth:`overlap`: one bisect
        up front, then a plain index walk — no list and no
        :class:`Extent` objects, which is what keeps extent-mode Class C
        runs cheap.
        """
        if end <= start:
            return
        starts = self._starts
        ends = self._ends
        n = len(starts)
        i = bisect_right(ends, start)
        while i < n and starts[i] < end:
            s = starts[i]
            if s < start:
                s = start
            e = ends[i]
            if e > end:
                e = end
            if e > s:
                yield (s, e)
            i += 1

    def gaps_iter(self, start: int, end: int) -> Iterator[Tuple[int, int]]:
        """Uncovered sub-ranges of ``[start, end)`` as ``(s, e)`` tuples."""
        cursor = start
        for s, e in self.overlap_iter(start, end):
            if s > cursor:
                yield (cursor, s)
            cursor = e
        if cursor < end:
            yield (cursor, end)

    def overlap_len(self, start: int, end: int) -> int:
        """Total covered bytes in ``[start, end)`` without materializing
        anything — the hot query of the page cache's bookkeeping."""
        total = 0
        for s, e in self.overlap_iter(start, end):
            total += e - s
        return total

    def overlap(self, start: int, end: int) -> List[Extent]:
        """Covered sub-ranges of ``[start, end)``, in order."""
        return [Extent(s, e) for s, e in self.overlap_iter(start, end)]

    def gaps(self, start: int, end: int) -> List[Extent]:
        """Uncovered sub-ranges of ``[start, end)``, in order."""
        return [Extent(s, e) for s, e in self.gaps_iter(start, end)]

    def copy(self) -> "ExtentMap":
        dup = ExtentMap()
        dup._starts = list(self._starts)
        dup._ends = list(self._ends)
        return dup
