"""Small supporting utilities: interval arithmetic, parity kernels, tables."""

from repro.util.intervals import Extent, ExtentMap
from repro.util.parity import xor_bytes, xor_bytes_bytewise, xor_into

__all__ = [
    "Extent",
    "ExtentMap",
    "xor_bytes",
    "xor_bytes_bytewise",
    "xor_into",
]
