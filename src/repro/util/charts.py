"""Terminal charts for the reproduced figures.

The paper's artifacts are *plots*; this module renders
:class:`~repro.experiments.base.ExpTable` results as Unicode charts so
``python -m repro run fig4a --chart`` shows the curve shapes directly,
with no plotting dependencies.

Two forms, chosen the way the paper's figures are drawn:

* :func:`line_chart` — numeric x-axis (iods, process count, year) with
  one series per scheme: Figures 1, 4, 5, 6, 7;
* :func:`bar_chart` — categorical rows (configs, applications):
  Figures 3, 8, the ablations and Table 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: distinct per-series glyphs, in column order
MARKERS = "ox+*#@%&"
BAR = "█"
HALF = "▌"


def _fmt(value: float) -> str:
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.1f}"
    return f"{value:.2f}"


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: str = "", width: int = 50,
              unit: str = "") -> str:
    """Horizontal bars, one per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must pair up")
    if not labels:
        return title
    peak = max(max(values), 1e-12)
    label_w = max(len(str(lab)) for lab in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = value / peak * width
        bar = BAR * int(filled)
        if filled - int(filled) >= 0.5:
            bar += HALF
        lines.append(f"{str(label).rjust(label_w)} |{bar.ljust(width)} "
                     f"{_fmt(value)}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(rows: Sequence[str], series: Dict[str, Sequence[float]],
                      title: str = "", width: int = 40,
                      unit: str = "") -> str:
    """One bar per (row, series) pair, grouped by row — Figure 8 style."""
    lines = [title] if title else []
    peak = max((max(vals) for vals in series.values() if len(vals)),
               default=1e-12)
    peak = max(peak, 1e-12)
    name_w = max(len(name) for name in series)
    for i, row in enumerate(rows):
        lines.append(f"{row}:")
        for name, vals in series.items():
            value = vals[i]
            bar = BAR * int(value / peak * width)
            lines.append(f"  {name.rjust(name_w)} |{bar.ljust(width)} "
                         f"{_fmt(value)}{unit}")
    return "\n".join(lines)


def line_chart(xs: Sequence[float], series: Dict[str, Sequence[Optional[float]]],
               title: str = "", width: int = 60, height: int = 16,
               y_label: str = "") -> str:
    """A multi-series scatter/line plot on a character grid."""
    points = [(x, v) for vals in series.values()
              for x, v in zip(xs, vals) if v is not None]
    if not points:
        return title
    x_lo = min(x for x, _v in points)
    x_hi = max(x for x, _v in points)
    y_hi = max(v for _x, v in points)
    y_lo = min(0.0, min(v for _x, v in points))
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for marker, (name, vals) in zip(MARKERS, series.items()):
        prev = None
        for x, v in zip(xs, vals):
            if v is None:
                prev = None
                continue
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((v - y_lo) / y_span * (height - 1))
            # Sketch a connecting segment (vertical interpolation).
            if prev is not None:
                pcol, prow = prev
                steps = max(abs(col - pcol), 1)
                for s in range(1, steps):
                    icol = pcol + (col - pcol) * s // steps
                    irow = prow + (row - prow) * s // steps
                    if grid[irow][icol] == " ":
                        grid[irow][icol] = "·"
            grid[row][col] = marker
            prev = (col, row)

    axis_w = max(len(_fmt(y_hi)), len(_fmt(y_lo)))
    lines = [title] if title else []
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = _fmt(y_hi).rjust(axis_w)
        elif i == height - 1:
            label = _fmt(y_lo).rjust(axis_w)
        else:
            label = " " * axis_w
        lines.append(f"{label} |{''.join(row_cells)}")
    lines.append(" " * axis_w + " +" + "-" * width)
    x_axis = (_fmt(x_lo) + " " * width)[: width - len(_fmt(x_hi))] \
        + _fmt(x_hi)
    lines.append(" " * axis_w + "  " + x_axis)
    legend = "   ".join(f"{marker}={name}" for marker, name
                        in zip(MARKERS, series))
    lines.append((y_label + "  " if y_label else "") + legend)
    return "\n".join(lines)


def chart_table(table) -> str:
    """Render an :class:`ExpTable` as the most fitting chart."""
    if not table.rows:
        return table.title
    first_col = [row[0] for row in table.rows]
    numeric_cols = [h for h in table.headers[1:]
                    if all(isinstance(row[table.headers.index(h)],
                                      (int, float)) or
                           row[table.headers.index(h)] is None
                           for row in table.rows)]
    if not numeric_cols:
        return table.format()
    if all(isinstance(x, (int, float)) for x in first_col):
        series = {h: table.column(h) for h in numeric_cols}
        return line_chart([float(x) for x in first_col], series,
                          title=table.title)
    if len(numeric_cols) == 1:
        return bar_chart([str(x) for x in first_col],
                         table.column(numeric_cols[0]), title=table.title)
    series = {h: table.column(h) for h in numeric_cols}
    return grouped_bar_chart([str(x) for x in first_col], series,
                             title=table.title)
