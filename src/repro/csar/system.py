"""One simulated CSAR cluster: nodes, daemons, clients, and controls.

The :class:`System` is the top-level public object: build it from a
:class:`~repro.csar.config.CSARConfig`, drive client processes (directly
or through :mod:`repro.workloads`), inspect metrics and storage, inject
failures, rebuild.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.csar.config import CSARConfig
from repro.errors import ConfigError
from repro.hw.node import Node
from repro.metrics import Metrics
from repro.pvfs.client import PVFSClient
from repro.pvfs.iod import IOD
from repro.pvfs.layout import StripeLayout
from repro.pvfs.manager import Manager
from repro.redundancy.base import make_scheme
from repro.sim.engine import Environment, Event


class System:
    """A running (simulated) CSAR deployment."""

    def __init__(self, config: CSARConfig) -> None:
        self.config = config
        self.env = Environment()
        self.metrics = Metrics()
        profile = config.resolved_profile
        self.layout = StripeLayout(config.stripe_unit, config.num_servers)

        self.server_nodes: List[Node] = [
            Node(self.env, f"iod{i}", profile, self.metrics)
            for i in range(config.num_servers)]
        self.client_nodes: List[Node] = [
            Node(self.env, f"client{i}", profile, self.metrics)
            for i in range(config.num_clients)]
        self.manager_node = Node(self.env, "mgr", profile, self.metrics)

        self.iods: List[IOD] = [
            IOD(self.env, i, node, self.metrics,
                stripe_unit=config.stripe_unit,
                content_mode=config.content_mode,
                write_buffering=config.write_buffering,
                locking=config.locking)
            for i, node in enumerate(self.server_nodes)]
        self.manager = Manager(self.env, self.manager_node, self.metrics,
                               self.layout, config.scheme)
        scheme = make_scheme(config.scheme, config)
        self.clients: List[PVFSClient] = [
            PVFSClient(self.env, i, node, self.iods, self.manager,
                       self.metrics, scheme)
            for i, node in enumerate(self.client_nodes)]
        if config.background_flusher:
            for node in self.server_nodes:
                node.cache.start_flusher()
        if self.env.paritysan is not None:
            self.env.paritysan.attach(self)
        if self.env.bufsan is not None:
            self.env.bufsan.attach(self)
        if self.env.faults is not None:
            self.env.faults.attach(self)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def client(self, index: int = 0) -> PVFSClient:
        return self.clients[index]

    def run(self, *processes) -> Any:
        """Run client generator(s) to completion; returns the last value.

        Accepts raw generators; they are spawned as simulation processes
        and the environment runs until all finish.
        """
        procs = [self.env.process(p) for p in processes]
        if not procs:
            raise ConfigError("System.run() needs at least one process")
        done = self.env.all_of(procs)
        values = self.env.run(until=done)
        if self.env.paritysan is not None:
            # The awaited processes finished and nothing user-visible is
            # in flight: the redundancy invariants must hold right now.
            self.env.paritysan.on_quiescent()
        if self.env.bufsan is not None:
            self.env.bufsan.on_quiescent()
        return values[-1] if len(values) == 1 else values

    def timed(self, *processes) -> tuple[float, Any]:
        """Like :meth:`run` but returns ``(elapsed_seconds, value)``."""
        t0 = self.env.now
        value = self.run(*processes)
        return self.env.now - t0, value

    # ------------------------------------------------------------------
    # cluster-wide controls
    # ------------------------------------------------------------------
    def drop_all_caches(self) -> None:
        """Sync and drop every server's page cache (between phases)."""
        def dropper(node):
            yield from node.cache.drop()
        self.run(*[dropper(n) for n in self.server_nodes])

    def sync_all(self) -> None:
        """Flush all dirty data on every server."""
        def syncer(node):
            yield from node.cache.sync()
        self.run(*[syncer(n) for n in self.server_nodes])

    def fail_server(self, index: int) -> None:
        self.iods[index].fail()
        self.metrics.add("failures.injected")

    def replace_server(self, index: int) -> None:
        """Swap in replacement hardware for a failed server (hot spare).

        The new daemon starts failed with an empty disk; run
        :func:`repro.redundancy.recovery.rebuild_server` afterwards to
        repopulate it from the surviving redundancy.
        """
        if not self.iods[index].failed:
            raise ConfigError(
                f"server {index} is not failed; refusing replacement")
        node = Node(self.env, f"iod{index}", self.config.resolved_profile,
                    self.metrics)
        if self.config.background_flusher:
            node.cache.start_flusher()
        iod = IOD(self.env, index, node, self.metrics,
                  stripe_unit=self.config.stripe_unit,
                  content_mode=self.config.content_mode,
                  write_buffering=self.config.write_buffering,
                  locking=self.config.locking)
        iod.fail()
        self.server_nodes[index] = node
        self.iods[index] = iod
        for client in self.clients:
            client.iods[index] = iod
        self.metrics.add("failures.replaced")

    # ------------------------------------------------------------------
    # accounting (Table 2)
    # ------------------------------------------------------------------
    def storage_report(self, file: str) -> Dict[str, int]:
        """Per-category and total local storage for one PVFS file.

        Categories follow the iods' local files: ``data``, ``red``
        (mirror or parity), ``ovf``/``ovfm`` (Hybrid overflow + mirror).
        ``total`` is the paper's Table 2 number — the sum of the file
        sizes at the I/O servers.
        """
        out: Dict[str, int] = {"data": 0, "red": 0, "ovf": 0, "ovfm": 0}
        for iod in self.iods:
            for kind, size in iod.storage_of(file).items():
                out[kind] += size
        out["total"] = sum(out.values())
        return out

    def overflow_stats(self, file: str) -> Dict[str, int]:
        """Live/allocated/fragmented overflow bytes across servers."""
        live = allocated = 0
        for iod in self.iods:
            table = iod.overflow.get(file)
            if table is not None:
                live += table.live_bytes
                allocated += table.allocated_bytes
        return {"live": live, "allocated": allocated,
                "fragmentation": allocated - live}
