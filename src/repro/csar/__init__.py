"""CSAR system assembly: configuration and the simulated cluster."""

from repro.csar.config import CSARConfig
from repro.csar.system import System

__all__ = ["CSARConfig", "System"]
