"""Configuration for one simulated CSAR deployment."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hw.params import HardwareProfile, get_profile
from repro.units import KiB


@dataclass
class CSARConfig:
    """Everything needed to build a :class:`~repro.csar.system.System`.

    The defaults mirror the paper's main setup: 6 I/O servers (5 data
    blocks per RAID5 stripe), 64 KiB stripe unit, OSU-cluster hardware.
    """

    scheme: str = "hybrid"
    num_servers: int = 6
    num_clients: int = 1
    stripe_unit: int = 64 * KiB
    profile: str | HardwareProfile = "osu8"
    #: carry real bytes end to end (tests) vs extents only (big benches)
    content_mode: bool = True
    #: Section 5.2 write buffering at the I/O daemons
    write_buffering: bool = True
    #: parity-block locking (False reproduces Fig 3's "R5 NO LOCK")
    locking: bool = True
    #: strict whole-group locking — the stronger-consistency extension
    #: Section 5.1 sketches: every write takes the locks of the parity
    #: groups it touches, serializing even *overlapping* concurrent
    #: writes (which plain CSAR, like PVFS, leaves undefined)
    strict_locking: bool = False
    #: merge adjacent same-kind request fragments per server into one
    #: vectored message (one header, one stream); False reproduces the
    #: one-message-per-fragment wire behaviour
    coalescing: bool = True
    #: compute parity content/CPU cost (False reproduces "RAID5-npc")
    compute_parity: bool = True
    #: use the byte-at-a-time parity kernel (the Swift/RAID ablation)
    parity_bytewise: bool = False
    #: scale factor applied to page-cache capacity; workloads scaled to a
    #: fraction of paper size must pass the same factor so cache-overflow
    #: crossovers (Fig 7) are preserved
    scale: float = 1.0
    #: run servers' background writeback daemons
    background_flusher: bool = True
    #: per-RPC deadline in sim seconds; ``None`` (the default) keeps the
    #: legacy wait-forever RPC path bit-identical.  Set it to survive
    #: silent message loss: a timed-out server is treated as failed
    #: (:class:`~repro.errors.RpcTimeout` is a ``ServerFailed``), so
    #: reads fail over to the scheme's degraded path
    rpc_timeout: float | None = None
    #: retry attempts (beyond the first send) for *idempotent* requests
    #: that time out; non-idempotent protocol messages (lock-carrying
    #: parity ops, overflow appends) never retry — a duplicate would
    #: corrupt server state — and surface the timeout immediately
    rpc_retries: int = 2
    #: exponential-backoff base delay between retries (sim seconds);
    #: attempt ``k`` waits ``base * 2**k`` capped at ``rpc_backoff_cap``,
    #: plus seeded jitter in [0, backoff) to break retry lockstep
    rpc_backoff_base: float = 0.002
    rpc_backoff_cap: float = 0.1
    #: seed for the per-client retry-jitter RNG (sim-deterministic; the
    #: client index is mixed in so clients don't retry in phase)
    rpc_jitter_seed: int = 0

    resolved_profile: HardwareProfile = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ConfigError("need at least one I/O server")
        if self.num_clients < 1:
            raise ConfigError("need at least one client")
        if self.stripe_unit <= 0:
            raise ConfigError("stripe unit must be positive")
        if self.scheme in ("raid5", "hybrid") and self.num_servers < 2:
            raise ConfigError(f"{self.scheme} needs at least 2 servers")
        if self.rpc_timeout is not None and self.rpc_timeout <= 0:
            raise ConfigError("rpc_timeout must be positive (or None)")
        if self.rpc_retries < 0:
            raise ConfigError("rpc_retries must be >= 0")
        if self.rpc_backoff_base <= 0 or self.rpc_backoff_cap <= 0:
            raise ConfigError("rpc backoff delays must be positive")
        profile = (get_profile(self.profile)
                   if isinstance(self.profile, str) else self.profile)
        if self.scale != 1.0:
            profile = profile.scaled(self.scale)
        self.resolved_profile = profile
