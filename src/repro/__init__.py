"""CSAR — Cluster Storage with Adaptive Redundancy (reproduction).

A faithful reimplementation of the system from *"A High Performance
Redundancy Scheme for Cluster File Systems"* (Pillai & Lauria, IEEE
CLUSTER 2003): a PVFS-like striped cluster file system extended with
RAID1, RAID5 and the paper's Hybrid redundancy scheme, running on a
calibrated discrete-event model of the paper's testbeds.

Quickstart::

    from repro import CSARConfig, System, Payload

    system = System(CSARConfig(scheme="hybrid", num_servers=6))
    client = system.client()

    def work():
        yield from client.create("demo")
        yield from client.write("demo", 0, Payload.pattern(1 << 20, seed=1))
        data = yield from client.read("demo", 0, 1 << 20)
        return data

    elapsed, data = system.timed(work())
"""

from repro.csar.config import CSARConfig
from repro.csar.system import System
from repro.errors import (
    ConfigError,
    DataLoss,
    FileExists,
    FileNotFound,
    ReproError,
    ServerFailed,
)
from repro.hw.params import PROFILES, HardwareProfile, get_profile
from repro.metrics import Metrics
from repro.pvfs.layout import StripeLayout
from repro.redundancy.base import SCHEMES, make_scheme
from repro.storage.payload import Payload
from repro.units import GiB, KiB, MiB

__version__ = "1.0.0"

__all__ = [
    "CSARConfig",
    "System",
    "Payload",
    "Metrics",
    "StripeLayout",
    "HardwareProfile",
    "PROFILES",
    "get_profile",
    "SCHEMES",
    "make_scheme",
    "ReproError",
    "ConfigError",
    "DataLoss",
    "FileExists",
    "FileNotFound",
    "ServerFailed",
    "KiB",
    "MiB",
    "GiB",
    "__version__",
]
