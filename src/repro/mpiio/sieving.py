"""Data sieving: ROMIO's optimization for *independent* non-contiguous I/O.

When a single process reads many small pieces from a dense file region,
ROMIO reads the whole covering extent into a buffer and extracts the
pieces ("sieves"), trading wasted bytes for round trips.  For writes it
must read-modify-write the covering extent — which is why ROMIO guards
write sieving with file locking and why PVFS deployments often disabled
it; we implement both, with the same caveat documented.

Collective two-phase I/O (:mod:`repro.mpiio.collective`) is preferred
when all ranks participate; sieving is the fallback ROMIO applies to
independent operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Tuple

from repro.errors import ConfigError
from repro.mpiio.datatypes import AccessPattern
from repro.sim.engine import Event
from repro.storage.payload import Payload
from repro.units import KiB, MiB


@dataclass(frozen=True)
class SievingConfig:
    """ROMIO's ``ind_rd_buffer_size`` / ``ind_wr_buffer_size`` knobs."""

    read_buffer: int = 4 * MiB
    write_buffer: int = 512 * KiB
    #: only sieve when the pieces cover at least this fraction of the
    #: extent — below it, wasted bytes outweigh saved round trips
    min_density: float = 0.0

    def __post_init__(self) -> None:
        if self.read_buffer <= 0 or self.write_buffer <= 0:
            raise ConfigError("sieving buffers must be positive")
        if not 0.0 <= self.min_density <= 1.0:
            raise ConfigError("min_density must be in [0, 1]")


def _should_sieve(pattern: AccessPattern, config: SievingConfig) -> bool:
    lo, hi = pattern.extent
    if hi <= lo:
        return False
    return pattern.total_bytes / (hi - lo) >= config.min_density


def sieved_read(client, name: str, pattern: AccessPattern,
                config: SievingConfig = SievingConfig(),
                ) -> Generator[Event, Any, Payload]:
    """Read a non-contiguous pattern; returns the pieces concatenated in
    file order (an MPI receive buffer)."""
    if not pattern.pieces:
        return Payload.from_bytes(b"")
    if not _should_sieve(pattern, config):
        return (yield from _piecewise_read(client, name, pattern))
    lo, hi = pattern.extent
    parts: List[Tuple[int, Payload]] = []
    at = 0
    cursor = lo
    while cursor < hi:
        chunk_hi = min(cursor + config.read_buffer, hi)
        clipped = pattern.clip(cursor, chunk_hi)
        if clipped.total_bytes:
            chunk = yield from client.read(name, cursor, chunk_hi - cursor)
            for off, length in clipped.pieces:
                parts.append((at, chunk.slice(off - cursor,
                                              off - cursor + length)))
                at += length
        cursor = chunk_hi
    return Payload.assemble(pattern.total_bytes, parts)


def _piecewise_read(client, name: str, pattern: AccessPattern,
                    ) -> Generator[Event, Any, Payload]:
    parts: List[Tuple[int, Payload]] = []
    at = 0
    for off, length in pattern.pieces:
        piece = yield from client.read(name, off, length)
        parts.append((at, piece))
        at += length
    return Payload.assemble(pattern.total_bytes, parts)


def sieved_write(client, name: str, pattern: AccessPattern,
                 payload: Payload,
                 config: SievingConfig = SievingConfig(),
                 ) -> Generator[Event, Any, None]:
    """Write a non-contiguous pattern via read-modify-write sieving.

    CAVEAT (as in ROMIO): the read-modify-write of the covering extent is
    not atomic against concurrent writers of the same region; use the
    collective path or strict locking when that matters.
    """
    if payload.length != pattern.total_bytes:
        raise ConfigError("payload does not match pattern size")
    if not pattern.pieces:
        return
    if not _should_sieve(pattern, config):
        at = 0
        for off, length in pattern.pieces:
            yield from client.write(name, off, payload.slice(at, at + length))
            at += length
        return
    lo, hi = pattern.extent
    # Buffer offset of each piece for extraction.
    prefix = []
    at = 0
    for off, length in pattern.pieces:
        prefix.append((off, length, at))
        at += length
    cursor = lo
    while cursor < hi:
        chunk_hi = min(cursor + config.write_buffer, hi)
        clipped = pattern.clip(cursor, chunk_hi)
        if clipped.total_bytes == (chunk_hi - cursor):
            # Fully covered: no pre-read needed.
            chunk = Payload.virtual(chunk_hi - cursor) if payload.is_virtual \
                else Payload.zeros(chunk_hi - cursor)
        elif clipped.total_bytes:
            chunk = yield from client.read(name, cursor, chunk_hi - cursor)
        else:
            cursor = chunk_hi
            continue
        for off, length, buf_at in prefix:
            seg_lo = max(off, cursor)
            seg_hi = min(off + length, chunk_hi)
            if seg_hi <= seg_lo:
                continue
            piece = payload.slice(buf_at + (seg_lo - off),
                                  buf_at + (seg_hi - off))
            chunk = chunk.overlay(seg_lo - cursor, piece)
        yield from client.write(name, cursor, chunk)
        cursor = chunk_hi
