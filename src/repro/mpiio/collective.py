"""Two-phase collective I/O (ROMIO-style) over CSAR.

``MPIFile.collective_write`` implements the optimization the paper's
benchmarks rely on: the union of all ranks' (possibly tiny, strided)
accesses is partitioned into contiguous *file domains*, one per
aggregator rank; data is redistributed rank→aggregator over the network
in collective-buffer-sized rounds; each aggregator then issues one large
contiguous file-system write per round.  With ROMIO's default 4 MB
collective buffer this is exactly why "the PVFS layer sees large writes,
most of which are about 4 MB in size" for BTIO (Section 6.5).

``collective_read`` is the mirror image (aggregators read, then scatter).
Independent (non-collective) operations pass straight through to the
PVFS client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import ConfigError, FileExists
from repro.hw.link import transfer
from repro.mpiio.datatypes import AccessPattern, merge
from repro.sim.engine import Event
from repro.storage.payload import Payload
from repro.units import MiB


@dataclass(frozen=True)
class CollectiveConfig:
    """ROMIO-like tuning knobs."""

    #: collective buffer per aggregator (ROMIO default: 4 MiB)
    cb_buffer_size: int = 4 * MiB
    #: number of aggregator ranks (None = every rank aggregates)
    cb_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cb_buffer_size <= 0:
            raise ConfigError("cb_buffer_size must be positive")
        if self.cb_nodes is not None and self.cb_nodes < 1:
            raise ConfigError("cb_nodes must be >= 1")


class MPIFile:
    """A shared file opened by a set of MPI ranks (CSAR clients)."""

    def __init__(self, system, name: str,
                 config: CollectiveConfig = CollectiveConfig()) -> None:
        self.system = system
        self.name = name
        self.config = config
        self.ranks = list(range(len(system.clients)))

    # ------------------------------------------------------------------
    def open(self, create: bool = True) -> Generator[Event, Any, None]:
        """Collective open (create if needed)."""
        client = self.system.clients[0]
        if create:
            try:
                yield from client.create(self.name)
            except FileExists:
                yield from client.open(self.name)
        else:
            yield from client.open(self.name)
        yield from client.parallel([
            self.system.clients[r].open(self.name)
            for r in self.ranks[1:]])

    # ------------------------------------------------------------------
    # independent operations
    # ------------------------------------------------------------------
    def write_at(self, rank: int, offset: int,
                 payload: Payload) -> Generator[Event, Any, None]:
        yield from self.system.clients[rank].write(self.name, offset,
                                                   payload)

    def read_at(self, rank: int, offset: int,
                length: int) -> Generator[Event, Any, Payload]:
        out = yield from self.system.clients[rank].read(self.name, offset,
                                                        length)
        return out

    # ------------------------------------------------------------------
    # two-phase collective write
    # ------------------------------------------------------------------
    def _aggregators(self) -> List[int]:
        count = self.config.cb_nodes or len(self.ranks)
        return self.ranks[: min(count, len(self.ranks))]

    def _file_domains(self, region_lo: int, region_hi: int,
                      ) -> List[Tuple[int, int, int]]:
        """(aggregator rank, domain start, domain end) partitions."""
        aggs = self._aggregators()
        span = region_hi - region_lo
        share = -(-span // len(aggs))
        out = []
        for i, agg in enumerate(aggs):
            lo = region_lo + i * share
            hi = min(region_lo + (i + 1) * share, region_hi)
            if hi > lo:
                out.append((agg, lo, hi))
        return out

    def collective_write(self, contributions: Dict[int, Tuple[AccessPattern,
                                                              Optional[Payload]]],
                         ) -> Generator[Event, Any, None]:
        """``MPI_File_write_at_all``: every rank contributes its pattern.

        ``contributions[rank] = (pattern, payload)`` where ``payload``
        holds the pattern's bytes concatenated in file order (None =
        virtual/extent mode).
        """
        self._check_disjoint(contributions)
        region = merge(p for p, _buf in contributions.values())
        if not region:
            return
        region_lo = next(iter(region)).start
        domains = self._file_domains(region_lo, region.max_end())
        procs = [self.system.env.process(
                    self._write_domain(agg, lo, hi, contributions))
                 for agg, lo, hi in domains]
        yield self.system.env.all_of(procs)

    def _write_domain(self, agg: int, lo: int, hi: int,
                      contributions) -> Generator[Event, Any, None]:
        """One aggregator's rounds over its file domain."""
        env = self.system.env
        cb = self.config.cb_buffer_size
        agg_client = self.system.clients[agg]
        cursor = lo
        while cursor < hi:
            chunk_hi = min(cursor + cb, hi)
            # Phase 1: redistribute — every rank ships its overlap with
            # this round's window to the aggregator.
            sends = []
            pieces: List[Tuple[int, Optional[Payload]]] = []
            for rank, (pattern, buf) in contributions.items():
                clipped = pattern.clip(cursor, chunk_hi)
                nbytes = clipped.total_bytes
                if nbytes == 0:
                    continue
                if rank != agg:
                    sends.append(transfer(
                        env, self.system.clients[rank].node.nic,
                        agg_client.node.nic, nbytes, self.system.metrics))
                pieces.extend(self._extract(pattern, buf, clipped))
            if sends:
                yield env.all_of([env.process(s) for s in sends])
            # Phase 2: one contiguous write per covered extent in the
            # window (usually exactly one — the merged large request).
            covered = merge([AccessPattern(tuple((off, ln)
                             for off, ln in self._piece_ranges(pieces)))])
            for ext in covered.overlap(cursor, chunk_hi):
                payload = self._assemble(ext.start, ext.length, pieces)
                yield from agg_client.write(self.name, ext.start, payload)
            cursor = chunk_hi

    # ------------------------------------------------------------------
    # two-phase collective read
    # ------------------------------------------------------------------
    def collective_read(self, requests: Dict[int, AccessPattern],
                        ) -> Generator[Event, Any, Dict[int, Payload]]:
        """``MPI_File_read_at_all``: returns each rank's bytes in file
        order (concatenated, like an MPI receive buffer)."""
        region = merge(requests.values())
        results: Dict[int, List[Tuple[int, Payload]]] = {
            rank: [] for rank in requests}
        if not region:
            return {rank: Payload.from_bytes(b"") for rank in requests}
        domains = self._file_domains(next(iter(region)).start,
                                     region.max_end())
        procs = [self.system.env.process(
                    self._read_domain(agg, lo, hi, requests, results))
                 for agg, lo, hi in domains]
        yield self.system.env.all_of(procs)
        out: Dict[int, Payload] = {}
        for rank, pieces in results.items():
            pieces.sort()
            total = requests[rank].total_bytes
            if any(p.is_virtual for _o, p in pieces):
                out[rank] = Payload.virtual(total)
                continue
            buf = Payload.zeros(total)
            at = 0
            for _off, piece in pieces:
                buf = buf.overlay(at, piece)
                at += piece.length
            out[rank] = buf
        return out

    def _read_domain(self, agg: int, lo: int, hi: int, requests,
                     results) -> Generator[Event, Any, None]:
        env = self.system.env
        cb = self.config.cb_buffer_size
        agg_client = self.system.clients[agg]
        cursor = lo
        while cursor < hi:
            chunk_hi = min(cursor + cb, hi)
            needed = merge([p.clip(cursor, chunk_hi)
                            for p in requests.values()])
            for ext in needed.overlap(cursor, chunk_hi):
                chunk = yield from agg_client.read(self.name, ext.start,
                                                   ext.length)
                sends = []
                for rank, pattern in requests.items():
                    clipped = pattern.clip(ext.start, ext.end)
                    if clipped.total_bytes == 0:
                        continue
                    for off, length in clipped.pieces:
                        piece = chunk.slice(off - ext.start,
                                            off - ext.start + length)
                        results[rank].append((off, piece))
                    if rank != agg:
                        sends.append(transfer(
                            env, agg_client.node.nic,
                            self.system.clients[rank].node.nic,
                            clipped.total_bytes, self.system.metrics))
                if sends:
                    yield env.all_of([env.process(s) for s in sends])
            cursor = chunk_hi

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_disjoint(contributions) -> None:
        seen = None
        for _rank, (pattern, buf) in sorted(contributions.items()):
            if buf is not None and buf.length != pattern.total_bytes:
                raise ConfigError("payload does not match pattern size")
            pm = pattern.as_extent_map()
            if seen is None:
                seen = pm
                continue
            for off, length in pattern.pieces:
                if seen.overlap(off, off + length):
                    raise ConfigError(
                        "overlapping collective contributions are "
                        "undefined in PVFS semantics")
            for off, length in pattern.pieces:
                seen.add(off, off + length)

    @staticmethod
    def _extract(pattern: AccessPattern, buf: Optional[Payload],
                 clipped: AccessPattern,
                 ) -> List[Tuple[int, int, Optional[Payload]]]:
        """(file offset, length, bytes) for each clipped piece."""
        # Buffer offset of each original piece.
        prefix = []
        at = 0
        for off, length in pattern.pieces:
            prefix.append((off, off + length, at))
            at += length
        out = []
        for off, length in clipped.pieces:
            for p_off, p_end, p_buf in prefix:
                if p_off <= off and off + length <= p_end:
                    if buf is None:
                        out.append((off, length, None))
                    else:
                        start = p_buf + (off - p_off)
                        out.append((off, length,
                                    buf.slice(start, start + length)))
                    break
            else:  # pragma: no cover - defensive
                raise AssertionError("clipped piece outside pattern")
        return out

    @staticmethod
    def _piece_ranges(pieces) -> List[Tuple[int, int]]:
        return sorted((off, length) for off, length, _p in pieces)

    @staticmethod
    def _assemble(start: int, length: int, pieces) -> Payload:
        relevant = [(off, ln, p) for off, ln, p in pieces
                    if off >= start and off + ln <= start + length]
        if any(p is None for _o, _l, p in relevant):
            return Payload.virtual(length)
        return Payload.assemble(length, [(off - start, p)
                                         for off, _ln, p in relevant])
