"""MPI-datatype-lite: file access patterns as offset/length lists.

A full MPI datatype engine is out of scope; what two-phase I/O needs is
each rank's *flattened* access pattern — the sorted list of (offset,
length) pieces it touches — which is exactly what ROMIO's flattening pass
produces from any derived datatype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.util.intervals import ExtentMap


@dataclass(frozen=True)
class AccessPattern:
    """A rank's flattened file access: disjoint, sorted (offset, length)."""

    pieces: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        last_end = -1
        for offset, length in self.pieces:
            if length <= 0 or offset < 0:
                raise ValueError(f"bad piece ({offset}, {length})")
            if offset < last_end:
                raise ValueError("pieces must be sorted and disjoint")
            last_end = offset + length

    @property
    def total_bytes(self) -> int:
        return sum(length for _off, length in self.pieces)

    @property
    def extent(self) -> Tuple[int, int]:
        """(first byte, last byte + 1) of the whole pattern."""
        if not self.pieces:
            return (0, 0)
        return (self.pieces[0][0],
                self.pieces[-1][0] + self.pieces[-1][1])

    def as_extent_map(self) -> ExtentMap:
        return ExtentMap((off, off + length) for off, length in self.pieces)

    def clip(self, start: int, end: int) -> "AccessPattern":
        """The sub-pattern falling inside ``[start, end)``."""
        out: List[Tuple[int, int]] = []
        for offset, length in self.pieces:
            lo = max(offset, start)
            hi = min(offset + length, end)
            if hi > lo:
                out.append((lo, hi - lo))
        return AccessPattern(tuple(out))


def contiguous(offset: int, length: int) -> AccessPattern:
    """A plain contiguous access."""
    return AccessPattern(((offset, length),))


def strided(offset: int, block: int, stride: int,
            count: int) -> AccessPattern:
    """``count`` blocks of ``block`` bytes every ``stride`` bytes.

    The canonical non-contiguous scientific pattern (a column of a 2-D
    array, one variable of an interleaved record, a BT sub-cube face).
    """
    if stride < block:
        raise ValueError("stride smaller than block would overlap")
    return AccessPattern(tuple(
        (offset + i * stride, block) for i in range(count)))


def merge(patterns: Iterable[AccessPattern]) -> ExtentMap:
    """Union of several ranks' accesses (the collective's file region)."""
    out = ExtentMap()
    for pattern in patterns:
        for offset, length in pattern.pieces:
            out.add(offset, offset + length)
    return out
