"""A ROMIO-like MPI-IO layer over CSAR.

The paper's applications (BTIO, FLASH I/O via HDF5, Cactus BenchIO) reach
PVFS through ROMIO, whose *two-phase collective I/O* merges each process's
many small non-contiguous accesses into large contiguous file-system
requests — "ROMIO optimizes small, non-contiguous accesses by merging
them into large requests when possible.  As a result ... the PVFS layer
sees large writes" (Section 6.5).

This package implements that substrate: MPI-like datatypes as offset
lists, an ``MPIFile`` with independent and collective operations, and the
two-phase exchange (rank→aggregator redistribution over the simulated
network, then one large write per aggregator file domain).
"""

from repro.mpiio.datatypes import AccessPattern, contiguous, strided
from repro.mpiio.collective import CollectiveConfig, MPIFile

__all__ = [
    "AccessPattern",
    "contiguous",
    "strided",
    "CollectiveConfig",
    "MPIFile",
]
