"""A small SimPy-like discrete-event simulation kernel.

Generator functions are simulation *processes*; they ``yield`` events
(timeouts, other processes, resource requests, condition events) and are
resumed when those events trigger.  The kernel is deterministic: events
scheduled for the same instant fire in schedule order.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import FifoLock, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "Resource",
    "FifoLock",
    "Store",
]
