"""The discrete-event engine: environment, events, processes.

Design notes
------------
The engine is a classic event-heap kernel, deliberately minimal:

* :class:`Event` — one-shot; may *succeed* with a value or *fail* with an
  exception.  Callbacks run when the event is popped from the heap.
* :class:`Process` — wraps a generator.  Each ``yield`` must produce an
  :class:`Event`; the process resumes with the event's value (or the
  exception is thrown into the generator).  A process is itself an event
  that succeeds with the generator's return value, so processes compose
  (``yield env.process(child())``).
* Determinism — the heap is keyed ``(time, priority, seq)`` where ``seq``
  is a monotone counter, so same-time events fire in scheduling order and
  runs are exactly reproducible.

Failed events whose failure is never observed (no callbacks, never yielded
on) raise at the end of :meth:`Environment.run`, so lost errors in server
processes cannot silently vanish — important when simulating failure
injection.

Hot-path notes
--------------
Every simulated byte of every figure funnels through this module, so the
scheduling and dispatch paths trade a little repetition for constant
factors:

* ``_schedule`` is inlined at its call sites (``succeed``/``fail``,
  :class:`Timeout`, process resumption) — one attribute walk and a
  ``heappush`` instead of a method call per event.
* The dispatch loops in :meth:`Environment.run` inline :meth:`Environment.step`
  and skip the callback loop entirely for callback-less events (the
  :class:`Timeout` fast lane).
* :meth:`Process._resume_interrupt` detaches from the awaited event by
  tombstoning its recorded callback slot (``callbacks[i] = None``) in
  O(1) instead of an O(n) ``list.remove`` scan; callback lists are
  append-only everywhere else, so recorded indices stay valid.
* Scheduling/dispatch counters cost nothing: ``_seq`` already counts
  scheduled events and the dispatched count is ``_seq - len(_heap)``
  (see :meth:`Environment.stats`), which is what ``csar-repro profile``
  reports.
"""

from __future__ import annotations

import heapq
from heapq import heappush
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from repro.errors import SimulationError

#: Optional factory installed by :func:`repro.analysis.locksan.install`;
#: called once per new :class:`Environment` to build its sanitizer.
#: Kept as a module-level hook so the engine never imports the analysis
#: package (which imports the engine).
_sanitizer_factory: Optional[Callable[[], Any]] = None


def set_sanitizer_factory(factory: Optional[Callable[[], Any]]) -> None:
    """Install (or, with ``None``, remove) the sanitizer factory."""
    global _sanitizer_factory
    _sanitizer_factory = factory


def sanitizer_factory() -> Optional[Callable[[], Any]]:
    return _sanitizer_factory


#: Optional factory installed by :func:`repro.analysis.paritysan.install`;
#: called once per new :class:`Environment` to build its parity-invariant
#: sanitizer (kept separate from the lock sanitizer so the two can be
#: enabled independently).
_paritysan_factory: Optional[Callable[[], Any]] = None


def set_paritysan_factory(factory: Optional[Callable[[], Any]]) -> None:
    """Install (or, with ``None``, remove) the ParitySan factory."""
    global _paritysan_factory
    _paritysan_factory = factory


def paritysan_factory() -> Optional[Callable[[], Any]]:
    return _paritysan_factory


#: Optional factory installed by :func:`repro.analysis.bufsan.install`;
#: called once per new :class:`Environment` to build its buffer-identity
#: sanitizer (independent of the lock and parity sanitizers).
_bufsan_factory: Optional[Callable[[], Any]] = None


def set_bufsan_factory(factory: Optional[Callable[[], Any]]) -> None:
    """Install (or, with ``None``, remove) the BufSan factory."""
    global _bufsan_factory
    _bufsan_factory = factory


def bufsan_factory() -> Optional[Callable[[], Any]]:
    return _bufsan_factory


#: Optional factory installed by :func:`repro.faults.injector.install`;
#: called once per new :class:`Environment` to build its fault injector
#: (:mod:`repro.faults`).  Same engine-never-imports-the-hook idiom as
#: the sanitizer factories: hook points elsewhere consult
#: ``env.faults`` and cost one ``None``-check when no plan is armed.
_fault_factory: Optional[Callable[[], Any]] = None


def set_fault_factory(factory: Optional[Callable[[], Any]]) -> None:
    """Install (or, with ``None``, remove) the fault-injector factory."""
    global _fault_factory
    _fault_factory = factory


def fault_factory() -> Optional[Callable[[], Any]]:
    return _fault_factory


#: Optional factory for a tie-break scheduler (schedule exploration,
#: :mod:`repro.analysis.explore`): called once per new
#: :class:`Environment`; the returned object's ``choose(when, priority,
#: events)`` picks which same-``(time, priority)`` event to dispatch
#: next.  ``None`` (the default) keeps the deterministic seq order and
#: the zero-overhead dispatch loops.
_tie_breaker_factory: Optional[Callable[[], Any]] = None


def set_tie_breaker_factory(factory: Optional[Callable[[], Any]]) -> None:
    """Install (or, with ``None``, remove) the tie-breaker factory."""
    global _tie_breaker_factory
    _tie_breaker_factory = factory


def tie_breaker_factory() -> Optional[Callable[[], Any]]:
    return _tie_breaker_factory


#: Optional callback invoked with every new :class:`Environment`; used by
#: ``csar-repro profile`` to aggregate kernel counters across the
#: environments an experiment creates.  Costs one ``None``-check per
#: Environment construction (never per event).
_env_observer: Optional[Callable[["Environment"], None]] = None


def set_env_observer(observer: Optional[Callable[["Environment"], None]]) -> None:
    """Install (or, with ``None``, remove) the environment observer."""
    global _env_observer
    _env_observer = observer


def env_observer() -> Optional[Callable[["Environment"], None]]:
    return _env_observer

#: Priority used for ordinary events.
NORMAL = 1
#: Priority for "urgent" bookkeeping events (process resumption).
URGENT = 0

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Carries ``cause``; a process may catch it and continue (e.g. a
    background flusher being told to flush early).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation timeline."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """The event has a value and is (or will be) processed."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq = seq = env._seq + 1
        heappush(env._heap, (env._now, NORMAL, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._seq = seq = env._seq + 1
        heappush(env._heap, (env._now, NORMAL, seq, self))
        return self

    def defused(self) -> None:
        """Mark a failure as handled so run() will not re-raise it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "pending"
        if self.triggered:
            state = f"ok={self._ok} value={self._value!r}"
        return f"<{type(self).__name__} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` after creation.

    Construction is the single hottest allocation in the simulator, so the
    ``Event.__init__`` chain and ``_schedule`` are inlined; a Timeout is
    born triggered, and when nothing ever waits on it the dispatch loop
    skips its (empty) callback list entirely.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._seq = seq = env._seq + 1
        heappush(env._heap, (env._now + delay, NORMAL, seq, self))


class Initialize(Event):
    """Internal: first resumption of a new process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        env._seq = seq = env._seq + 1
        heappush(env._heap, (env._now, URGENT, seq, self))


class Process(Event):
    """A running generator; also an event that fires on termination."""

    __slots__ = ("_generator", "_target", "_target_index", "name")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str | None = None) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self._target_index: int = -1
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks = [self._resume_interrupt]
        env = self.env
        env._seq = seq = env._seq + 1
        heappush(env._heap, (env._now, URGENT, seq, event))

    # -- internal ---------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if self._value is not _PENDING:
            return  # terminated before the interrupt was delivered
        # Detach from whatever we were waiting on.  Callback lists are
        # append-only, so the index recorded when we subscribed is still
        # ours: tombstone it in O(1) (the dispatch loop skips None).
        target = self._target
        if target is not None:
            callbacks = target.callbacks
            if callbacks is not None:
                i = self._target_index
                if 0 <= i < len(callbacks) and callbacks[i] is self._resume:
                    callbacks[i] = None
                else:  # pragma: no cover - defensive
                    try:
                        callbacks.remove(self._resume)
                    except ValueError:
                        pass
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_target = generator.send(event._value)
                else:
                    event._defused = True
                    next_target = generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._seq = seq = env._seq + 1
                heappush(env._heap, (env._now, NORMAL, seq, self))
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._seq = seq = env._seq + 1
                heappush(env._heap, (env._now, NORMAL, seq, self))
                break

            if not isinstance(next_target, Event):
                generator.close()
                self._ok = False
                self._value = SimulationError(
                    f"process {self.name!r} yielded {next_target!r}, "
                    "which is not an Event")
                env._seq = seq = env._seq + 1
                heappush(env._heap, (env._now, NORMAL, seq, self))
                break
            if next_target.env is not env:
                raise SimulationError("event from a different environment")

            callbacks = next_target.callbacks
            if callbacks is None:
                # Already done: resume immediately with its value.
                event = next_target
                continue
            callbacks.append(self._resume)
            self._target = next_target
            self._target_index = len(callbacks) - 1
            break
        env._active = None


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("event from a different environment")
        self._remaining = len(self._events)
        for ev in self._events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed(self._collect())

    def _collect(self) -> List[Any]:
        return [ev._value for ev in self._events if ev.triggered]

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Succeeds when all events have succeeded; fails on the first failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Succeeds as soon as one event succeeds (fails on first failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(event._value)


class Environment:
    """Holds the clock, the event heap, and process bookkeeping."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[tuple] = []
        self._seq: int = 0
        self._active: Optional[Process] = None
        #: LockSan (or compatible) sanitizer; ``None`` unless installed.
        self.sanitizer: Optional[Any] = (
            _sanitizer_factory() if _sanitizer_factory is not None else None)
        #: ParitySan (or compatible) invariant sanitizer.
        self.paritysan: Optional[Any] = (
            _paritysan_factory() if _paritysan_factory is not None else None)
        #: BufSan (or compatible) buffer-identity sanitizer.
        self.bufsan: Optional[Any] = (
            _bufsan_factory() if _bufsan_factory is not None else None)
        #: Fault injector (:mod:`repro.faults`); ``None`` unless a plan
        #: is armed.
        self.faults: Optional[Any] = (
            _fault_factory() if _fault_factory is not None else None)
        #: Tie-break scheduler for schedule exploration; ``None`` keeps
        #: deterministic seq order.
        self._tie_breaker: Optional[Any] = (
            _tie_breaker_factory() if _tie_breaker_factory is not None
            else None)
        if _env_observer is not None:
            _env_observer(self)

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str | None = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling / running ----------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def stats(self) -> Dict[str, float]:
        """Kernel counters, derived for free from existing state.

        ``scheduled`` is the monotone scheduling counter, ``dispatched``
        the number of events already popped and delivered (every heap
        entry comes from exactly one schedule), ``pending`` the heap
        backlog.
        """
        return {
            "now": self._now,
            "scheduled": self._seq,
            "dispatched": self._seq - len(self._heap),
            "pending": len(self._heap),
        }

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("nothing to step")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                if callback is not None:  # skip interrupt tombstones
                    callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        With an :class:`Event` deadline, returns the event's value.

        Both loops inline :meth:`step` (identical dispatch semantics):
        at millions of events per figure the method call and the callback
        loop for callback-less timeouts are the dominant constant costs.
        """
        if self._tie_breaker is not None:
            return self._run_explored(until)
        heap = self._heap
        pop = heapq.heappop
        if isinstance(until, Event):
            stop = until
            if stop.callbacks is None:  # already processed
                if stop._ok:
                    return stop._value
                stop._defused = True
                raise stop._value
            done: List[Event] = []
            stop.callbacks.append(done.append)
            while heap and not done:
                when, _prio, _seq, event = pop(heap)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        if callback is not None:
                            callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if not done:
                raise SimulationError(
                    "simulation ended before the awaited event triggered "
                    "(deadlock: a process is waiting on something that can "
                    "never happen)")
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value

        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise SimulationError("run(until) is in the past")
        while heap and heap[0][0] <= deadline:
            when, _prio, _seq, event = pop(heap)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for callback in callbacks:
                    if callback is not None:
                        callback(event)
            if not event._ok and not event._defused:
                raise event._value
        if deadline != float("inf"):
            self._now = deadline
        if not heap:
            # The heap drained: nothing can ever release a held lock or
            # patch a stripe now, so leaks/inconsistencies are final.
            if self.sanitizer is not None:
                self.sanitizer.on_run_complete()
            if self.paritysan is not None:
                self.paritysan.on_run_complete()
            if self.bufsan is not None:
                self.bufsan.on_run_complete()
        return None

    # -- schedule exploration ---------------------------------------------
    def _step_tie(self) -> None:
        """One dispatch under the tie-break scheduler.

        Pops the whole same-``(time, priority)`` group, asks the
        tie-breaker which *observable* member fires first, dispatches it
        and pushes the rest back under their original keys.  Events with
        no live callbacks commute (their value is already set and nobody
        is subscribed), so they never consume a decision — a sleep-set
        style pruning of the permutation space.
        """
        heap = self._heap
        entry = heapq.heappop(heap)
        when, prio = entry[0], entry[1]
        group = [entry]
        while heap and heap[0][0] == when and heap[0][1] == prio:
            group.append(heapq.heappop(heap))
        chosen = 0
        if len(group) > 1:
            observable = [
                i for i, e in enumerate(group)
                if e[3].callbacks
                and any(cb is not None for cb in e[3].callbacks)]
            if len(observable) > 1:
                pick = self._tie_breaker.choose(
                    when, prio, [group[i][3] for i in observable])
                if pick is not None:
                    chosen = observable[pick]
            for i, e in enumerate(group):
                if i != chosen:
                    heapq.heappush(heap, e)
        event = group[chosen][3]
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                if callback is not None:
                    callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def _run_explored(self, until: "float | Event | None" = None) -> Any:
        """:meth:`run` under a tie-break scheduler (same semantics,
        decision points injected at same-timestamp ties)."""
        heap = self._heap
        if isinstance(until, Event):
            stop = until
            if stop.callbacks is None:  # already processed
                if stop._ok:
                    return stop._value
                stop._defused = True
                raise stop._value
            done: List[Event] = []
            stop.callbacks.append(done.append)
            while heap and not done:
                self._step_tie()
            if not done:
                raise SimulationError(
                    "simulation ended before the awaited event triggered "
                    "(deadlock: a process is waiting on something that "
                    "can never happen)")
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise SimulationError("run(until) is in the past")
        while heap and heap[0][0] <= deadline:
            self._step_tie()
        if deadline != float("inf"):
            self._now = deadline
        if not heap:
            if self.sanitizer is not None:
                self.sanitizer.on_run_complete()
            if self.paritysan is not None:
                self.paritysan.on_run_complete()
            if self.bufsan is not None:
                self.bufsan.on_run_complete()
        return None
