"""Shared-resource primitives built on the event kernel.

* :class:`Resource` — ``capacity`` slots with a strict FIFO wait queue.
  Modeled after SimPy's but simplified: requests are events; use them as
  context managers inside processes for exception safety.
* :class:`FifoLock` — a ``Resource`` of capacity 1 with lock vocabulary;
  the parity-block lock manager builds on it.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``;
  used as message queues between clients and I/O daemons.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource

    # Context-manager protocol so processes can write
    # ``with res.request() as req: yield req``.
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` interchangeable slots with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()
        # Cumulative statistics for utilization reporting.
        self.total_waits: int = 0
        self.total_wait_time: float = 0.0
        self._wait_started: dict[Request, float] = {}

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        req = Request(self.env, self)
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(req)
            req.succeed()
        else:
            self.total_waits += 1
            self._wait_started[req] = self.env.now
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Free a slot; grants the head of the queue if any.

        Releasing a queued (never granted) request cancels it; releasing an
        unknown request is an error.
        """
        if request in self.users:
            self.users.remove(request)
        else:
            try:
                self.queue.remove(request)
                self._wait_started.pop(request, None)
                return
            except ValueError:
                raise SimulationError("release of a request not held or queued")
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.total_wait_time += self.env.now - self._wait_started.pop(nxt)
            self.users.append(nxt)
            nxt.succeed()

    def held(self, duration: float) -> Generator[Event, Any, None]:
        """Convenience process body: hold one slot for ``duration``.

        ``yield from resource.held(t)`` acquires, waits ``t``, releases —
        the common pattern for NIC and disk occupancy.
        """
        with self.request() as req:
            yield req
            yield self.env.timeout(duration)


class FifoLock(Resource):
    """A mutual-exclusion lock with FIFO fairness.

    When a sanitizer is attached to the environment (see
    :mod:`repro.analysis.locksan`), every request/grant/release is
    reported so held locks can be tracked and leaks detected at the end
    of the run.  The sanitizer is fixed for an environment's lifetime
    (installed in ``Environment.__init__``), so it is bound once at lock
    construction: unsanitized runs take the plain :class:`Resource` path
    with zero extra lookups per acquire/release.
    """

    def __init__(self, env: Environment) -> None:
        super().__init__(env, capacity=1)
        self._san = env.sanitizer

    @property
    def locked(self) -> bool:
        return bool(self.users)

    def request(self) -> Request:
        san = self._san
        if san is None:
            return Resource.request(self)
        req = Resource.request(self)
        proc = self.env.active_process
        name = proc.name if proc is not None else "<main>"
        if req.triggered:
            san.on_lock_granted(self, req, name)
        else:
            # Grants happen inside a release(); record the hold when
            # the grant event is processed, before the waiting
            # process resumes (its callback was not yet appended).
            req.callbacks.append(
                lambda _ev: san.on_lock_granted(self, req, name))
        return req

    def release(self, request: Request) -> None:
        san = self._san
        if san is not None:
            san.on_lock_released(self, request)
        Resource.release(self, request)


class StoreGet(Event):
    __slots__ = ()


class Store:
    """Unbounded FIFO message queue with blocking ``get``."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item (never blocks; the store is unbounded)."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def get(self) -> StoreGet:
        """An event that fires with the next item."""
        ev = StoreGet(self.env)
        if self.items:
            ev.succeed(self.items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.items)
