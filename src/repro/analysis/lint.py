"""``csar-lint``: static protocol checks for CSAR simulation code.

A stdlib-:mod:`ast` analysis pass with CSAR-specific rules (see
:mod:`repro.analysis.rules` for the registry and ``docs/ANALYSIS.md``
for worked examples):

* **CSAR001** — a generator function acquires a lock/resource
  (``*.acquire(...)`` or ``*.request()``) that a path can exit without
  releasing.  Checked flow-sensitively: a CFG
  (:mod:`repro.analysis.cfg`) plus a forward lock-ownership dataflow
  (:mod:`repro.analysis.dataflow`) decide whether any normal or
  exceptional exit can still hold the token — no ``try/finally`` shape
  matching.  A token whose release lives in an ``except`` handler or
  ``finally`` block is exempt from the interrupt-leak variant, and a
  request whose ownership escapes (stored, returned, passed on) is the
  protocol-carried idiom and is not reported.
* **CSAR002** — parity-group locks acquired in statically-descending
  group order, either as consecutive literal groups or by iterating a
  descending literal sequence.
* **CSAR003** — a process body (a generator returning
  ``Generator[Event, ...]``, or one that yields ``.timeout(...)``
  events) yields an expression that cannot be an :class:`Event`
  (literals, arithmetic, comparisons, container displays, bare
  ``yield``).
* **CSAR004** — wall-clock time or unseeded module-level randomness
  (``time.time``, ``time.sleep``, ``random.random``, ...) inside a
  ``sim``/``redundancy`` module, which breaks run-to-run determinism.
* **CSAR005** — ``event.fail(exc)`` on a locally-created event that
  never escapes the function and is never ``defused()`` — the failure
  re-raises at the end of :meth:`Environment.run`.
* **CSAR006** — an :class:`~repro.util.intervals.Extent` dataclass
  constructed inside a loop (or comprehension) in a ``hw``/``sim``
  module: those are the simulator's hot paths, where the tuple-based
  ``overlap_iter``/``gaps_iter`` variants must be used instead.
* **CSAR007** — a parity lock (an ``*.acquire(...)`` token) held across
  a yield on long-latency I/O (``rpc``/``get``/``stream``/``transfer``/
  ``send``/``recv``) — the paper's Section 5.1 locking cost comes from
  exactly this: serialization windows stretched over non-lock I/O.
  Timeouts and the RMW's own ``fs.read``/``fs.write`` are deliberate
  hold-duration modeling and do not count.
* **CSAR008** — a lock released on some paths but still held on at
  least one *normal* exit (same dataflow as CSAR001; a release that
  exists but is conditional).
* **CSAR009** — an overflow-path function in a ``redundancy`` module
  writes partial-stripe data to the home location (``WriteReq`` or a
  ``.write(data_file(...), ...)``) instead of the overflow region.
* **CSAR012** — a flattening payload call (``.concat(...)``,
  ``.to_bytes()``, ``.assemble(...)``) inside a loop (or comprehension)
  in a ``pvfs``/``redundancy``/``hw`` module: each call materialises a
  contiguous copy, so one per fragment/iteration turns the zero-copy
  segment rope back into O(n²) memcpy.
* **CSAR013/014/015** — the buffer-provenance rules
  (:mod:`repro.analysis.bufflow`): in-place mutation or thaw of a
  may-frozen payload view, a private writable buffer escaping with no
  dominating freeze, and a shared scratch alias live across an Event
  yield.  Flow-sensitive over the same CFG engine as the lock rules; in
  whole-program mode callee buffer summaries ride the call graph and
  findings carry ``caller -> helper`` chains.

Findings can be suppressed per line with a trailing comment::

    self.locks.acquire(f, g, xid)  # csar-lint: disable=CSAR001

``disable`` with no codes suppresses every rule on that line.
"""

from __future__ import annotations

import ast
import io
import json
import os
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.dataflow import LockAnalysis
from repro.analysis.rules import RULES, all_codes

#: Version of the ``--format=json`` payload (see ``docs/ANALYSIS.md``).
LINT_SCHEMA_VERSION = 1

#: Attribute names treated as lock/resource acquisition (CSAR001/CSAR002).
_ACQUIRE_ATTRS = ("acquire",)
#: ``.request()`` only counts with zero arguments (Resource.request()).
_REQUEST_ATTR = "request"
#: Attribute names treated as a release for guard detection.
_RELEASE_ATTRS = ("release", "cancel")

#: ``<module>.<attr>`` calls that read the wall clock or draw unseeded
#: randomness (CSAR004).
_WALL_CLOCK = {
    "time": ("time", "time_ns", "sleep", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns"),
    "random": ("random", "randint", "randrange", "uniform", "choice",
               "choices", "shuffle", "sample", "getrandbits", "gauss"),
    "datetime": ("now", "utcnow", "today"),
}

#: Expression node types a process must never yield (CSAR003): none of
#: these can evaluate to an Event.
_NON_EVENT_YIELDS = (
    ast.Constant, ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare,
    ast.JoinedStr, ast.List, ast.Tuple, ast.Dict, ast.Set,
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
)


@dataclass(frozen=True)
class Finding:
    """One lint hit, ready to print or serialize."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: cross-reference to a dynamic observation (CSAR011: the LockSan
    #: order-inversion witness, if the explorer recorded one); excluded
    #: from baseline identity so witness availability never churns a
    #: committed baseline
    witness: str = ""

    @property
    def fixit(self) -> str:
        rule = RULES.get(self.code)
        return rule.fixit if rule else ""

    def format(self) -> str:
        text = (f"{self.path}:{self.line}:{self.col}: {self.code} "
                f"{self.message}")
        if self.witness:
            text += f" ({self.witness})"
        return text


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed codes (``None`` = all codes)."""
    out: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            marker = text.find("csar-lint:")
            if marker < 0:
                continue
            directive = text[marker + len("csar-lint:"):].strip()
            if not directive.startswith("disable"):
                continue
            rest = directive[len("disable"):].strip()
            if rest.startswith("="):
                codes = {c.strip() for c in rest[1:].split(",") if c.strip()}
                out[tok.start[0]] = codes
            else:
                out[tok.start[0]] = None  # disable everything on the line
    except tokenize.TokenError:
        pass
    return out


def _suppressed(supp: Dict[int, Optional[Set[str]]],
                line: int, code: str) -> bool:
    if line not in supp:
        return False
    codes = supp[line]
    return codes is None or code in codes


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _own_nodes(func: ast.FunctionDef) -> Iterable[ast.AST]:
    """All nodes of ``func``'s body, not descending into nested scopes."""
    todo: List[ast.AST] = list(func.body)
    while todo:
        node = todo.pop()
        yield node
        if isinstance(node, _SCOPES):
            continue
        todo.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.FunctionDef) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _own_nodes(func))


def _call_attr(node: ast.AST) -> Optional[str]:
    """The attribute name of a method call, e.g. ``x.y.acquire(...)``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _parent_map(func: ast.FunctionDef) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    todo: List[ast.AST] = [func]
    while todo:
        node = todo.pop()
        for child in ast.iter_child_nodes(node):
            parents[child] = node
            todo.append(child)
    return parents


def _block_key(node: ast.AST,
               parents: Dict[ast.AST, ast.AST]) -> Tuple[int, str]:
    """Identify the statement list (``body``/``orelse``/...) holding
    ``node``, so checks can restrict themselves to straight-line code."""
    current = node
    while current in parents:
        parent = parents[current]
        for field in ("body", "orelse", "finalbody"):
            block = getattr(parent, field, None)
            if isinstance(block, list) and current in block:
                return (id(parent), field)
        current = parent
    return (id(current), "body")


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


# ----------------------------------------------------------------------
# the per-file linter
# ----------------------------------------------------------------------
class FileLinter:
    """Run every enabled rule over one parsed module."""

    def __init__(self, path: str, source: str,
                 enable: Optional[Iterable[str]] = None,
                 program=None) -> None:
        self.path = path
        self.source = source
        self.enable = set(enable) if enable is not None else set(all_codes())
        self.findings: List[Finding] = []
        self._supp = _suppressions(source)
        #: whole-program state (repro.analysis.summaries.Program) when
        #: linting interprocedurally; None for the classic intra pass
        self.program = program

    # -- plumbing -------------------------------------------------------
    def _report(self, code: str, node: ast.AST, message: str) -> None:
        if code not in self.enable:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if _suppressed(self._supp, line, code):
            return
        self.findings.append(Finding(self.path, line, col, code, message))

    # -- entry point ----------------------------------------------------
    def run(self) -> List[Finding]:
        # Reuse the whole-program parse when there is one: the
        # interprocedural context is keyed by AST node identity.
        tree = self.program.tree_for(self.path) if self.program else None
        if tree is None:
            try:
                tree = ast.parse(self.source, filename=self.path)
            except SyntaxError as err:
                line = err.lineno or 1
                self.findings.append(Finding(
                    self.path, line, err.offset or 0, "CSAR000",
                    f"syntax error: {err.msg}"))
                return self.findings
        sim_scoped = self._is_sim_scoped()
        buf_scoped = self._is_bufflow_scoped()
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                self._check_function(node, sim_scoped)
                if buf_scoped:
                    self._check_bufflow(node)
        if sim_scoped:
            self._check_wall_clock(tree)
        if self._is_hot_scoped():
            self._check_extent_in_loops(tree)
        if self._is_payload_scoped():
            self._check_payload_copies_in_loops(tree)
        self.findings.sort(key=lambda f: (f.line, f.col, f.code))
        return self.findings

    def _is_sim_scoped(self) -> bool:
        """CSAR004 applies to modules whose behaviour must replay
        bit-identically: the engine (``sim``), the schemes
        (``redundancy``), fault injection (``faults`` — a plan must
        re-fire at the same sim instants), and the client RPC
        retry/backoff path (``pvfs`` — jitter must come from the seeded
        per-request stream, never the wall clock)."""
        parts = os.path.normpath(self.path).split(os.sep)
        return any(part in ("sim", "redundancy", "faults", "pvfs")
                   for part in parts)

    def _is_redundancy_scoped(self) -> bool:
        """CSAR009 applies only to ``redundancy`` modules."""
        parts = os.path.normpath(self.path).split(os.sep)
        return "redundancy" in parts

    def _is_bufflow_scoped(self) -> bool:
        """CSAR013–015 apply to the zero-copy data path: ``redundancy``/
        ``pvfs`` modules, ``analysis`` (sanitizers, seeded bugs), and the
        payload rope itself.  ``storage``/``hw``/``sim`` internals own
        their private page buffers by construction and stay out of
        scope."""
        parts = os.path.normpath(self.path).split(os.sep)
        return (any(part in ("redundancy", "pvfs", "analysis")
                    for part in parts)
                or os.path.basename(self.path) == "payload.py")

    def _is_hot_scoped(self) -> bool:
        """CSAR006 applies only to ``hw``/``sim`` hot-path modules."""
        parts = os.path.normpath(self.path).split(os.sep)
        return any(part in ("hw", "sim") for part in parts)

    def _is_payload_scoped(self) -> bool:
        """CSAR012 applies only to data-path ``pvfs``/``redundancy``/``hw``
        modules."""
        parts = os.path.normpath(self.path).split(os.sep)
        return any(part in ("pvfs", "redundancy", "hw") for part in parts)

    # -- dispatch -------------------------------------------------------
    def _check_function(self, func: ast.FunctionDef,
                        sim_scoped: bool) -> None:
        nodes = list(_own_nodes(func))
        generator = any(isinstance(n, (ast.Yield, ast.YieldFrom))
                        for n in nodes)
        if generator:
            self._check_lock_dataflow(func)
            self._check_lock_order(func, nodes)
            self._check_yields(func, nodes)
        if self._is_redundancy_scoped() and "overflow" in func.name:
            self._check_overflow_inplace(func, nodes)
        self._check_lost_failures(func, nodes)

    # -- CSAR013 / CSAR014 / CSAR015 (buffer provenance) ----------------
    _BUFFLOW_CODES = frozenset(("CSAR013", "CSAR014", "CSAR015"))

    def _check_bufflow(self, func: ast.FunctionDef) -> None:
        if not (self.enable & self._BUFFLOW_CODES):
            return
        from repro.analysis.bufflow import (BufferAnalysis,
                                            buffer_context_for)
        ctx = buffer_context_for(self.program, func) \
            if self.program else None
        qname = ctx.info.qname if ctx is not None else func.name
        analysis = BufferAnalysis(func, interproc=ctx, qname=qname,
                                  path=self.path)
        for finding in analysis.findings():
            self._report(finding.code, finding.node, finding.message)

    # -- CSAR001 / CSAR007 / CSAR008 (CFG + dataflow) -------------------
    #: Yielded calls counted as long-latency non-lock I/O (CSAR007).
    _IO_YIELD_NAMES = frozenset(
        ("rpc", "get", "stream", "transfer", "send", "recv"))

    def _check_lock_dataflow(self, func: ast.FunctionDef) -> None:
        ctx = self.program.context_for(func) if self.program else None
        analysis = LockAnalysis(func, interproc=ctx)
        if not analysis.tokens:
            return
        held_exit = analysis.held_at_exit()
        held_raise = analysis.held_at_raise()
        caller = ctx.info if ctx is not None else None
        for token in analysis.tokens:
            if token.guarded or token.escapes:
                continue
            if token.derived:
                self._check_derived_token(token, held_exit, held_raise,
                                          caller)
                continue
            if ctx is not None and token.returned:
                # ``return request``: ownership transfers to the caller,
                # whose own analysis carries the release obligation.
                continue
            call = token.call
            desc = ast.unparse(call.func)
            if not token.release_sites:
                if token.tid in held_exit or token.tid in held_raise:
                    self._report(
                        "CSAR001", call,
                        f"{desc}() is never released on any path "
                        f"[fix: {RULES['CSAR001'].fixit}]")
                continue
            if token.tid in held_exit:
                self._report(
                    "CSAR008", call,
                    f"{desc}() released on some paths but still held on "
                    "at least one normal exit "
                    f"[fix: {RULES['CSAR008'].fixit}]")
            elif token.tid in held_raise and not token.release_in_cleanup:
                self._report(
                    "CSAR001", call,
                    f"{desc}() released on the normal path but leaked "
                    "when the blocking yield is interrupted "
                    f"[fix: {RULES['CSAR001'].fixit}]")
        for yield_node, held in analysis.yields_while_held():
            value = yield_node.value
            if not isinstance(value, ast.Call):
                continue
            name = None
            if isinstance(value.func, ast.Attribute):
                name = value.func.attr
            elif isinstance(value.func, ast.Name):
                name = value.func.id
            locks = ", ".join(sorted(
                f"{t.receiver}.{_ACQUIRE_ATTRS[0]}({', '.join(t.args)})"
                for t in held))
            if name in self._IO_YIELD_NAMES:
                self._report(
                    "CSAR007", yield_node,
                    f"yield on {ast.unparse(value.func)}() while holding "
                    f"{locks} — parity lock held across non-lock I/O "
                    f"[fix: {RULES['CSAR007'].fixit}]")
                continue
            effects = analysis.call_effect_of(value)
            if effects is not None and effects.io_yield:
                self._report(
                    "CSAR007", yield_node,
                    f"yield from {ast.unparse(value.func)}() which "
                    f"transitively yields on long-latency I/O, while "
                    f"holding {locks} — parity lock held across "
                    "non-lock I/O via a callee "
                    f"[fix: {RULES['CSAR007'].fixit}]")

    # -- CSAR010 (interprocedural lock leak) ----------------------------
    def _check_derived_token(self, token, held_exit, held_raise,
                             caller) -> None:
        if token.handoff:
            # No local release at all: the callee hands the lock to the
            # surrounding message protocol (e.g. the iod dispatch loop).
            return
        call = token.call
        desc = ast.unparse(call.func)
        key = f"{token.receiver}.acquire({', '.join(token.args)})"
        chain = _format_chain(
            ((caller.qname, caller.path, call.lineno),) if caller
            else (), token.chain)
        if token.tid in held_exit:
            self._report(
                "CSAR010", call,
                f"call chain through {desc}() can exit with {key} still "
                f"held (net-positive lock delta): acquired via {chain}, "
                "but no caller path guarantees the release "
                f"[fix: {RULES['CSAR010'].fixit}]")
        elif token.tid in held_raise and not token.release_in_cleanup:
            self._report(
                "CSAR010", call,
                f"call chain through {desc}() leaks {key} on an "
                f"exceptional edge: acquired via {chain}, with no "
                "release in any except/finally cleanup "
                f"[fix: {RULES['CSAR010'].fixit}]")

    # -- CSAR009 --------------------------------------------------------
    def _check_overflow_inplace(self, func: ast.FunctionDef,
                                nodes: List[ast.AST]) -> None:
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            func_node = node.func
            name = None
            if isinstance(func_node, ast.Name):
                name = func_node.id
            elif isinstance(func_node, ast.Attribute):
                name = func_node.attr
            if name == "WriteReq":
                self._report(
                    "CSAR009", node,
                    "overflow path sends WriteReq (home-location data "
                    "write) instead of OverflowWriteReq "
                    f"[fix: {RULES['CSAR009'].fixit}]")
            elif name == "write" and node.args:
                target = node.args[0]
                target_name = None
                if isinstance(target, ast.Call):
                    if isinstance(target.func, ast.Name):
                        target_name = target.func.id
                    elif isinstance(target.func, ast.Attribute):
                        target_name = target.func.attr
                if target_name == "data_file":
                    self._report(
                        "CSAR009", node,
                        "overflow path writes the home data file "
                        "in place instead of the overflow region "
                        f"[fix: {RULES['CSAR009'].fixit}]")

    # -- CSAR002 --------------------------------------------------------
    def _check_lock_order(self, func: ast.FunctionDef,
                          nodes: List[ast.AST]) -> None:
        parents = _parent_map(func)
        acquires: List[ast.Call] = []
        releases: List[ast.AST] = []
        for node in nodes:
            if _call_attr(node) in _ACQUIRE_ATTRS:
                acquires.append(node)
            elif _call_attr(node) in _RELEASE_ATTRS:
                releases.append(node)
        acquires.sort(key=lambda n: (n.lineno, n.col_offset))
        release_lines = sorted(n.lineno for n in releases)

        def group_const(call: ast.Call) -> Optional[int]:
            arg = None
            if len(call.args) >= 2:
                arg = call.args[1]
            for kw in call.keywords:
                if kw.arg == "group":
                    arg = kw.value
            if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                return arg.value
            return None

        def group_name(call: ast.Call) -> Optional[str]:
            arg = call.args[1] if len(call.args) >= 2 else None
            for kw in call.keywords:
                if kw.arg == "group":
                    arg = kw.value
            if isinstance(arg, ast.Name):
                return arg.id
            return None

        # Consecutive literal groups in the same straight-line block.
        prev: Optional[Tuple[int, Tuple[int, str], int]] = None
        for call in acquires:
            const = group_const(call)
            block = _block_key(call, parents)
            if const is None:
                prev = None
                continue
            if prev is not None:
                prev_group, prev_block, prev_line = prev
                released_between = any(prev_line <= line <= call.lineno
                                       for line in release_lines)
                if (block == prev_block and const < prev_group
                        and not released_between):
                    self._report(
                        "CSAR002", call,
                        f"parity lock for group {const} acquired while "
                        f"group {prev_group} is held — descending order "
                        "can deadlock against a client locking ascending "
                        f"[fix: {RULES['CSAR002'].fixit}]")
            prev = (const, block, call.lineno)

        # ``for g in (5, 3): ... acquire(f, g, ...)`` over a descending
        # literal sequence.
        for node in nodes:
            if not isinstance(node, ast.For):
                continue
            if not isinstance(node.iter, (ast.Tuple, ast.List)):
                continue
            values = []
            for elt in node.iter.elts:
                if not (isinstance(elt, ast.Constant)
                        and isinstance(elt.value, int)):
                    values = []
                    break
                values.append(elt.value)
            if len(values) < 2 or values == sorted(values):
                continue
            if not isinstance(node.target, ast.Name):
                continue
            loop_var = node.target.id
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if (_call_attr(sub) in _ACQUIRE_ATTRS
                            and group_name(sub) == loop_var):
                        self._report(
                            "CSAR002", sub,
                            f"parity locks acquired over descending "
                            f"literal groups {tuple(values)} "
                            f"[fix: {RULES['CSAR002'].fixit}]")

    # -- CSAR003 --------------------------------------------------------
    def _check_yields(self, func: ast.FunctionDef,
                      nodes: List[ast.AST]) -> None:
        if not self._is_process_body(func, nodes):
            return
        unreachable = self._unreachable_statements(func, nodes)
        for node in nodes:
            if not isinstance(node, ast.Yield):
                continue
            if any(node.lineno >= stmt.lineno
                   and node.lineno <= getattr(stmt, "end_lineno",
                                              stmt.lineno)
                   for stmt in unreachable):
                # ``raise ...`` followed by ``yield``: the standard idiom
                # for forcing a function to be a generator.
                continue
            value = node.value
            if value is None:
                self._report(
                    "CSAR003", node,
                    "bare yield in a process body — a process must yield "
                    f"Events [fix: {RULES['CSAR003'].fixit}]")
            elif isinstance(value, _NON_EVENT_YIELDS):
                self._report(
                    "CSAR003", node,
                    f"yield of {ast.unparse(value)!r} which cannot be an "
                    f"Event [fix: {RULES['CSAR003'].fixit}]")

    @staticmethod
    def _unreachable_statements(func: ast.FunctionDef,
                                nodes: List[ast.AST]) -> List[ast.stmt]:
        """Statements that follow a terminator in the same block."""
        out: List[ast.stmt] = []
        containers: List[ast.AST] = [func]
        containers.extend(nodes)
        for node in containers:
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if not isinstance(block, list):
                    continue
                terminated = False
                for stmt in block:
                    if terminated and isinstance(stmt, ast.stmt):
                        out.append(stmt)
                    if isinstance(stmt, (ast.Raise, ast.Return,
                                         ast.Break, ast.Continue)):
                        terminated = True
        return out

    @staticmethod
    def _is_process_body(func: ast.FunctionDef,
                         nodes: List[ast.AST]) -> bool:
        """Process bodies are typed ``Generator[Event, ...]`` (the
        repo-wide convention) or demonstrably yield timeout events."""
        if func.returns is not None:
            annotation = ast.unparse(func.returns)
            if "Event" in annotation:
                return True
        for node in nodes:
            if (isinstance(node, (ast.Yield, ast.YieldFrom))
                    and node.value is not None
                    and _call_attr(node.value) == "timeout"):
                return True
        return False

    # -- CSAR004 --------------------------------------------------------
    def _check_wall_clock(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)):
                continue
            module = node.func.value.id
            attr = node.func.attr
            if attr in _WALL_CLOCK.get(module, ()):
                self._report(
                    "CSAR004", node,
                    f"{module}.{attr}() in a sim/redundancy module breaks "
                    f"determinism [fix: {RULES['CSAR004'].fixit}]")

    # -- CSAR006 --------------------------------------------------------
    _LOOPS = (ast.For, ast.While, ast.AsyncFor,
              ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

    def _check_extent_in_loops(self, tree: ast.Module) -> None:
        """Flag ``Extent(...)`` construction inside any loop body."""
        seen: Set[int] = set()  # a call inside nested loops reports once
        for loop in ast.walk(tree):
            if not isinstance(loop, self._LOOPS):
                continue
            for node in ast.walk(loop):
                if node is loop or not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name != "Extent" or id(node) in seen:
                    continue
                seen.add(id(node))
                self._report(
                    "CSAR006", node,
                    "Extent() constructed inside a loop in a hw/sim "
                    "hot-path module "
                    f"[fix: {RULES['CSAR006'].fixit}]")

    # -- CSAR012 --------------------------------------------------------
    #: Payload methods that materialise a flat contiguous copy.
    _PAYLOAD_FLATTENERS = frozenset({"concat", "to_bytes", "assemble"})

    def _check_payload_copies_in_loops(self, tree: ast.Module) -> None:
        """Flag flattening payload calls inside any loop body."""
        seen: Set[int] = set()  # a call inside nested loops reports once
        for loop in ast.walk(tree):
            if not isinstance(loop, self._LOOPS):
                continue
            for node in ast.walk(loop):
                if node is loop or not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue  # bare concat()/assemble() is someone else's
                name = func.attr
                if (name not in self._PAYLOAD_FLATTENERS
                        or id(node) in seen):
                    continue
                seen.add(id(node))
                self._report(
                    "CSAR012", node,
                    f".{name}() materialises a flat payload copy inside "
                    "a loop in a pvfs/redundancy/hw data-path module "
                    f"[fix: {RULES['CSAR012'].fixit}]")

    # -- CSAR005 --------------------------------------------------------
    def _check_lost_failures(self, func: ast.FunctionDef,
                             nodes: List[ast.AST]) -> None:
        fails: List[Tuple[str, ast.Call]] = []
        for node in nodes:
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "fail"
                    and node.args
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id not in ("self", "cls")):
                fails.append((node.func.value.id, node))
        if not fails:
            return
        for name, call in fails:
            if self._defused_or_escapes(name, call, nodes):
                continue
            self._report(
                "CSAR005", call,
                f"{name}.fail(...) but {name!r} never escapes this "
                "function and is never defused(): the failure re-raises "
                "at the end of Environment.run() "
                f"[fix: {RULES['CSAR005'].fixit}]")

    @staticmethod
    def _defused_or_escapes(name: str, fail_call: ast.Call,
                            nodes: List[ast.AST]) -> bool:
        for node in nodes:
            # Explicitly defused.
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "defused"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name):
                return True
            # Escapes: returned or yielded.
            if (isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom))
                    and node.value is not None
                    and name in _names_in(node.value)):
                return True
            # Escapes: passed as an argument to any call.
            if isinstance(node, ast.Call) and node is not fail_call:
                in_args = any(name in _names_in(a) for a in node.args)
                in_kwargs = any(name in _names_in(k.value)
                                for k in node.keywords)
                if in_args or in_kwargs:
                    return True
            # Escapes: stored into an attribute, subscript, or container.
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = getattr(node, "value", None)
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                stored = any(isinstance(t, (ast.Attribute, ast.Subscript))
                             for t in targets)
                if (stored and value is not None
                        and name in _names_in(value)):
                    return True
            if (isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict))
                    and name in _names_in(node)):
                return True
        return False


def _format_chain(prefix: Tuple, chain: Tuple) -> str:
    links = tuple(prefix) + tuple(chain)
    return " -> ".join(f"{qname} ({path}:{line})"
                       for qname, path, line in links)


# ----------------------------------------------------------------------
# CSAR011: the whole-program lock-order checker
# ----------------------------------------------------------------------
def _witness_note(edge, witnesses) -> str:
    """Match one static order edge against LockSan runtime witnesses.

    ``witnesses`` is a list of ``{"file", "group", "held_group"}`` dicts
    from the explorer (see :func:`load_witnesses`), or ``None`` when no
    witness file was supplied (then no note is attached at all).
    Numeric edges match exactly; loop-carried/symbolic edges match any
    inversion whose held group exceeds the acquired group.
    """
    if witnesses is None:
        return ""
    from repro.analysis.summaries import group_value
    value_held = group_value(edge.held)
    value_acq = group_value(edge.acquired)
    for w in witnesses:
        held_group, group = w.get("held_group"), w.get("group")
        if held_group is None or group is None:
            continue
        if value_held is not None and value_acq is not None:
            matched = held_group == value_held and group == value_acq
        else:
            matched = held_group > group
        if matched:
            return (f"dynamic witness: LockSan order-inversion on "
                    f"{w.get('file')!r}, held group {held_group} while "
                    f"acquiring group {group}")
    return "no dynamic witness recorded"


def check_order_cycles(program, enable: Set[str],
                       supp_of_path: Dict[str, Dict[int,
                                                    Optional[Set[str]]]],
                       witnesses=None) -> List[Finding]:
    """CSAR011 over the global acquires-while-holding graph.

    Two cycle shapes are reported:

    * a *descending* edge (numeric groups, or a loop statically iterating
      groups downward) — it collides with every ascending-convention
      chain, so the cycle partner is the Section 5.1 protocol itself;
    * a *reversed symbolic pair* — chain A acquires ``b`` while holding
      ``a`` and chain B acquires ``a`` while holding ``b`` on the same
      file expression.
    """
    findings: List[Finding] = []
    if "CSAR011" not in enable:
        return findings

    def emit(edge, message: str) -> None:
        supp = supp_of_path.get(edge.path, {})
        if _suppressed(supp, edge.line, "CSAR011"):
            return
        findings.append(Finding(
            edge.path, edge.line, 0, "CSAR011", message,
            witness=_witness_note(edge, witnesses)))

    from repro.analysis.summaries import group_value
    edges = program.order_edges()
    seen: Set[Tuple] = set()
    for qname, edge in edges:
        if not edge.descending:
            continue
        key = (edge.path, edge.line, edge.held, edge.acquired)
        if key in seen:
            continue
        seen.add(key)
        shape = ("groups iterated in descending order"
                 if edge.loop_carried else
                 f"group {edge.acquired} acquired while group "
                 f"{edge.held} is held")
        emit(edge,
             f"static lock-order cycle on file {edge.file_text}: {shape} "
             "— collides with every chain following the ascending "
             f"Section 5.1 convention; witness chain {qname}: "
             f"{_format_chain((), edge.chain)} "
             f"[fix: {RULES['CSAR011'].fixit}]")

    # Reversed symbolic pairs: (a held -> b acquired) vs (b -> a).
    by_pair: Dict[Tuple[str, str, str], List[Tuple[str, object]]] = {}
    for qname, edge in edges:
        if edge.descending or edge.loop_carried:
            continue
        if group_value(edge.held) is not None \
                and group_value(edge.acquired) is not None:
            continue  # numeric pairs are fully ordered, handled above
        by_pair.setdefault((edge.file_text, edge.held, edge.acquired),
                           []).append((qname, edge))
    for (file_text, held, acquired), members in sorted(by_pair.items()):
        reverse = by_pair.get((file_text, acquired, held))
        if not reverse or held >= acquired:
            continue  # report each unordered pair once
        qname, edge = members[0]
        rev_qname, rev_edge = reverse[0]
        emit(edge,
             f"static lock-order cycle on file {file_text}: "
             f"{qname} acquires {acquired} while holding {held} "
             f"({_format_chain((), edge.chain)}) but {rev_qname} "
             f"acquires {held} while holding {acquired} "
             f"({_format_chain((), rev_edge.chain)}) "
             f"[fix: {RULES['CSAR011'].fixit}]")
    return findings


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>",
                enable: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one module given as a string."""
    return FileLinter(path, source, enable=enable).run()


def lint_file(path: str,
              enable: Optional[Iterable[str]] = None) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as fp:
        return lint_source(fp.read(), path=path, enable=enable)


def iter_python_files(paths: Iterable[str]) -> Iterable[str]:
    """Expand files and directory trees, deduplicated: a file reachable
    both directly and through a parent directory is yielded once."""
    seen: Set[str] = set()

    def once(path: str) -> bool:
        real = os.path.realpath(path)
        if real in seen:
            return False
        seen.add(real)
        return True

    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames
                               if d not in ("__pycache__", ".git")]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        candidate = os.path.join(dirpath, filename)
                        if once(candidate):
                            yield candidate
        elif once(path):
            yield path


def lint_paths(paths: Iterable[str],
               enable: Optional[Iterable[str]] = None,
               interprocedural: bool = False,
               witnesses=None) -> List[Finding]:
    """Lint files and directory trees; findings sorted by location.

    With ``interprocedural=True`` the whole file set is first condensed
    into a :class:`~repro.analysis.summaries.Program` (call graph +
    lock-effect summaries); the per-file rules then see callee effects
    (CSAR001/007/008 track helper-mediated acquire/release) and the
    whole-program rules CSAR010/CSAR011 run on top.  ``witnesses`` is an
    optional list of LockSan order-inversion records (see
    :func:`load_witnesses`) cross-referenced into CSAR011 findings.
    """
    files = list(iter_python_files(paths))
    program = None
    if interprocedural:
        from repro.analysis.summaries import Program
        program = Program.build(files)
    findings: List[Finding] = []
    supp_of_path: Dict[str, Dict[int, Optional[Set[str]]]] = {}
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as fp:
                source = fp.read()
        except OSError:
            continue
        linter = FileLinter(path, source, enable=enable, program=program)
        findings.extend(linter.run())
        supp_of_path[path] = linter._supp
    if program is not None:
        enabled = set(enable) if enable is not None else set(all_codes())
        findings.extend(check_order_cycles(program, enabled,
                                           supp_of_path, witnesses))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    unique: List[Finding] = []
    seen: Set[Tuple] = set()
    for finding in findings:
        key = (finding.path, finding.line, finding.col, finding.code,
               finding.message)
        if key not in seen:
            seen.add(key)
            unique.append(finding)
    return unique


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
#: Version of the ``--baseline`` file payload.
BASELINE_SCHEMA_VERSION = 1


def baseline_key(finding: Finding) -> Tuple[str, str, str]:
    """Baseline identity: location-line-free so mere drift in line
    numbers does not resurrect a baselined finding, and witness-free so
    dynamic-witness availability does not churn the file."""
    return (finding.path, finding.code, finding.message)


def write_baseline(findings: List[Finding], path: str) -> None:
    entries = sorted({baseline_key(f) for f in findings})
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "entries": [{"path": p, "code": c, "message": m}
                    for p, c, m in entries],
    }
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2)
        fp.write("\n")


def load_baseline(path: str) -> Set[Tuple[str, str, str]]:
    with open(path, "r", encoding="utf-8") as fp:
        data = json.load(fp)
    version = data.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise ValueError(f"unsupported baseline schema_version "
                         f"{version!r} (expected "
                         f"{BASELINE_SCHEMA_VERSION})")
    return {(e["path"], e["code"], e["message"])
            for e in data.get("entries", ())}


def apply_baseline(findings: List[Finding],
                   entries: Set[Tuple[str, str, str]],
                   ) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed-count) against a baseline."""
    new = [f for f in findings if baseline_key(f) not in entries]
    return new, len(findings) - len(new)


def baseline_from_pyproject(root: str = ".") -> Optional[str]:
    """The ``[tool.csar-lint] baseline`` path, if configured (resolved
    relative to ``root``)."""
    section = _pyproject_section(root)
    baseline = section.get("baseline")
    if isinstance(baseline, str):
        return os.path.join(root, baseline)
    return None


# ----------------------------------------------------------------------
# LockSan witness files (written by ``csar-repro explore --smoke``)
# ----------------------------------------------------------------------
#: Version of the ``--witnesses`` file payload.
WITNESS_SCHEMA_VERSION = 1


def save_witnesses(witnesses: List[dict], path: str) -> None:
    payload = {"schema_version": WITNESS_SCHEMA_VERSION,
               "witnesses": witnesses}
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2)
        fp.write("\n")


def load_witnesses(path: str) -> List[dict]:
    with open(path, "r", encoding="utf-8") as fp:
        data = json.load(fp)
    version = data.get("schema_version")
    if version != WITNESS_SCHEMA_VERSION:
        raise ValueError(f"unsupported witness schema_version "
                         f"{version!r} (expected "
                         f"{WITNESS_SCHEMA_VERSION})")
    return list(data.get("witnesses", ()))


def _pyproject_section(root: str = ".") -> dict:
    """The parsed ``[tool.csar-lint]`` table (empty when unavailable)."""
    candidate = os.path.join(root, "pyproject.toml")
    if not os.path.exists(candidate):
        return {}
    try:
        import tomllib
    except ImportError:  # pragma: no cover - python < 3.11
        return {}
    with open(candidate, "rb") as fp:
        data = tomllib.load(fp)
    section = data.get("tool", {}).get("csar-lint", {})
    return section if isinstance(section, dict) else {}


def enabled_codes_from_pyproject(root: str = ".") -> Optional[List[str]]:
    """The ``[tool.csar-lint] enable`` list, if configured."""
    enable = _pyproject_section(root).get("enable")
    if isinstance(enable, list):
        return [str(code) for code in enable]
    return None


def format_text(findings: List[Finding]) -> str:
    lines = [f.format() for f in findings]
    if findings:
        lines.append(f"{len(findings)} finding"
                     f"{'s' if len(findings) != 1 else ''}")
    return "\n".join(lines)


def format_json(findings: List[Finding]) -> str:
    """Serialize findings as a versioned JSON document.

    The payload is ``{"schema_version": N, "findings": [...]}`` so CI
    and external tooling can detect format changes; see
    ``docs/ANALYSIS.md`` for the field reference.
    """
    return json.dumps(
        {"schema_version": LINT_SCHEMA_VERSION,
         "findings": [
             {"path": f.path, "line": f.line, "col": f.col,
              "code": f.code, "message": f.message, "fixit": f.fixit,
              "witness": f.witness}
             for f in findings]},
        indent=2)


def format_sarif(findings: List[Finding]) -> str:
    """Serialize findings as SARIF 2.1.0 for CI code-scanning upload."""
    rules = [
        {"id": code,
         "name": RULES[code].name,
         "shortDescription": {"text": RULES[code].summary},
         "help": {"text": RULES[code].fixit},
         "defaultConfiguration": {"level": "error"}}
        for code in all_codes()]
    results = []
    for f in findings:
        message = f.message
        if f.witness:
            message += f" ({f.witness})"
        results.append({
            "ruleId": f.code,
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": f.line,
                               "startColumn": f.col + 1}}}],
        })
    payload = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "csar-lint",
                "informationUri":
                    "https://example.invalid/csar-repro/docs/ANALYSIS.md",
                "rules": rules}},
            "results": results}],
    }
    return json.dumps(payload, indent=2)
