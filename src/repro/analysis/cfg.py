"""Statement-level control-flow graphs for ``csar-lint`` analyses.

The graph models the execution of one function body under the
simulator's exception model: exceptions originate at ``yield``
expressions (an :class:`~repro.sim.engine.Interrupt` or a failed event
thrown into the generator), at explicit ``raise`` statements, and at
``assert``.  Plain calls never raise in this model — the lock/table
primitives report protocol errors through the sanitizer, and anything
else raising is a bug the runtime surfaces on its own.

Shape of the graph:

* one :class:`Node` per statement occurrence; compound statements
  (``if``/``while``/``for``/``try``/``with``) get a node for their
  header only, with their blocks built as separate chains;
* synthetic ``entry``, ``exit`` (normal return) and ``raise-exit``
  (unhandled exception) nodes;
* edges carry a kind: ``"normal"`` for fall-through and branch edges,
  ``"exc"`` for edges taken when the statement's evaluation is aborted
  by an exception.  Dataflow transfer functions use the kind to decide
  whether the statement's effects happened: an aborted
  ``yield from table.acquire(...)`` never acquired (the table cancels
  its own request on interrupt), so the exceptional edge propagates the
  *pre*-state;
* ``finally`` blocks are duplicated per continuation (normal
  completion, exception propagation, ``return``, ``break``,
  ``continue``) so each copy flows to the right place;
* a ``try``'s handlers hang off a synthetic dispatch node; typed
  handlers keep an unhandled-propagation edge, a catch-all handler
  (bare ``except``, ``except Exception``/``BaseException``) removes it.

The same AST statement can appear in several nodes (the ``finally``
copies); analyses key their per-program-point facts by node id, and
per-statement effects by the statement object.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

#: Edge kinds.
NORMAL = "normal"
EXC = "exc"

#: Exception-type names treated as catching everything.
_CATCH_ALL_NAMES = ("Exception", "BaseException")


@dataclass
class Node:
    """One program point: a statement occurrence or a synthetic marker."""

    index: int
    stmt: Optional[ast.stmt]
    label: str = "stmt"  # "entry" | "exit" | "raise-exit" |
                         # "exc-dispatch" | "stmt"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = self.label if self.stmt is None else \
            type(self.stmt).__name__
        line = getattr(self.stmt, "lineno", "-")
        return f"<Node {self.index} {what} L{line}>"


class CFG:
    """A per-function control-flow graph (see the module docstring)."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        #: node index -> [(successor index, edge kind)]
        self.succs: Dict[int, List[Tuple[int, str]]] = {}
        self.entry = self.new_node(None, "entry")
        self.exit = self.new_node(None, "exit")
        self.raise_exit = self.new_node(None, "raise-exit")

    def new_node(self, stmt: Optional[ast.stmt], label: str = "stmt") -> int:
        node = Node(len(self.nodes), stmt, label)
        self.nodes.append(node)
        return node.index

    def add_edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        self.succs.setdefault(src, []).append((dst, kind))

    def stmt_of(self, index: int) -> Optional[ast.stmt]:
        return self.nodes[index].stmt

    def reachable(self) -> List[int]:
        """Node indices reachable from ``entry`` (DFS order)."""
        seen = {self.entry}
        todo = [self.entry]
        order = []
        while todo:
            n = todo.pop()
            order.append(n)
            for succ, _kind in self.succs.get(n, ()):
                if succ not in seen:
                    seen.add(succ)
                    todo.append(succ)
        return order


@dataclass(frozen=True)
class _Ctx:
    """Where control transfers out of the current block go."""

    exc: int                      # unhandled exception
    ret: int                      # return statements
    brk: Optional[int] = None     # break (None outside loops)
    cont: Optional[int] = None    # continue


def _stmt_can_raise(stmt: ast.stmt) -> bool:
    """Whether evaluating this (simple) statement can be aborted.

    Only yields and asserts can, in the interrupt-driven model; nested
    function definitions do not execute their bodies here.
    """
    if isinstance(stmt, ast.Assert):
        return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return False
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in ast.walk(stmt))


def _loop_runs_at_least_once(stmt: ast.stmt) -> bool:
    """Whether the loop body provably executes (non-empty literal
    iterable, or ``while True``)."""
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return isinstance(stmt.iter, (ast.Tuple, ast.List)) \
            and bool(stmt.iter.elts)
    if isinstance(stmt, ast.While):
        return isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
    return False


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    for t in types:
        name = t.id if isinstance(t, ast.Name) else (
            t.attr if isinstance(t, ast.Attribute) else None)
        if name in _CATCH_ALL_NAMES:
            return True
    return False


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    # -- blocks ---------------------------------------------------------
    def block(self, stmts: List[ast.stmt], follow: int, ctx: _Ctx) -> int:
        """Build a statement list; returns its entry node (or ``follow``
        when empty)."""
        entry = follow
        for stmt in reversed(stmts):
            entry = self.stmt(stmt, entry, ctx)
        return entry

    # -- statements -----------------------------------------------------
    def stmt(self, stmt: ast.stmt, follow: int, ctx: _Ctx) -> int:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            node = cfg.new_node(stmt)
            cfg.add_edge(node, self.block(stmt.body, follow, ctx))
            cfg.add_edge(node, self.block(stmt.orelse, follow, ctx))
            return node
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            # Loop headers (test/iter) cannot contain yields, so they
            # never raise in this model.
            header = cfg.new_node(stmt)
            if _loop_runs_at_least_once(stmt):
                # ``for x in (3, 5)``: the zero-iteration exit edge
                # would be a phantom path — route the first iteration
                # unconditionally through the body and only let the
                # back-edge header exit.
                back = cfg.new_node(stmt)
                inner = replace(ctx, brk=follow, cont=back)
                body = self.block(stmt.body, back, inner)
                cfg.add_edge(header, body)
                cfg.add_edge(back, body)
                cfg.add_edge(back, self.block(stmt.orelse, follow, ctx))
                return header
            inner = replace(ctx, brk=follow, cont=header)
            cfg.add_edge(header, self.block(stmt.body, header, inner))
            cfg.add_edge(header, self.block(stmt.orelse, follow, ctx))
            return header
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = cfg.new_node(stmt)
            cfg.add_edge(node, self.block(stmt.body, follow, ctx))
            return node
        if isinstance(stmt, ast.Try):
            return self.try_stmt(stmt, follow, ctx)
        if isinstance(stmt, ast.Return):
            node = cfg.new_node(stmt)
            cfg.add_edge(node, ctx.ret)
            return node
        if isinstance(stmt, ast.Raise):
            node = cfg.new_node(stmt)
            cfg.add_edge(node, ctx.exc, EXC)
            return node
        if isinstance(stmt, ast.Break):
            node = cfg.new_node(stmt)
            cfg.add_edge(node, ctx.brk if ctx.brk is not None else follow)
            return node
        if isinstance(stmt, ast.Continue):
            node = cfg.new_node(stmt)
            cfg.add_edge(node, ctx.cont if ctx.cont is not None else follow)
            return node
        # Simple statement (including nested def/class headers).
        node = cfg.new_node(stmt)
        cfg.add_edge(node, follow)
        if _stmt_can_raise(stmt):
            cfg.add_edge(node, ctx.exc, EXC)
        return node

    def try_stmt(self, stmt: ast.Try, follow: int, ctx: _Ctx) -> int:
        cfg = self.cfg
        if stmt.finalbody:
            # One finally copy per continuation actually used.
            fin_norm = self.block(stmt.finalbody, follow, ctx)
            fin_exc = self.block(stmt.finalbody, ctx.exc, ctx)
            fin_ret = self.block(stmt.finalbody, ctx.ret, ctx)
            fin_brk = self.block(stmt.finalbody, ctx.brk, ctx) \
                if ctx.brk is not None else None
            fin_cont = self.block(stmt.finalbody, ctx.cont, ctx) \
                if ctx.cont is not None else None
        else:
            fin_norm, fin_exc, fin_ret = follow, ctx.exc, ctx.ret
            fin_brk, fin_cont = ctx.brk, ctx.cont
        outer = _Ctx(exc=fin_exc, ret=fin_ret, brk=fin_brk, cont=fin_cont)

        if stmt.handlers:
            dispatch = cfg.new_node(stmt, "exc-dispatch")
            caught_all = False
            for handler in stmt.handlers:
                entry = self.block(handler.body, fin_norm, outer)
                cfg.add_edge(dispatch, entry)
                caught_all = caught_all or _is_catch_all(handler)
            if not caught_all:
                cfg.add_edge(dispatch, fin_exc, EXC)
            body_exc = dispatch
        else:
            body_exc = fin_exc
        body_ctx = _Ctx(exc=body_exc, ret=fin_ret, brk=fin_brk,
                        cont=fin_cont)
        # Exceptions in ``else`` are not caught by this try's handlers.
        body_follow = self.block(stmt.orelse, fin_norm, outer) \
            if stmt.orelse else fin_norm
        return self.block(stmt.body, body_follow, body_ctx)


def build_cfg(func: ast.FunctionDef) -> CFG:
    """Build the CFG of one function's body."""
    cfg = CFG()
    ctx = _Ctx(exc=cfg.raise_exit, ret=cfg.exit)
    builder = _Builder(cfg)
    cfg.add_edge(cfg.entry, builder.block(func.body, cfg.exit, ctx))
    return cfg
