"""Deliberately-buggy scheme variants for verifying the verifiers.

These subclasses re-introduce the two bug classes the paper's protocol
is designed to exclude, so tests can prove the schedule explorer
(:mod:`repro.analysis.explore`) and ParitySan
(:mod:`repro.analysis.paritysan`) actually catch them within a bounded
budget:

* :class:`DropReleaseRaid5` — the RMW path *drops* one parity-group
  unlock (a lost ``ParityWriteReq(unlock=True)``): the next writer to
  that group queues forever, which surfaces as a
  :class:`~repro.errors.SimulationError` deadlock or a LockSan leak
  report;
* :class:`InPlaceOverflowHybrid` — the partial-stripe path writes the
  new bytes to the *home* data location instead of the overflow region
  (exactly what Section 4 forbids): parity over the in-place blocks
  goes stale, which ParitySan's quiescent check reports.

Neither class is registered with the scheme registry — they impersonate
their parent's ``name`` so existing metadata dispatch keeps working, and
:func:`inject` swaps them into a built :class:`System` explicitly.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.pvfs import messages as msg
from repro.redundancy.hybrid import Hybrid
from repro.redundancy.raid5 import Raid5
from repro.sim.engine import Event
from repro.storage.payload import Payload


class DropReleaseRaid5(Raid5):
    """RAID5 whose N-th read-modify-write forgets its group unlock."""

    name = "raid5"  # impersonate: metadata still says "raid5"

    def __init__(self, config: Any, drop_release_number: int = 2) -> None:
        super().__init__(config)
        self.drop_release_number = drop_release_number
        self._rmw_count = 0

    def _rmw_unlock(self, own_lock: bool) -> bool:
        if not own_lock:
            return own_lock
        self._rmw_count += 1
        if self._rmw_count == self.drop_release_number:
            return False  # the bug: lock acquired, never released
        return own_lock


class InPlaceOverflowHybrid(Hybrid):
    """Hybrid whose partial-stripe writes land on the home blocks."""

    name = "hybrid"  # impersonate: metadata still says "hybrid"

    def _write_overflow(self, client, meta, start: int, payload: Payload,
                        ) -> Generator[Event, Any, None]:
        # The bug: partial-stripe data written in place, no overflow
        # entry, no mirror — and no parity update either, so the group's
        # parity no longer XORs to its data blocks.
        calls: List = []
        targets: List[int] = []
        for sr in meta.layout.map_range(start, payload.length):
            chunk = self._gather(payload, start, sr)
            calls.append(client.rpc(client.iods[sr.server], msg.WriteReq(
                meta.name, kind="data", offset=sr.local_start,
                payload=chunk, xid=client.next_xid())))
            targets.append(sr.server)
        yield from self._tolerant_parallel(client, targets, calls)


def inject(system: Any, scheme: Any) -> Any:
    """Swap ``scheme`` in for every client of a built ``System``.

    The replacement must impersonate the configured scheme's ``name``
    (clients dispatch per-file via ``meta.scheme == self.scheme.name``).
    Returns ``system`` for chaining.
    """
    expected = system.config.scheme
    if scheme.name != expected:
        raise ValueError(
            f"seeded scheme impersonates {scheme.name!r} but the system "
            f"is configured for {expected!r}")
    for client in system.clients:
        client.scheme = scheme
    return system
