"""Deliberately-buggy scheme variants for verifying the verifiers.

These subclasses re-introduce the two bug classes the paper's protocol
is designed to exclude, so tests can prove the schedule explorer
(:mod:`repro.analysis.explore`) and ParitySan
(:mod:`repro.analysis.paritysan`) actually catch them within a bounded
budget:

* :class:`DropReleaseRaid5` — the RMW path *drops* one parity-group
  unlock (a lost ``ParityWriteReq(unlock=True)``): the next writer to
  that group queues forever, which surfaces as a
  :class:`~repro.errors.SimulationError` deadlock or a LockSan leak
  report;
* :class:`InPlaceOverflowHybrid` — the partial-stripe path writes the
  new bytes to the *home* data location instead of the overflow region
  (exactly what Section 4 forbids): parity over the in-place blocks
  goes stale, which ParitySan's quiescent check reports;
* :class:`HelperReleaseRaid5` — the acquire and the release of a
  per-write lease live in two different *helpers*, and the releasing
  helper silently drops one release.  Each function is clean in
  isolation (the acquire helper is even suppressed, mirroring real
  protocol-carried locking), so the intra-procedural linter reports
  nothing; only the interprocedural pass (CSAR010) and the explorer
  (the third write blocks on the leaked lease) can see the leak;
* :class:`DescendingLockRaid5` — the strict-locking write path takes
  its group locks in *descending* order through a ``range(...,-1)``
  loop, defeating the Section 5.1 deadlock-avoidance invariant while
  staying invisible to CSAR002's literal-only ordering check.  CSAR011
  flags the loop-carried descending edge statically and LockSan's
  order-inversion check witnesses it dynamically;
* :class:`ThawedViewRaid5` — the RMW parity fold thaws the parity
  *response's* frozen buffer (``flags.writeable = True``) and XORs in
  place instead of taking a private copy.  The bytes it ultimately
  writes are *correct*, so ParitySan stays quiet and no lock rule
  fires; but every payload aliasing that buffer silently changes under
  its reader.  Caught statically by CSAR013 (interprocedural only: the
  thaw and the mutation live in helpers) and dynamically by BufSan's
  fingerprint re-verification;
* :class:`CompensatingWritebackRaid5` — when an RMW *writeback* data
  write fails (the server crashed between the old-data read and the
  write), the scheme "helpfully" folds that block's delta back out of
  the already-updated parity, so parity implies the block's *old*
  bytes while the client acknowledged the new ones.  The state is
  internally consistent — parity XORs to the reconstructible data, so
  ParitySan, the scrubber, and every lock/buffer rule stay quiet — but
  a rebuild resurrects the old bytes and the acknowledged write is
  silently lost.  Only the chaos campaign's differential/durability
  oracle (or the crash matrix) can catch it, and only by crashing a
  server *inside* the RMW window: the compensation path is gated on
  "old read succeeded AND writeback failed", which no between-ops
  fault (every pre-existing test) can reach;
* :class:`ScratchLeakHybrid` — the overflow mirror copy is staged in a
  reusable per-scheme scratch buffer that is *captured into the mirror
  payload* and then reused by the next write, so the first mirror's
  bytes drift after the fact.  Caught statically by CSAR014 (the
  allocator's private buffer escapes into ``self._scratch`` unfrozen)
  and CSAR015 (the scratch-aliasing payload is live across the RPC
  yield), and dynamically by BufSan at re-capture.

Neither class is registered with the scheme registry — they impersonate
their parent's ``name`` so existing metadata dispatch keeps working, and
:func:`inject` swaps them into a built :class:`System` explicitly.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

import numpy as np

from repro.pvfs import messages as msg
from repro.redundancy.hybrid import Hybrid
from repro.redundancy.raid5 import Raid5
from repro.sim.engine import Event
from repro.storage.payload import Payload


class DropReleaseRaid5(Raid5):
    """RAID5 whose N-th read-modify-write forgets its group unlock."""

    name = "raid5"  # impersonate: metadata still says "raid5"

    def __init__(self, config: Any, drop_release_number: int = 2) -> None:
        super().__init__(config)
        self.drop_release_number = drop_release_number
        self._rmw_count = 0

    def _rmw_unlock(self, own_lock: bool) -> bool:
        if not own_lock:
            return own_lock
        self._rmw_count += 1
        if self._rmw_count == self.drop_release_number:
            return False  # the bug: lock acquired, never released
        return own_lock


class InPlaceOverflowHybrid(Hybrid):
    """Hybrid whose partial-stripe writes land on the home blocks."""

    name = "hybrid"  # impersonate: metadata still says "hybrid"

    def _write_overflow(self, client, meta, start: int, payload: Payload,
                        ) -> Generator[Event, Any, None]:
        # The bug: partial-stripe data written in place, no overflow
        # entry, no mirror — and no parity update either, so the group's
        # parity no longer XORs to its data blocks.
        calls: List = []
        targets: List[int] = []
        for sr in meta.layout.map_range(start, payload.length):
            chunk = self._gather(payload, start, sr)
            calls.append(client.rpc(client.iods[sr.server], msg.WriteReq(
                meta.name, kind="data", offset=sr.local_start,
                payload=chunk, xid=client.next_xid())))
            targets.append(sr.server)
        yield from self._tolerant_parallel(client, targets, calls)


class HelperReleaseRaid5(Raid5):
    """RAID5 with a per-write lease split across acquire/release helpers.

    The N-th write's :meth:`_drop_lease` silently skips the release, so
    the lease lock leaks.  The leak is invisible to per-function
    analysis — :meth:`_take_lease` legitimately suppresses CSAR001 (its
    release is "protocol-carried", just like the real I/O daemon's) and
    :meth:`_drop_lease` releases a lock it never acquired — so only a
    whole-program pass that threads the lease through ``write`` can see
    that one caller path exits with a net-positive lock delta.
    """

    name = "raid5"  # impersonate: metadata still says "raid5"

    #: lease pseudo-group, far above any real parity group number
    LEASE_GROUP = 1 << 20

    def __init__(self, config: Any, drop_release_number: int = 2) -> None:
        super().__init__(config)
        self.drop_release_number = drop_release_number
        self._writes = 0

    def write(self, client, meta, offset: int,
              payload: Payload) -> Generator[Event, Any, None]:
        iod = client.iods[0]
        xid = client.next_xid()
        yield from self._take_lease(iod, meta.name, xid)
        yield from super().write(client, meta, offset, payload)
        self._drop_lease(iod, meta.name, xid)

    def _take_lease(self, iod, name: str,
                    xid: int) -> Generator[Event, Any, None]:
        yield from iod.locks.acquire(  # csar-lint: disable=CSAR001
            name, self.LEASE_GROUP, xid)

    def _drop_lease(self, iod, name: str, xid: int) -> None:
        self._writes += 1
        if self._writes == self.drop_release_number:
            return  # the bug: this write's lease is never released
        iod.locks.release(name, self.LEASE_GROUP, xid)


class DescendingLockRaid5(Raid5):
    """RAID5 whose strict write locks its groups highest-first.

    The descending ``range`` loop inverts the Section 5.1 ascending
    acquisition order.  Each acquire is matched by a release in the
    ``finally`` block, so the per-function leak checks stay quiet, and
    the loop bounds are symbolic, so CSAR002's literal-ordering check
    never fires — only the whole-program order graph (CSAR011) and
    LockSan's runtime inversion check see the bug.  The locks are taken
    directly on the parity servers' tables (not via ``GroupLockReq``)
    so the acquisition order is observable both statically and by the
    xid-keyed sanitizer.
    """

    name = "raid5"  # impersonate: metadata still says "raid5"

    def _strict_write(self, client, meta, offset: int,
                      payload: Payload) -> Generator[Event, Any, None]:
        lay = meta.layout
        first = lay.group_of(offset)
        last = lay.group_of(offset + payload.length - 1)
        xid = client.next_xid()
        for group in range(last, first - 1, -1):  # the bug: descending
            # CSAR008 sees the zero-iteration exit of the release loop
            # below; first <= last always, so the loops pair up exactly.
            yield from client.iods[lay.parity_server(group)].locks.acquire(  # csar-lint: disable=CSAR008
                meta.name, group, xid)
        try:
            yield from self._write_inner(client, meta, offset, payload)
        finally:
            for group in range(first, last + 1):
                client.iods[lay.parity_server(group)].locks.release(
                    meta.name, group, xid)


class ThawedViewRaid5(Raid5):
    """RAID5 whose RMW folds parity into the thawed server response.

    Instead of ``xor_at_many`` (one private copy, fold, wrap), the fold
    helper grabs the parity response's buffer, un-freezes it, and XORs
    the delta in place.  The resulting parity *bytes* are correct — the
    same fold lands in the same region — so the write completes, reads
    verify, and ParitySan's quiescent XOR check passes.  What breaks is
    aliasing: the response payload (and anything sharing its pages)
    mutates after capture.  Each helper is clean in isolation — the
    thaw touches an unannotated parameter and the caller never mutates
    anything itself — so only the interprocedural buffer summaries
    (CSAR013 with a ``_fold_parity -> _fold_piece`` chain) or BufSan's
    runtime fingerprints can see it.
    """

    name = "raid5"  # impersonate: metadata still says "raid5"

    def _fold_parity(self, parity: Payload,
                     patches: List[Tuple[int, Payload]]) -> Payload:
        buf = parity.data
        for at, piece in patches:
            self._fold_piece(buf, at, piece)
        return Payload(parity.length, buf)

    def _fold_piece(self, dst: np.ndarray, at: int,
                    piece: Payload) -> None:
        self._thaw(dst)
        for s_at, seg in piece.iter_segments():
            end = at + s_at + seg.size
            np.bitwise_xor(dst[at + s_at:end], seg,
                           out=dst[at + s_at:end])

    def _thaw(self, arr: np.ndarray) -> None:
        # A view of a frozen buffer can only be thawed once its base is
        # writable again, so walk to the owning allocation first.
        if arr.base is not None:
            self._thaw(arr.base)
        if not arr.flags.writeable:
            arr.flags.writeable = True  # the bug: shared bytes go soft


class ScratchLeakHybrid(Hybrid):
    """Hybrid whose overflow-mirror copy leaks its scratch staging.

    The mirror payload is staged through a reusable scratch buffer kept
    on the scheme, and the buffer itself — not a copy — is captured
    into the mirror's :class:`Payload`.  The next partial write of the
    same size thaws and refills the very same allocation, so the
    *first* mirror payload's bytes change long after every RPC carrying
    them completed.  Each helper is locally plausible (the allocator
    returns a fresh array, the filler writes into "its" buffer), so the
    intra-procedural pass sees nothing; interprocedurally CSAR014 flags
    the allocator's buffer escaping into ``self._scratch`` unfrozen and
    CSAR015 flags the scratch-aliasing payload live across the send,
    while BufSan catches the drift at the buffer's re-capture.
    """

    name = "hybrid"  # impersonate: metadata still says "hybrid"

    def __init__(self, config: Any) -> None:
        super().__init__(config)
        self._scratch: Optional[np.ndarray] = None

    def _write_overflow(self, client, meta, start: int, payload: Payload,
                        ) -> Generator[Event, Any, None]:
        n = meta.layout.n
        calls: List = []
        targets: List[int] = []
        for sr in meta.layout.map_range(start, payload.length):
            chunk = self._gather(payload, start, sr)
            mirror_chunk = self._mirror_copy(chunk)
            ranges = self._local_ranges(sr)
            calls.append(client.rpc(client.iods[sr.server],
                                    msg.OverflowWriteReq(
                meta.name, ranges=list(ranges), payload=chunk,
                xid=client.next_xid())))
            targets.append(sr.server)
            calls.append(client.rpc(client.iods[(sr.server + 1) % n],
                                    msg.OverflowWriteReq(
                meta.name, ranges=list(ranges), payload=mirror_chunk,
                mirror=True, origin=sr.server, xid=client.next_xid())))
            targets.append((sr.server + 1) % n)
        yield from self._tolerant_parallel(client, targets, calls)

    def _mirror_copy(self, chunk: Payload) -> Payload:
        buf = self._fold_buffer(chunk.length)
        for at, seg in chunk.iter_segments():
            buf[at: at + seg.size] = seg
        return Payload(chunk.length, buf)

    def _fold_buffer(self, length: int) -> np.ndarray:
        buf = self._scratch
        if buf is None or buf.size != length:
            buf = self._alloc_buffer(length)
        self._scratch = buf  # the bug: the staging buffer outlives the copy
        if not buf.flags.writeable:
            buf.flags.writeable = True
        return buf

    def _alloc_buffer(self, length: int) -> np.ndarray:
        return np.zeros(length, dtype=np.uint8)


class CompensatingWritebackRaid5(Raid5):
    """RAID5 that "compensates" parity when an RMW data write fails.

    The rationale a real implementer might give: "the data write never
    landed, so the parity fold for that block must be undone or the
    group won't XOR to its on-disk data".  That is exactly backwards —
    the folded parity is what makes the acked-but-unwritten block
    *reconstructible* — but the resulting state is self-consistent, so
    no sanitizer objects.  The bug only fires when a data server's
    old-data read succeeded and its writeback write failed, i.e. the
    server crashed *inside* the RMW window, which only step-triggered
    fault injection can arrange.
    """

    name = "raid5"  # impersonate: metadata still says "raid5"

    def _writeback_outcome(self, client, meta, group: int, ranges,
                           old_errors, old_chunks, new_data: Payload,
                           base_lo: int, intra: Tuple[int, int], outcomes,
                           xid: int) -> Generator[Event, Any, None]:
        from repro.errors import ServerFailed

        if not self.config.compute_parity:
            return
        lay = meta.layout
        unit = lay.unit
        intra_lo, intra_hi = intra
        p_server = lay.parity_server(group)
        p_local = lay.parity_local_offset(group)
        own = not (self.config.strict_locking and self.config.locking)
        for sr, old_error, old_chunk, (_value, error) in zip(
                ranges, old_errors, old_chunks, outcomes):
            if not isinstance(error, ServerFailed) or old_error is not None:
                continue
            # The bug: XOR the old/new delta in again (self-inverse), so
            # the parity goes back to implying the *old* block content.
            cxid = client.next_xid()
            try:
                response = yield from client.rpc(
                    client.iods[p_server],
                    msg.ParityReadReq(meta.name, group=group,
                                      local_offset=p_local,
                                      intra=(intra_lo, intra_hi),
                                      xid=cxid, lock=own))
            except ServerFailed:
                return
            patches: List[Tuple[int, Payload]] = []
            for p in sr.pieces:
                at = p.local_offset - sr.local_start
                lo_l = p.logical_offset - base_lo
                patch_at = p.local_offset % unit - intra_lo
                patches.append((patch_at,
                                old_chunk.slice(at, at + p.length)))
                patches.append((patch_at,
                                new_data.slice(lo_l, lo_l + p.length)))
            parity = self._fold_parity(response.payload, patches)
            try:
                yield from client.rpc(client.iods[p_server],
                                      msg.ParityWriteReq(
                    meta.name, group=group, local_offset=p_local,
                    intra=(intra_lo, intra_hi), payload=parity,
                    unlock=own, xid=cxid))
            except ServerFailed:
                return


def inject(system: Any, scheme: Any) -> Any:
    """Swap ``scheme`` in for every client of a built ``System``.

    The replacement must impersonate the configured scheme's ``name``
    (clients dispatch per-file via ``meta.scheme == self.scheme.name``).
    Returns ``system`` for chaining.
    """
    expected = system.config.scheme
    if scheme.name != expected:
        raise ValueError(
            f"seeded scheme impersonates {scheme.name!r} but the system "
            f"is configured for {expected!r}")
    for client in system.clients:
        client.scheme = scheme
    return system
