"""A module-level call graph over a set of Python sources.

The graph is the substrate of ``csar-lint``'s interprocedural mode
(``--interprocedural``): per-function lock-effect summaries
(:mod:`repro.analysis.summaries`) are computed bottom-up over its
strongly-connected components, and the whole-program rules (CSAR010,
CSAR011) walk its edges to build witness call chains.

Construction is purely syntactic (stdlib :mod:`ast`, no imports are
executed) and deliberately *may*-style:

* bare-name calls resolve through the defining module's top-level
  functions, then its ``from x import y`` aliases;
* ``self.m(...)`` / ``cls.m(...)`` resolve through the enclosing class
  and its base classes (by name, within the parsed universe);
* ``super().m(...)`` starts the lookup at the base classes;
* ``Class.m(...)`` and ``module.f(...)`` resolve through imported or
  local class/module names;
* ``getattr(x, "lit")(...)`` is normalized to ``x.lit(...)`` first;
* any other ``obj.m(...)`` falls back to *every* parsed method named
  ``m`` — these edges are recorded with ``confident=False`` and excluded
  from summary application (a low-confidence union of unrelated
  ``write`` methods would drown the analysis in phantom lock effects),
  but they still appear in the graph for navigation and SCC grouping.

Lock primitives (``acquire``/``release``/``cancel``/``request``) are the
*atoms* of the lock analysis: calls to them are never call-graph edges,
so the analysis cannot descend into
:class:`~repro.redundancy.locks.ParityLockTable` and double-count its
internal bookkeeping.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Method names treated as lock-analysis primitives, never call edges.
PRIMITIVE_ATTRS = frozenset(("acquire", "release", "cancel", "request"))

#: Receiver methods whose call arguments run in a *new* process: a
#: generator handed to ``env.process(...)`` executes concurrently, so
#: its lock effects must not be attributed to the spawning statement.
SPAWN_ATTRS = frozenset(("process",))

#: Cap on name-based fallback targets; a method name shared more widely
#: than this resolves to nothing (it carries no information).
_FALLBACK_CAP = 24


@dataclass
class FunctionInfo:
    """One parsed function or method."""

    qname: str                    # "module.Class.method" | "module.func"
    module: str                   # dotted module name (derived from path)
    path: str                     # file the function was parsed from
    node: ast.FunctionDef
    name: str                     # bare function/method name
    cls: Optional[str] = None     # simple enclosing-class name, if any

    @property
    def line(self) -> int:
        return self.node.lineno

    def is_generator(self) -> bool:
        todo: List[ast.AST] = list(self.node.body)
        while todo:
            node = todo.pop()
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            todo.extend(ast.iter_child_nodes(node))
        return False


@dataclass
class ClassInfo:
    """One parsed class: its bases (as written) and its methods."""

    qname: str
    module: str
    name: str
    bases: Tuple[str, ...]                       # unparsed base exprs
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qname


@dataclass(frozen=True)
class Resolution:
    """The outcome of resolving one call site."""

    targets: Tuple[str, ...]      # callee qnames (may be empty)
    confident: bool               # False for name-based fallback edges


_NO_TARGETS = Resolution((), True)


def module_name_of(path: str) -> str:
    """Derive a dotted module name from a file path.

    Anything up to and including the last ``src`` component is stripped
    (the repo layout), ``__init__`` is dropped, and separators become
    dots.  Uniqueness is what matters, not installability.
    """
    norm = os.path.normpath(path)
    parts = [p for p in norm.split(os.sep) if p not in ("", ".", "..")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<module>"


def normalize_call(call: ast.Call) -> Tuple[Optional[ast.expr],
                                            Optional[str], Optional[str]]:
    """``(receiver expr, attribute, bare name)`` of a call's callee.

    ``getattr(x, "lit")(...)`` is folded into an ``x.lit`` attribute
    access so the literal-attribute idiom resolves like a plain method
    call.
    """
    func = call.func
    if (isinstance(func, ast.Call) and isinstance(func.func, ast.Name)
            and func.func.id == "getattr" and len(func.args) >= 2
            and isinstance(func.args[1], ast.Constant)
            and isinstance(func.args[1].value, str)):
        return func.args[0], func.args[1].value, None
    if isinstance(func, ast.Attribute):
        return func.value, func.attr, None
    if isinstance(func, ast.Name):
        return None, None, func.id
    return None, None, None


class CallGraph:
    """Functions, classes, and resolved call edges of a file set."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: confident call edges: caller qname -> sorted callee qnames
        self.edges: Dict[str, Tuple[str, ...]] = {}
        #: name-based fallback edges (graph-only, not summarized)
        self.may_edges: Dict[str, Tuple[str, ...]] = {}
        self.trees: Dict[str, ast.Module] = {}     # path -> parsed module
        self.sources: Dict[str, str] = {}          # path -> source text
        self._by_node: Dict[int, FunctionInfo] = {}  # id(ast node) -> info
        self._module_funcs: Dict[str, Dict[str, str]] = {}
        self._module_classes: Dict[str, Dict[str, str]] = {}
        self._imports: Dict[str, Dict[str, str]] = {}
        self._methods_by_name: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "CallGraph":
        graph = cls()
        for path in sorted(sources):
            graph._add_module(path, sources[path])
        graph._build_edges()
        return graph

    @classmethod
    def from_paths(cls, paths: Iterable[str]) -> "CallGraph":
        sources: Dict[str, str] = {}
        for path in paths:
            try:
                with open(path, "r", encoding="utf-8") as fp:
                    sources[path] = fp.read()
            except OSError:
                continue
        return cls.from_sources(sources)

    def _add_module(self, path: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return
        module = module_name_of(path)
        self.trees[path] = tree
        self.sources[path] = source
        funcs = self._module_funcs.setdefault(module, {})
        classes = self._module_classes.setdefault(module, {})
        imports = self._imports.setdefault(module, {})
        for stmt in tree.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._record_import(module, stmt, imports)
            elif isinstance(stmt, ast.FunctionDef):
                qname = f"{module}.{stmt.name}"
                info = FunctionInfo(qname, module, path, stmt, stmt.name)
                self.functions[qname] = info
                self._by_node[id(stmt)] = info
                funcs[stmt.name] = qname
            elif isinstance(stmt, ast.ClassDef):
                cqname = f"{module}.{stmt.name}"
                cinfo = ClassInfo(
                    cqname, module, stmt.name,
                    tuple(ast.unparse(b) for b in stmt.bases))
                self.classes[cqname] = cinfo
                classes[stmt.name] = cqname
                for sub in stmt.body:
                    if not isinstance(sub, ast.FunctionDef):
                        continue
                    qname = f"{cqname}.{sub.name}"
                    info = FunctionInfo(qname, module, path, sub,
                                        sub.name, cls=stmt.name)
                    self.functions[qname] = info
                    self._by_node[id(sub)] = info
                    cinfo.methods[sub.name] = qname
                    self._methods_by_name.setdefault(
                        sub.name, []).append(qname)

    def _record_import(self, module: str, stmt: ast.stmt,
                       imports: Dict[str, str]) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    imports[top] = top
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                package = module.rsplit(".", stmt.level)[0] \
                    if module.count(".") >= stmt.level else ""
                base = f"{package}.{base}".strip(".") if base else package
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base \
                    else alias.name

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def info_of(self, node: ast.FunctionDef) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` for an AST node of *this* graph's
        own parse (node identity, not position)."""
        return self._by_node.get(id(node))

    def _dotted_candidates(self, dotted: str) -> List[str]:
        """Parsed qnames matching a dotted name, exactly or by suffix."""
        hits = []
        for registry in (self.functions, self.classes):
            if dotted in registry:
                hits.append(dotted)
        if hits:
            return hits
        suffix = "." + dotted
        for registry in (self.functions, self.classes):
            hits.extend(q for q in registry if q.endswith(suffix))
        return sorted(set(hits))

    def _class_by_name(self, module: str, name: str) -> Optional[ClassInfo]:
        """Resolve a class name as seen from ``module``."""
        local = self._module_classes.get(module, {})
        if name in local:
            return self.classes[local[name]]
        dotted = self._imports.get(module, {}).get(name)
        if dotted:
            for q in self._dotted_candidates(dotted):
                if q in self.classes:
                    return self.classes[q]
        # Unique global match: better than nothing for cross-module bases.
        matches = [c for c in self.classes.values() if c.name == name]
        if len(matches) == 1:
            return matches[0]
        return None

    def _mro_lookup(self, cinfo: ClassInfo, attr: str,
                    skip_own: bool = False,
                    _seen: Optional[set] = None) -> Optional[str]:
        seen = _seen if _seen is not None else set()
        if cinfo.qname in seen:
            return None
        seen.add(cinfo.qname)
        if not skip_own and attr in cinfo.methods:
            return cinfo.methods[attr]
        for base_text in cinfo.bases:
            base_name = base_text.rsplit(".", 1)[-1]
            base = self._class_by_name(cinfo.module, base_name)
            if base is None:
                continue
            hit = self._mro_lookup(base, attr, _seen=seen)
            if hit is not None:
                return hit
        return None

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> Resolution:
        """Resolve one call site to candidate callees (see module doc)."""
        receiver, attr, bare = normalize_call(call)
        if bare is not None:
            return self._resolve_name(caller, bare)
        if attr is None:
            return _NO_TARGETS
        if attr in PRIMITIVE_ATTRS:
            return _NO_TARGETS
        return self._resolve_attr(caller, receiver, attr)

    def _resolve_name(self, caller: FunctionInfo, name: str) -> Resolution:
        funcs = self._module_funcs.get(caller.module, {})
        if name in funcs:
            return Resolution((funcs[name],), True)
        dotted = self._imports.get(caller.module, {}).get(name)
        if dotted:
            hits = self._dotted_candidates(dotted)
            funcs_only = [h for h in hits if h in self.functions]
            if funcs_only:
                return Resolution(tuple(sorted(funcs_only)), True)
            # Imported class called = constructor.
            inits = [self.classes[h].methods["__init__"] for h in hits
                     if h in self.classes
                     and "__init__" in self.classes[h].methods]
            if inits:
                return Resolution(tuple(sorted(inits)), True)
        classes = self._module_classes.get(caller.module, {})
        if name in classes:
            cinfo = self.classes[classes[name]]
            init = cinfo.methods.get("__init__")
            if init:
                return Resolution((init,), True)
        return _NO_TARGETS

    def _resolve_attr(self, caller: FunctionInfo,
                      receiver: Optional[ast.expr],
                      attr: str) -> Resolution:
        # self.m() / cls.m(): the enclosing class hierarchy.
        if (isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls") and caller.cls):
            cinfo = self._class_by_name(caller.module, caller.cls)
            if cinfo is not None:
                hit = self._mro_lookup(cinfo, attr)
                if hit is not None:
                    return Resolution((hit,), True)
        # super().m(): start at the bases.
        if (isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super" and caller.cls):
            cinfo = self._class_by_name(caller.module, caller.cls)
            if cinfo is not None:
                hit = self._mro_lookup(cinfo, attr, skip_own=True)
                if hit is not None:
                    return Resolution((hit,), True)
            return _NO_TARGETS
        # Class.m(...) or module.f(...).
        if isinstance(receiver, ast.Name):
            cinfo = self._class_by_name(caller.module, receiver.id)
            if cinfo is not None:
                hit = self._mro_lookup(cinfo, attr)
                if hit is not None:
                    return Resolution((hit,), True)
            dotted = self._imports.get(caller.module, {}).get(receiver.id)
            if dotted:
                hits = [h for h in
                        self._dotted_candidates(f"{dotted}.{attr}")
                        if h in self.functions]
                if hits:
                    return Resolution(tuple(sorted(hits)), True)
        # Name-based fallback: every parsed method with this name.
        if attr.startswith("__"):
            return _NO_TARGETS
        candidates = self._methods_by_name.get(attr, ())
        if 0 < len(candidates) <= _FALLBACK_CAP:
            return Resolution(tuple(sorted(candidates)), False)
        return _NO_TARGETS

    # ------------------------------------------------------------------
    # edges and SCCs
    # ------------------------------------------------------------------
    def _build_edges(self) -> None:
        for qname, info in self.functions.items():
            confident: set = set()
            fallback: set = set()
            for call in iter_own_calls(info.node):
                res = self.resolve_call(info, call)
                (confident if res.confident else fallback).update(
                    res.targets)
            self.edges[qname] = tuple(sorted(confident))
            self.may_edges[qname] = tuple(sorted(fallback - confident))

    def sccs(self) -> List[List[str]]:
        """Strongly-connected components of the *confident* edge set, in
        reverse topological order (callees before callers) — the order
        summaries must be computed in."""
        index_of: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        counter = [0]
        out: List[List[str]] = []

        def strongconnect(v: str) -> None:
            # Iterative Tarjan (explicit stack) so deep call chains
            # cannot hit the recursion limit.
            work = [(v, 0)]
            while work:
                node, ei = work[-1]
                if ei == 0:
                    index_of[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack[node] = True
                advanced = False
                edges = self.edges.get(node, ())
                while ei < len(edges):
                    succ = edges[ei]
                    ei += 1
                    if succ not in index_of:
                        work[-1] = (node, ei)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if on_stack.get(succ):
                        low[node] = min(low[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if low[node] == index_of[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        scc.append(w)
                        if w == node:
                            break
                    out.append(sorted(scc))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        for qname in sorted(self.functions):
            if qname not in index_of:
                strongconnect(qname)
        return out


_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def iter_own_calls(func: ast.FunctionDef) -> Iterable[ast.Call]:
    """Call nodes in ``func``'s own body (no nested scopes)."""
    todo: List[ast.AST] = list(func.body)
    while todo:
        node = todo.pop()
        if isinstance(node, _SCOPES):
            continue
        if isinstance(node, ast.Call):
            yield node
        todo.extend(ast.iter_child_nodes(node))


def spawn_argument_calls(root: ast.AST) -> set:
    """ids of call nodes nested in the arguments of a ``*.process(...)``
    call — generators that run in a *separate* process, whose effects
    must not be charged to the spawning statement."""
    out: set = set()
    for node in ast.walk(root):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SPAWN_ATTRS):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    out.add(id(sub))
    return out
