"""Buffer-provenance dataflow for ``csar-lint`` (CSAR013–015).

The zero-copy payload path works because of one discipline: a numpy
buffer is *either* private and writable *or* shared and frozen, never
both.  This module proves each function keeps that discipline, with an
abstract domain over the per-function CFG
(:mod:`repro.analysis.cfg`) + worklist engine
(:func:`repro.analysis.dataflow.run_forward`) tracking, per local
variable, where its buffer came from:

``FROZEN_VIEW``
    aliases bytes some payload already shares: ``Payload.slice()``
    results, ``.data`` attribute loads, ``iter_segments()`` loop
    targets, anything a callee summary says returns a frozen view, and
    buffers after an explicit freeze (``_freeze``/
    ``flags.writeable = False`` — mutating those raises at run time).
``PRIVATE_WRITABLE``
    a fresh allocation this function owns: ``_writable_copy()``,
    ``.copy()``, ``np.zeros``/``np.empty``-family calls, or a callee
    that returns one.
``SHARED_SCRATCH``
    a reusable fold buffer that outlives the call (an attribute whose
    name contains ``scratch``, or a callee returning one).  Wrapping a
    scratch buffer in a ``Payload`` does not launder it — the alias
    persists.

The rules:

* **CSAR013** ``mutate-shared-view`` — an in-place mutation
  (``v[i] = x``, ``v += x``, ``out=v``, a mutating callee) or a thaw
  (``v.flags.writeable = True``) on a value that may be a frozen view;
* **CSAR014** ``writable-escape-without-freeze`` — a private writable
  buffer stored into an attribute/subscript/container or passed to a
  callee that retains it, with no dominating freeze (capturing into a
  ``Payload`` counts as freezing: its constructor freezes);
* **CSAR015** ``scratch-alias-across-yield`` — a shared-scratch
  reference live across an Event yield.

Interprocedural mode rides the same callgraph the lock summaries use:
:func:`build_buffer_summaries` condenses every function bottom-up into
a :class:`BufferSummary` (what it returns; which parameters it
mutates, thaws, or retains), substituted at call sites through
:func:`repro.analysis.summaries._binding`, and findings report
``caller -> helper`` witness chains exactly like CSAR010.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo, normalize_call
from repro.analysis.cfg import EXC, build_cfg
from repro.analysis.dataflow import _own_stmt_nodes, run_forward
from repro.analysis.rules import RULES
from repro.analysis.summaries import ChainLink, _binding

#: The provenance tags.
FROZEN_VIEW = "frozen-view"
PRIVATE_WRITABLE = "private-writable"
SHARED_SCRATCH = "shared-scratch"

#: ``np.<allocator>()`` calls returning a fresh writable array.
_NP_ALLOCATORS = frozenset((
    "zeros", "empty", "ones", "full", "arange",
    "zeros_like", "empty_like", "ones_like", "full_like"))
_NP_MODULES = ("np", "numpy")

#: Method calls returning a private writable buffer / a frozen view.
_PRIVATE_COPY_ATTRS = frozenset(("_writable_copy", "copy"))
_FROZEN_VIEW_ATTRS = frozenset(("slice",))

#: Payload constructors: capture *freezes* (kills PRIVATE_WRITABLE) but
#: does not launder SHARED_SCRATCH — the alias persists in the wrapper.
_PAYLOAD_CTORS = frozenset(("Payload", "SegmentedPayload"))

#: Container methods that retain a reference to their argument.
_CONTAINER_ADD_ATTRS = frozenset(("append", "add", "insert", "extend",
                                  "appendleft"))

#: Known freezing helpers (``_freeze(arr)`` in storage/payload.py).
_FREEZE_NAMES = frozenset(("_freeze",))

#: Known intra mutators: bare-name call -> index of the mutated arg.
_MUTATOR_CALLS = {"xor_into_at": 0}


def format_chain(prefix: Tuple, chain: Tuple) -> str:
    links = tuple(prefix) + tuple(chain)
    return " -> ".join(f"{qname} ({path}:{line})"
                       for qname, path, line in links)


# ----------------------------------------------------------------------
# domain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BufToken:
    """One provenance fact: variable ``var`` may hold a ``tag`` buffer
    born at ``line`` (with an interprocedural witness ``chain``)."""

    tid: int
    var: str
    tag: str
    line: int
    chain: Tuple[ChainLink, ...] = ()


@dataclass(frozen=True)
class ParamEffect:
    """One externally visible effect on a parameter's buffer."""

    param: str
    op: str                        # "mutate" | "thaw" | "retain"
    frozen: bool                   # retains: stored only after a freeze
    chain: Tuple[ChainLink, ...]   # chain[0] is this function's own site


@dataclass(frozen=True)
class ReturnTag:
    """One provenance the function's return value may carry."""

    tag: str
    chain: Tuple[ChainLink, ...]


@dataclass(frozen=True)
class BufferSummary:
    """The externally visible buffer behaviour of one function."""

    qname: str
    path: str
    returns: Tuple[ReturnTag, ...] = ()
    params: Tuple[ParamEffect, ...] = ()


@dataclass(frozen=True)
class BufFinding:
    """One rule violation, before lint.py turns it into a Finding."""

    code: str
    node: ast.AST
    message: str


class BufferContext:
    """Resolves one function's call sites against buffer summaries."""

    def __init__(self, graph: CallGraph,
                 summaries: Dict[str, BufferSummary],
                 info: FunctionInfo) -> None:
        self.graph = graph
        self.summaries = summaries
        self.info = info

    def resolve(self, call: ast.Call) -> List[
            Tuple[FunctionInfo, BufferSummary, Dict[str, ast.expr]]]:
        res = self.graph.resolve_call(self.info, call)
        if not res.confident or not res.targets:
            return []
        out = []
        for qname in res.targets:
            if qname in self.summaries and qname in self.graph.functions:
                callee = self.graph.functions[qname]
                out.append((callee, self.summaries[qname],
                            _binding(callee, call)))
        return out


# ----------------------------------------------------------------------
# the per-function analysis
# ----------------------------------------------------------------------
def _writeable_flag_target(target: ast.expr) -> Optional[str]:
    """The ``v`` of a ``v.flags.writeable = ...`` assignment target."""
    if (isinstance(target, ast.Attribute) and target.attr == "writeable"
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "flags"
            and isinstance(target.value.value, ast.Name)):
        return target.value.value.id
    return None


def _out_kwarg_var(call: ast.Call) -> Optional[str]:
    """The base variable of an ``out=...`` keyword (``np.bitwise_xor(...,
    out=dst)`` / ``out=dst[a:b]`` mutate ``dst`` in place)."""
    for kw in call.keywords:
        if kw.arg != "out":
            continue
        value = kw.value
        if isinstance(value, ast.Subscript):
            value = value.value
        if isinstance(value, ast.Name):
            return value.id
    return None


class BufferAnalysis:
    """Buffer-provenance dataflow over one function."""

    def __init__(self, func: ast.FunctionDef,
                 interproc: Optional[BufferContext] = None,
                 qname: Optional[str] = None, path: str = "") -> None:
        self.func = func
        self.interproc = interproc
        self.qname = qname or func.name
        self.path = path
        args = func.args
        self.params: List[str] = [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        self.tokens: List[BufToken] = []
        self._token_ids: Dict[Tuple, int] = {}
        self.cfg = build_cfg(func)
        self.facts = run_forward(self.cfg, self._transfer)

    # -- token plumbing -------------------------------------------------
    def _token(self, var: str, tag: str, line: int,
               chain: Tuple[ChainLink, ...] = ()) -> int:
        key = (var, tag, line, chain)
        tid = self._token_ids.get(key)
        if tid is None:
            tid = len(self.tokens)
            self._token_ids[key] = tid
            self.tokens.append(BufToken(tid, var, tag, line, chain))
        return tid

    def _live(self, fact: FrozenSet[int], var: str,
              tag: Optional[str] = None) -> List[BufToken]:
        return [self.tokens[t] for t in sorted(fact)
                if self.tokens[t].var == var
                and (tag is None or self.tokens[t].tag == tag)]

    def _kill(self, fact: FrozenSet[int],
              names: Iterable[str]) -> FrozenSet[int]:
        names = set(names)
        if not names:
            return fact
        return frozenset(t for t in fact
                         if self.tokens[t].var not in names)

    def _kill_tag(self, fact: FrozenSet[int], var: str,
                  tag: str) -> FrozenSet[int]:
        return frozenset(t for t in fact
                         if not (self.tokens[t].var == var
                                 and self.tokens[t].tag == tag))

    # -- provenance of an expression ------------------------------------
    def _rhs_tags(self, expr: ast.expr, fact: FrozenSet[int],
                  ) -> List[Tuple[str, Tuple[ChainLink, ...]]]:
        if isinstance(expr, ast.Name):
            return [(t.tag, t.chain) for t in sorted(
                (self.tokens[i] for i in fact if
                 self.tokens[i].var == expr.id),
                key=lambda t: t.tid)]
        if isinstance(expr, ast.Subscript):
            # A basic slice of an array is a *view*: same provenance.
            return self._rhs_tags(expr.value, fact)
        if isinstance(expr, ast.IfExp):
            return (self._rhs_tags(expr.body, fact)
                    + self._rhs_tags(expr.orelse, fact))
        if isinstance(expr, ast.Attribute):
            if expr.attr in ("data", "_data"):
                return [(FROZEN_VIEW, ())]
            if "scratch" in expr.attr:
                return [(SHARED_SCRATCH, ())]
            return []
        if isinstance(expr, ast.Call):
            return self._call_tags(expr, fact)
        return []

    def _call_tags(self, call: ast.Call, fact: FrozenSet[int],
                   ) -> List[Tuple[str, Tuple[ChainLink, ...]]]:
        recv, attr, bare = normalize_call(call)
        if attr in _FROZEN_VIEW_ATTRS:
            return [(FROZEN_VIEW, ())]
        if attr in _PRIVATE_COPY_ATTRS:
            return [(PRIVATE_WRITABLE, ())]
        if (attr in _NP_ALLOCATORS and isinstance(recv, ast.Name)
                and recv.id in _NP_MODULES):
            return [(PRIVATE_WRITABLE, ())]
        if (bare or attr) in _PAYLOAD_CTORS:
            # Payload capture freezes private buffers but keeps a live
            # alias: only scratch provenance survives the wrap.
            out = []
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for tag, chain in self._rhs_tags(arg, fact):
                    if tag == SHARED_SCRATCH:
                        out.append((tag, chain))
            return out
        if self.interproc is not None:
            out = []
            for _callee, summary, _mapping in self.interproc.resolve(call):
                out.extend((rt.tag, rt.chain) for rt in summary.returns)
            return out
        return []

    # -- transfer function ----------------------------------------------
    def _transfer(self, node_index: int, fact: FrozenSet[int],
                  kind: str) -> FrozenSet[int]:
        if kind == EXC:
            # Aborted statements never completed their effects.
            return fact
        node = self.cfg.nodes[node_index]
        if node.stmt is None or node.label != "stmt":
            return fact
        return self._apply(node.stmt, fact)

    def _apply(self, stmt: ast.stmt,
               fact: FrozenSet[int]) -> FrozenSet[int]:
        # ``_freeze(v)`` anywhere in the statement freezes v below it —
        # and so does handing v to a Payload constructor, which freezes
        # its buffer argument in place before capturing it.
        for node in _own_stmt_nodes(stmt):
            if not isinstance(node, ast.Call):
                continue
            _recv, attr, bare = normalize_call(node)
            name = bare or attr
            if name in _FREEZE_NAMES or name in _PAYLOAD_CTORS:
                for arg in node.args:
                    if not isinstance(arg, ast.Name):
                        continue
                    if (name in _PAYLOAD_CTORS
                            and not self._live(fact, arg.id,
                                               PRIVATE_WRITABLE)):
                        # Only retag arguments known to be private
                        # buffers: Payload(length, buf) also takes plain
                        # ints, and a SCRATCH argument stays scratch —
                        # its owner can thaw it again after the wrap.
                        continue
                    fact = self._kill_tag(fact, arg.id,
                                          PRIVATE_WRITABLE)
                    fact = fact | {self._token(arg.id, FROZEN_VIEW,
                                               stmt.lineno)}

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            names = [n.id for n in ast.walk(stmt.target)
                     if isinstance(n, ast.Name)]
            fact = self._kill(fact, names)
            if names and isinstance(stmt.iter, ast.Call):
                _recv, attr, _bare = normalize_call(stmt.iter)
                if attr == "iter_segments":
                    # ``for at, seg in p.iter_segments()``: each segment
                    # is a read-only view of the payload's bytes.
                    fact = fact | {self._token(names[-1], FROZEN_VIEW,
                                               stmt.lineno)}
            return fact

        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            flag_var = _writeable_flag_target(target)
            if flag_var is not None:
                if (isinstance(stmt.value, ast.Constant)
                        and stmt.value.value is False):
                    # Freeze: the buffer is now safely shareable (and
                    # mutating it would raise) — retag as frozen.
                    fact = self._kill_tag(fact, flag_var,
                                          PRIVATE_WRITABLE)
                    fact = fact | {self._token(flag_var, FROZEN_VIEW,
                                               stmt.lineno)}
                return fact
            if isinstance(target, ast.Name):
                gens = self._rhs_tags(stmt.value, fact)
                fact = self._kill(fact, (target.id,))
                for tag, chain in gens:
                    fact = fact | {self._token(target.id, tag,
                                               stmt.lineno, chain)}
                return fact
            if isinstance(target, (ast.Tuple, ast.List)):
                return self._kill(fact, (e.id for e in target.elts
                                         if isinstance(e, ast.Name)))
            return fact

        if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)) \
                and isinstance(stmt.target, ast.Name):
            if isinstance(stmt, ast.AnnAssign):
                if stmt.value is None:
                    return fact
                gens = self._rhs_tags(stmt.value, fact)
                fact = self._kill(fact, (stmt.target.id,))
                return fact | {self._token(stmt.target.id, tag,
                                           stmt.lineno, chain)
                               for tag, chain in gens}
            # AugAssign mutates in place: provenance unchanged.
            return fact
        return fact

    # ------------------------------------------------------------------
    # statement-level observations (shared by findings and summaries)
    # ------------------------------------------------------------------
    def _mutated_vars(self, stmt: ast.stmt) -> List[Tuple[str, str]]:
        """``(var, how)`` pairs this statement mutates in place."""
        out: List[Tuple[str, str]] = []
        if isinstance(stmt, ast.AugAssign):
            target = stmt.target
            if isinstance(target, ast.Subscript):
                target = target.value
            if isinstance(target, ast.Name):
                out.append((target.id, "augmented assignment"))
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name):
                    out.append((target.value.id, "subscript store"))
        for node in _own_stmt_nodes(stmt):
            if not isinstance(node, ast.Call):
                continue
            var = _out_kwarg_var(node)
            if var is not None:
                out.append((var, "out= argument"))
            _recv, _attr, bare = normalize_call(node)
            arg_index = _MUTATOR_CALLS.get(bare or "")
            if arg_index is not None and len(node.args) > arg_index:
                arg = node.args[arg_index]
                if isinstance(arg, ast.Name):
                    out.append((arg.id, f"{bare}()"))
        return out

    def _thawed_vars(self, stmt: ast.stmt) -> List[str]:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            var = _writeable_flag_target(stmt.targets[0])
            if var is not None and not (
                    isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is False):
                return [var]
        return []

    def _stored_names(self, stmt: ast.stmt) -> List[Tuple[str, ast.AST]]:
        """Names this statement stores somewhere that outlives it."""
        out: List[Tuple[str, ast.AST]] = []
        if isinstance(stmt, ast.Assign):
            stored = any(isinstance(t, (ast.Attribute, ast.Subscript))
                         and _writeable_flag_target(t) is None
                         for t in stmt.targets)
            if stored and isinstance(stmt.value, ast.Name):
                out.append((stmt.value.id, stmt.value))
        for node in _own_stmt_nodes(stmt):
            if not isinstance(node, ast.Call):
                continue
            _recv, attr, _bare = normalize_call(node)
            if attr not in _CONTAINER_ADD_ATTRS:
                continue
            for arg in node.args:
                elts = arg.elts if isinstance(arg, (ast.Tuple, ast.List)) \
                    else [arg]
                out.extend((e.id, e) for e in elts
                           if isinstance(e, ast.Name))
        return out

    def _own_calls(self, stmt: ast.stmt) -> List[ast.Call]:
        return [n for n in _own_stmt_nodes(stmt)
                if isinstance(n, ast.Call)]

    def _has_yield(self, stmt: ast.stmt) -> bool:
        return any(isinstance(n, (ast.Yield, ast.YieldFrom))
                   for n in _own_stmt_nodes(stmt))

    def _stmt_facts(self) -> Iterable[Tuple[ast.stmt, FrozenSet[int]]]:
        """Each reachable statement with its IN fact (deduplicated —
        ``finally`` copies visit the same statement several times)."""
        seen: Dict[int, FrozenSet[int]] = {}
        order: List[ast.stmt] = []
        for node in self.cfg.nodes:
            if node.label != "stmt" or node.stmt is None:
                continue
            fact = self.facts.get(node.index)
            if fact is None:
                continue
            key = id(node.stmt)
            if key in seen:
                seen[key] = seen[key] | fact
            else:
                seen[key] = fact
                order.append(node.stmt)
        for stmt in order:
            yield stmt, seen[id(stmt)]

    # ------------------------------------------------------------------
    # the rules
    # ------------------------------------------------------------------
    def findings(self) -> List[BufFinding]:
        out: List[BufFinding] = []
        reported: Set[Tuple] = set()

        def report(code: str, node: ast.AST, dedupe: Tuple,
                   message: str) -> None:
            if dedupe in reported:
                return
            reported.add(dedupe)
            out.append(BufFinding(
                code, node, f"{message} [fix: {RULES[code].fixit}]"))

        for stmt, fact in self._stmt_facts():
            # CSAR013: thaw of a may-frozen view.
            for var in self._thawed_vars(stmt):
                for token in self._live(fact, var, FROZEN_VIEW):
                    report(
                        "CSAR013", stmt, (id(stmt), "thaw", var),
                        f"flags.writeable = True on '{var}', which may "
                        f"alias a frozen payload view"
                        + self._via(token))
            # CSAR013: in-place mutation of a may-frozen view.
            for var, how in self._mutated_vars(stmt):
                for token in self._live(fact, var, FROZEN_VIEW):
                    report(
                        "CSAR013", stmt, (id(stmt), "mutate", var, how),
                        f"in-place mutation ({how}) of '{var}', which "
                        f"may alias a frozen payload view"
                        + self._via(token))
            # CSAR014: raw escape of a private writable buffer.
            for var, node in self._stored_names(stmt):
                for token in self._live(fact, var, PRIVATE_WRITABLE):
                    report(
                        "CSAR014", stmt, (id(stmt), "escape", var),
                        f"private writable buffer '{var}' escapes with "
                        f"no dominating freeze" + self._via(token))
            # Interprocedural: callee effects on our buffers.
            for call in self._own_calls(stmt):
                self._check_call(call, stmt, fact, report)
            # CSAR015: scratch alias live across a yield.
            if self._has_yield(stmt):
                scratch = [self.tokens[t] for t in sorted(fact)
                           if self.tokens[t].tag == SHARED_SCRATCH]
                for token in scratch:
                    report(
                        "CSAR015", stmt, (id(stmt), "yield", token.var),
                        f"'{token.var}' aliases a shared scratch buffer "
                        f"and is live across this yield"
                        + self._via(token))
        return out

    def _via(self, token: BufToken) -> str:
        if not token.chain:
            return ""
        chain = format_chain(
            ((self.qname, self.path, token.line),), token.chain)
        return f": provenance {chain}"

    def _check_call(self, call: ast.Call, stmt: ast.stmt,
                    fact: FrozenSet[int], report) -> None:
        if self.interproc is None:
            return
        _recv, attr, bare = normalize_call(call)
        if (bare or attr) in _PAYLOAD_CTORS:
            return  # modelled as a freezing capture in _call_tags
        for _callee, summary, mapping in self.interproc.resolve(call):
            for effect in summary.params:
                actual = mapping.get(effect.param)
                if not isinstance(actual, ast.Name):
                    continue
                var = actual.id
                chain = format_chain(
                    ((self.qname, self.path, call.lineno),),
                    effect.chain)
                if effect.op in ("mutate", "thaw") \
                        and self._live(fact, var, FROZEN_VIEW):
                    report(
                        "CSAR013", call,
                        (id(stmt), "call", var, effect.op,
                         summary.qname),
                        f"'{var}' may alias a frozen payload view and "
                        f"is {'thawed' if effect.op == 'thaw' else 'mutated in place'} "
                        f"by a callee: {chain}")
                elif effect.op == "retain" and not effect.frozen \
                        and self._live(fact, var, PRIVATE_WRITABLE):
                    report(
                        "CSAR014", call,
                        (id(stmt), "call", var, "retain",
                         summary.qname),
                        f"private writable buffer '{var}' is retained "
                        f"unfrozen by a callee: {chain}")

    # ------------------------------------------------------------------
    # summary extraction
    # ------------------------------------------------------------------
    def return_tags(self) -> Tuple[ReturnTag, ...]:
        out: Dict[Tuple, ReturnTag] = {}
        for node in self.cfg.nodes:
            if node.label != "stmt" or not isinstance(node.stmt,
                                                      ast.Return):
                continue
            fact = self.facts.get(node.index)
            if fact is None or node.stmt.value is None:
                continue
            site: ChainLink = (self.qname, self.path, node.stmt.lineno)
            for tag, chain in self._rhs_tags(node.stmt.value, fact):
                key = (tag, chain)
                if key not in out:
                    out[key] = ReturnTag(tag, (site,) + tuple(chain))
        return tuple(out.values())

    def param_effects(self) -> Tuple[ParamEffect, ...]:
        params = set(self.params)
        out: Dict[Tuple, ParamEffect] = {}

        def add(effect: ParamEffect) -> None:
            key = (effect.param, effect.op)
            if key not in out:
                out[key] = effect
            elif effect.op == "retain" and not effect.frozen \
                    and out[key].frozen:
                out[key] = effect  # an unfrozen retain is the riskier one

        for stmt, fact in self._stmt_facts():
            site: ChainLink = (self.qname, self.path, stmt.lineno)
            for var in self._thawed_vars(stmt):
                if var in params:
                    add(ParamEffect(var, "thaw", False, (site,)))
            for var, _how in self._mutated_vars(stmt):
                if var in params:
                    add(ParamEffect(var, "mutate", False, (site,)))
            for var, _node in self._stored_names(stmt):
                if var in params:
                    frozen = bool(self._live(fact, var, FROZEN_VIEW))
                    add(ParamEffect(var, "retain", frozen, (site,)))
            if self.interproc is None:
                continue
            for call in self._own_calls(stmt):
                _recv, attr, bare = normalize_call(call)
                if (bare or attr) in _PAYLOAD_CTORS:
                    continue  # freezing capture, not a raw retain
                call_site: ChainLink = (self.qname, self.path,
                                        call.lineno)
                for _callee, summary, mapping in \
                        self.interproc.resolve(call):
                    for effect in summary.params:
                        actual = mapping.get(effect.param)
                        if not isinstance(actual, ast.Name) \
                                or actual.id not in params:
                            continue
                        frozen = effect.frozen or (
                            effect.op == "retain" and bool(
                                self._live(fact, actual.id,
                                           FROZEN_VIEW)))
                        add(ParamEffect(
                            actual.id, effect.op, frozen,
                            (call_site,) + tuple(effect.chain)))
        return tuple(out.values())


# ----------------------------------------------------------------------
# whole-program summaries
# ----------------------------------------------------------------------
def summarize_buffer_function(info: FunctionInfo, graph: CallGraph,
                              summaries: Dict[str, BufferSummary],
                              ) -> BufferSummary:
    ctx = BufferContext(graph, summaries, info)
    analysis = BufferAnalysis(info.node, interproc=ctx,
                              qname=info.qname, path=info.path)
    return BufferSummary(qname=info.qname, path=info.path,
                         returns=analysis.return_tags(),
                         params=analysis.param_effects())


def build_buffer_summaries(graph: CallGraph) -> Dict[str, BufferSummary]:
    """Buffer summaries for every function, bottom-up over the SCCs."""
    summaries: Dict[str, BufferSummary] = {}
    for scc in graph.sccs():
        cyclic = len(scc) > 1 or any(
            q in graph.edges.get(q, ()) for q in scc)
        for _round in range(2 if cyclic else 1):
            for qname in scc:
                info = graph.functions[qname]
                summaries[qname] = summarize_buffer_function(
                    info, graph, summaries)
    return summaries


def buffer_summaries(program) -> Dict[str, BufferSummary]:
    """The (memoized) buffer summaries of one lint run's Program."""
    cached = getattr(program, "_buffer_summaries", None)
    if cached is None:
        cached = build_buffer_summaries(program.graph)
        program._buffer_summaries = cached
    return cached


def buffer_context_for(program,
                       func: ast.FunctionDef) -> Optional[BufferContext]:
    """An interproc hook for a function of ``program``'s parse."""
    info = program.graph.info_of(func)
    if info is None:
        return None
    return BufferContext(program.graph, buffer_summaries(program), info)
