"""ParitySan: a runtime sanitizer for the redundancy invariants.

LockSan (:mod:`repro.analysis.locksan`) checks the *protocol*; ParitySan
checks the *state* the protocol exists to protect.  When installed
(:func:`install`, the CLI's ``run --sanitize=parity``, or the
``CSAR_PARITYSAN=1`` environment variable honored by the test suite's
``conftest``), every new :class:`~repro.sim.engine.Environment` gets a
:class:`ParitySan` attached as ``env.paritysan`` and each
:class:`~repro.csar.system.System` registers itself via :meth:`attach`.

At configurable sync points it asserts:

* **parity == XOR of live stripe blocks** for RAID5/Hybrid files (and
  mirror equality for RAID1) — reusing the offline scrub's oracles,
  only when the system runs in ``content_mode``;
* **overflow entries shadow, never alias, home blocks** — the
  structural :meth:`~repro.redundancy.overflow.OverflowTable.check_invariants`
  self-check on every overflow and overflow-mirror table (content mode
  not required);
* **post-recovery / post-scrub consistency** — a hook at the end of
  :func:`~repro.redundancy.recovery.rebuild_server` and after every
  :func:`~repro.redundancy.scrub.scrub` pass.

Sync points and their callers:

========================  ==============================================
``on_quiescent()``        ``System.run()`` after the awaited processes
                          finish (the primary check; background flushers
                          keep the heap alive, so full drains are rare)
``on_run_complete()``     ``Environment.run`` when the heap drains
``on_recovery(index)``    end of ``rebuild_server``
``on_scrub(name, i)``     every offline scrub pass (records the scrub's
                          own findings as violations)
``on_write_start/
on_write_complete``       around each top-level redundancy write; with
                          ``per_write=True`` a full check runs whenever
                          the in-flight count returns to zero
========================  ==============================================

Checks are skipped while writes are in flight or any server is failed —
those windows are legitimately inconsistent (that is what recovery is
for).  Violations *collect* as :class:`ParitySanReport` entries (swept
by :func:`drain_reports`); pass ``strict=True`` to raise
:class:`~repro.errors.ParitySanError` on the first one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.analysis import SanitizerRegistry
from repro.errors import ParitySanError

#: Every live sanitizer; drains sweep reports but keep the sanitizer
#: registered, so reports made after a drain are still seen.
_REGISTRY = SanitizerRegistry("paritysan")


@dataclass(frozen=True)
class ParitySanReport:
    """One observed redundancy-invariant violation."""

    kind: str                 # "parity" | "mirror" | "overflow-mirror" |
                              # "overflow-structure" | "scrub"
    message: str
    file: Optional[str]
    sync_point: str

    def format(self) -> str:
        return (f"ParitySan[{self.kind}] at {self.sync_point}: "
                f"{self.message}")


class ParitySan:
    """Per-:class:`Environment` redundancy-invariant sanitizer."""

    def __init__(self, strict: bool = False,
                 per_write: bool = False) -> None:
        self.strict = strict
        self.per_write = per_write
        self.reports: List[ParitySanReport] = []
        self._system: Optional[Any] = None
        self._inflight = 0
        _REGISTRY.register(self)

    # ------------------------------------------------------------------
    def attach(self, system: Any) -> None:
        """Called by :class:`System` so checks can reach cluster state."""
        self._system = system

    def _report(self, kind: str, message: str, file: Optional[str],
                sync_point: str) -> None:
        report = ParitySanReport(kind, message, file, sync_point)
        self.reports.append(report)
        if self.strict:
            raise ParitySanError(report.format())

    # ------------------------------------------------------------------
    # sync points
    # ------------------------------------------------------------------
    def on_quiescent(self) -> None:
        self._check_all("quiescent")

    def on_run_complete(self) -> None:
        self._check_all("run-complete")

    def on_recovery(self, index: int) -> None:
        self._check_all(f"post-recovery(server {index})")

    def on_scrub(self, name: str, issues: List[str]) -> None:
        for issue in issues:
            self._report("scrub", issue, name, f"scrub({name})")

    def on_write_start(self, name: str) -> None:
        self._inflight += 1

    def on_write_complete(self, name: str) -> None:
        self._inflight -= 1
        if self.per_write and self._inflight == 0:
            self._check_all(f"post-write({name})")

    # ------------------------------------------------------------------
    # the checks
    # ------------------------------------------------------------------
    def _check_all(self, sync_point: str) -> None:
        system = self._system
        if system is None or self._inflight:
            return
        self._check_overflow_structure(system, sync_point)
        if not system.config.content_mode:
            return
        if any(iod.failed for iod in system.iods):
            # Degraded state is legitimately inconsistent until rebuilt.
            return
        self._check_content(system, sync_point)

    def _check_overflow_structure(self, system: Any,
                                  sync_point: str) -> None:
        for iod in system.iods:
            for name, table in iod.overflow.items():
                for issue in table.check_invariants():
                    self._report(
                        "overflow-structure",
                        f"server {iod.index} overflow[{name}]: {issue}",
                        name, sync_point)
            for (name, origin), table in iod.overflow_mirror.items():
                for issue in table.check_invariants():
                    self._report(
                        "overflow-structure",
                        f"server {iod.index} overflow-mirror"
                        f"[{name} origin {origin}]: {issue}",
                        name, sync_point)

    def _check_content(self, system: Any, sync_point: str) -> None:
        from repro.redundancy import scrub

        for name, meta in system.manager.files.items():
            scheme = meta.scheme
            if scheme == "raid1":
                for issue in scrub.check_mirrors(system, name):
                    self._report("mirror", issue, name, sync_point)
            elif scheme in ("raid5", "hybrid"):
                for issue in scrub.check_parity(system, name):
                    self._report("parity", issue, name, sync_point)
                if scheme == "hybrid":
                    for issue in scrub.check_overflow_mirrors(system,
                                                              name):
                        self._report("overflow-mirror", issue, name,
                                     sync_point)


# ----------------------------------------------------------------------
# global installation
# ----------------------------------------------------------------------
def install(strict: bool = False, per_write: bool = False) -> None:
    """Attach a fresh ParitySan to every Environment created from now
    on."""
    from repro.sim import engine

    engine.set_paritysan_factory(
        lambda: ParitySan(strict=strict, per_write=per_write))


def uninstall() -> None:
    """Stop sanitizing new Environments."""
    from repro.sim import engine

    engine.set_paritysan_factory(None)


def installed() -> bool:
    from repro.sim import engine

    return engine.paritysan_factory() is not None


def drain_reports() -> List[ParitySanReport]:
    """Collect (and clear) reports from every live sanitizer."""
    return _REGISTRY.drain()
