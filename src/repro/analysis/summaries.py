"""Per-function lock-effect summaries for interprocedural ``csar-lint``.

For every function in a :class:`~repro.analysis.callgraph.CallGraph`,
this module runs the existing CFG + lock-ownership dataflow
(:class:`~repro.analysis.dataflow.LockAnalysis`) and condenses the
result into a :class:`LockEffectSummary`:

* **acquired** — lock keys the function can still hold on a normal
  exit (its net-positive lock delta), each with the witness call chain
  down to the raw acquire site;
* **released** — keys the function releases but did not itself acquire
  (helper-release idiom), split into *must* (released on every normal
  path) and *may* (conditional);
* **held_at_raise** — keys that may be held when an exception
  propagates out;
* **yields_while_held** — keys held across at least one yield;
* **io_yield** — whether the function (transitively, through confident
  call edges) yields on long-latency I/O
  (``rpc``/``get``/``stream``/``transfer``/``send``/``recv``);
* **escaping** — request variables whose ownership escapes (the
  protocol-carried idiom);
* **order_edges** — acquires-while-holding pairs feeding the global
  lock-order graph (CSAR011), including loop-carried descending
  acquisition.

Summaries are computed bottom-up over the call graph's
strongly-connected components; cyclic components get one refinement
round with their first-pass summaries visible.  At a call site, a
callee's summary is *substituted*: formal parameter names in its lock
keys are rewritten to the caller's actual argument expressions (and
``self`` to the receiver), so ``iod.locks.acquire(name, g, xid)`` in a
helper becomes ``client.iods[0].locks.acquire(meta.name, g, xid)`` in
the caller — textually comparable with the caller's own releases.

Everything round-trips through JSON (:func:`summaries_to_json` /
:func:`summaries_from_json`, ``schema_version``
:data:`SUMMARY_SCHEMA_VERSION`).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph, FunctionInfo, PRIMITIVE_ATTRS, normalize_call,
    spawn_argument_calls)
from repro.analysis.cfg import EXC
from repro.analysis.dataflow import LockAnalysis, run_forward

#: Version of the summaries JSON payload.
SUMMARY_SCHEMA_VERSION = 1

#: Yielded call names counted as long-latency non-lock I/O (CSAR007).
IO_YIELD_NAMES = frozenset(("rpc", "get", "stream", "transfer", "send",
                            "recv"))

#: One step of a witness call chain: (qname, path, line).
ChainLink = Tuple[str, str, int]


# ----------------------------------------------------------------------
# summary data model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LockKey:
    """A lock identified by its receiver and argument texts."""

    receiver: str
    args: Tuple[str, ...]

    def format(self) -> str:
        return f"{self.receiver}.acquire({', '.join(self.args)})"


@dataclass(frozen=True)
class AcquiredLock:
    """A key the function may still hold when it returns."""

    key: LockKey
    kind: str                      # "acquire" | "request"
    returned: bool                 # ownership handed back via ``return``
    chain: Tuple[ChainLink, ...]   # chain[0] is this function's own site


@dataclass(frozen=True)
class ReleasedLock:
    """A key the function releases without having acquired it."""

    key: LockKey
    must: bool                     # released on every normal path


@dataclass(frozen=True)
class OrderEdge:
    """One acquires-while-holding observation (file-matched)."""

    file_text: str
    held: str                      # group expression of the held lock
    acquired: str                  # group expression being acquired
    descending: bool               # statically violates ascending order
    loop_carried: bool             # same site, descending loop
    path: str
    line: int
    chain: Tuple[ChainLink, ...]


@dataclass(frozen=True)
class LockEffectSummary:
    """The externally-visible lock behaviour of one function."""

    qname: str
    path: str
    acquired: Tuple[AcquiredLock, ...] = ()
    released: Tuple[ReleasedLock, ...] = ()
    held_at_raise: Tuple[LockKey, ...] = ()
    yields_while_held: Tuple[LockKey, ...] = ()
    io_yield: bool = False
    escaping: Tuple[str, ...] = ()
    order_edges: Tuple[OrderEdge, ...] = ()

    @property
    def net_delta(self) -> int:
        """Locks this function may add to its caller's held set."""
        return len(self.acquired)

    def to_dict(self) -> dict:
        return {
            "qname": self.qname,
            "path": self.path,
            "acquired": [
                {"receiver": a.key.receiver, "args": list(a.key.args),
                 "kind": a.kind, "returned": a.returned,
                 "chain": [list(link) for link in a.chain]}
                for a in self.acquired],
            "released": [
                {"receiver": r.key.receiver, "args": list(r.key.args),
                 "must": r.must} for r in self.released],
            "held_at_raise": [
                {"receiver": k.receiver, "args": list(k.args)}
                for k in self.held_at_raise],
            "yields_while_held": [
                {"receiver": k.receiver, "args": list(k.args)}
                for k in self.yields_while_held],
            "io_yield": self.io_yield,
            "escaping": list(self.escaping),
            "order_edges": [
                {"file": e.file_text, "held": e.held,
                 "acquired": e.acquired, "descending": e.descending,
                 "loop_carried": e.loop_carried, "path": e.path,
                 "line": e.line,
                 "chain": [list(link) for link in e.chain]}
                for e in self.order_edges],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LockEffectSummary":
        def key(d: dict) -> LockKey:
            return LockKey(d["receiver"], tuple(d["args"]))

        def chain(items) -> Tuple[ChainLink, ...]:
            return tuple((q, p, int(ln)) for q, p, ln in items)

        return cls(
            qname=data["qname"],
            path=data["path"],
            acquired=tuple(
                AcquiredLock(key(a), a["kind"], a["returned"],
                             chain(a["chain"]))
                for a in data.get("acquired", ())),
            released=tuple(
                ReleasedLock(key(r), r["must"])
                for r in data.get("released", ())),
            held_at_raise=tuple(
                key(k) for k in data.get("held_at_raise", ())),
            yields_while_held=tuple(
                key(k) for k in data.get("yields_while_held", ())),
            io_yield=bool(data.get("io_yield", False)),
            escaping=tuple(data.get("escaping", ())),
            order_edges=tuple(
                OrderEdge(e["file"], e["held"], e["acquired"],
                          e["descending"], e["loop_carried"], e["path"],
                          int(e["line"]), chain(e["chain"]))
                for e in data.get("order_edges", ())),
        )


def summaries_to_json(summaries: Dict[str, LockEffectSummary]) -> str:
    return json.dumps(
        {"schema_version": SUMMARY_SCHEMA_VERSION,
         "summaries": [summaries[q].to_dict() for q in sorted(summaries)]},
        indent=2)


def summaries_from_json(text: str) -> Dict[str, LockEffectSummary]:
    data = json.loads(text)
    version = data.get("schema_version")
    if version != SUMMARY_SCHEMA_VERSION:
        raise ValueError(f"unsupported summaries schema_version "
                         f"{version!r} (expected {SUMMARY_SCHEMA_VERSION})")
    out = {}
    for item in data.get("summaries", ()):
        summary = LockEffectSummary.from_dict(item)
        out[summary.qname] = summary
    return out


# ----------------------------------------------------------------------
# call-site effects (what the dataflow consumes)
# ----------------------------------------------------------------------
@dataclass
class CallSiteEffects:
    """A callee summary set, substituted into the caller's namespace."""

    call: ast.Call
    acquired: Tuple[AcquiredLock, ...]
    released: Tuple[ReleasedLock, ...]
    io_yield: bool


class _Substituter(ast.NodeTransformer):
    def __init__(self, mapping: Dict[str, ast.expr]) -> None:
        self.mapping = mapping

    def visit_Name(self, node: ast.Name):  # noqa: N802 (ast API)
        rep = self.mapping.get(node.id)
        return ast.copy_location(rep, node) if rep is not None else node


def substitute_text(text: str, mapping: Dict[str, ast.expr]) -> str:
    """Rewrite formal-parameter names in an unparsed expression."""
    if not mapping:
        return text
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError:
        return text
    new = _Substituter(mapping).visit(tree.body)
    return ast.unparse(new)


def _binding(callee: FunctionInfo, call: ast.Call) -> Dict[str, ast.expr]:
    """Map the callee's formal parameter names to actual argument ASTs."""
    args_node = callee.node.args
    formals = [a.arg for a in args_node.posonlyargs + args_node.args]
    mapping: Dict[str, ast.expr] = {}
    actuals = list(call.args)
    receiver, _attr, _bare = normalize_call(call)
    if (formals and formals[0] in ("self", "cls") and callee.cls
            and receiver is not None
            and not (isinstance(receiver, ast.Call)
                     and isinstance(receiver.func, ast.Name)
                     and receiver.func.id == "super")):
        mapping[formals[0]] = receiver
        formals = formals[1:]
    for formal, actual in zip(formals, actuals):
        mapping[formal] = actual
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in set(formals):
            mapping[kw.arg] = kw.value
    # Unbound formals fall back to their defaults, right-aligned.
    defaults = args_node.defaults
    if defaults:
        defaulted = formals[len(formals) - len(defaults):] \
            if len(defaults) <= len(formals) else formals
        for formal, default in zip(defaulted,
                                   defaults[-len(defaulted):]):
            mapping.setdefault(formal, default)
    return mapping


def _substitute_key(key: LockKey, mapping: Dict[str, ast.expr]) -> LockKey:
    return LockKey(substitute_text(key.receiver, mapping),
                   tuple(substitute_text(a, mapping) for a in key.args))


class InterprocContext:
    """Resolves one function's call sites against computed summaries.

    Handed to :class:`~repro.analysis.dataflow.LockAnalysis` as its
    ``interproc`` hook; only *confident* call-graph edges contribute
    (see :mod:`repro.analysis.callgraph`).  Callees without a summary
    yet (first pass of a cyclic SCC) contribute nothing.
    """

    def __init__(self, graph: CallGraph,
                 summaries: Dict[str, LockEffectSummary],
                 info: FunctionInfo) -> None:
        self.graph = graph
        self.summaries = summaries
        self.info = info

    def call_effects(self, call: ast.Call) -> Optional[CallSiteEffects]:
        res = self.graph.resolve_call(self.info, call)
        if not res.confident or not res.targets:
            return None
        targets = [(self.graph.functions[q], self.summaries[q])
                   for q in res.targets
                   if q in self.summaries and q in self.graph.functions]
        if not targets:
            return None
        acquired: Dict[Tuple[str, Tuple[str, ...], str], AcquiredLock] = {}
        released: Dict[LockKey, bool] = {}
        released_in_all: Dict[LockKey, int] = {}
        io_yield = False
        for callee, summary in targets:
            mapping = _binding(callee, call)
            io_yield = io_yield or summary.io_yield
            for acq in summary.acquired:
                key = _substitute_key(acq.key, mapping)
                ident = (key.receiver, key.args, acq.kind)
                if ident not in acquired:
                    acquired[ident] = AcquiredLock(
                        key, acq.kind, acq.returned, acq.chain)
            for rel in summary.released:
                key = _substitute_key(rel.key, mapping)
                released[key] = released.get(key, False) or rel.must
                if rel.must:
                    released_in_all[key] = released_in_all.get(key, 0) + 1
        if not acquired and not released and not io_yield:
            return None
        # A release is only *must* at this call site when every possible
        # callee must-releases it.
        rel_out = tuple(
            ReleasedLock(key, released_in_all.get(key, 0) == len(targets))
            for key in released)
        return CallSiteEffects(call, tuple(acquired.values()), rel_out,
                               io_yield)


# ----------------------------------------------------------------------
# group/file argument helpers (shared with the CSAR011 checker)
# ----------------------------------------------------------------------
_KWARG = re.compile(r"^[A-Za-z_]\w*=(?!=)")


def file_text_of(args: Tuple[str, ...]) -> Optional[str]:
    """The ``file`` argument text of an ``acquire(file, group, xid)``."""
    for arg in args:
        if arg.startswith("file="):
            return arg[len("file="):]
    if args and not _KWARG.match(args[0]):
        return args[0]
    return None


def group_text_of(args: Tuple[str, ...]) -> Optional[str]:
    """The ``group`` argument text of an ``acquire(file, group, xid)``."""
    for arg in args:
        if arg.startswith("group="):
            return arg[len("group="):]
    if len(args) >= 2 and not _KWARG.match(args[1]):
        return args[1]
    return None


def group_value(text: Optional[str]) -> Optional[int]:
    if text is None:
        return None
    try:
        value = ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return None
    return value if isinstance(value, int) else None


def _loop_direction(func: ast.FunctionDef,
                    stmt: ast.stmt) -> Optional[str]:
    """Direction of the innermost literal-direction loop around ``stmt``
    (``"asc"`` / ``"desc"`` / None)."""
    best: Optional[ast.For] = None
    for node in ast.walk(func):
        if not isinstance(node, ast.For):
            continue
        if any(sub is stmt for body_stmt in node.body
               for sub in ast.walk(body_stmt)):
            if best is None or node.lineno >= best.lineno:
                best = node
    if best is None:
        return None
    it = best.iter
    if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
            and it.func.id == "range"):
        if len(it.args) < 3:
            return "asc"
        step = it.args[2]
        if isinstance(step, ast.UnaryOp) and isinstance(step.op, ast.USub):
            return "desc"
        if isinstance(step, ast.Constant) and isinstance(step.value, int):
            return "desc" if step.value < 0 else "asc"
        return None
    if isinstance(it, (ast.Tuple, ast.List)):
        values = []
        for elt in it.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, int)):
                return None
            values.append(elt.value)
        if len(values) >= 2:
            if values == sorted(values):
                return "asc"
            if values == sorted(values, reverse=True):
                return "desc"
    return None


# ----------------------------------------------------------------------
# summarizing one function
# ----------------------------------------------------------------------
def yielded_calls(func: ast.FunctionDef) -> List[ast.Call]:
    """Calls that are the value of a ``yield``/``yield from`` in
    ``func``'s own body (not nested scopes)."""
    scopes = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
              ast.ClassDef)
    out: List[ast.Call] = []
    todo: List[ast.AST] = list(func.body)
    while todo:
        node = todo.pop()
        if isinstance(node, scopes):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)) \
                and isinstance(node.value, ast.Call):
            out.append(node.value)
        todo.extend(ast.iter_child_nodes(node))
    return out


def _own_io_yield(func: ast.FunctionDef) -> bool:
    for call in yielded_calls(func):
        _recv, attr, bare = normalize_call(call)
        if (attr or bare) in IO_YIELD_NAMES:
            return True
    return False


def _must_released(analysis: LockAnalysis,
                   events: Dict[LockKey, Set[int]]) -> Dict[LockKey, bool]:
    """Which release keys are released on *every* normal path.

    Uses the may-analysis dual: seed every key at entry, kill it at its
    certain release statements; a key that can still reach the normal
    exit has a release-avoiding path, so it is only *may*-released.
    """
    keys = sorted(events, key=lambda k: (k.receiver, k.args))
    index = {key: i for i, key in enumerate(keys)}
    stmt_kills: Dict[int, Set[int]] = {}
    for key, stmt_ids in events.items():
        for sid in stmt_ids:
            stmt_kills.setdefault(sid, set()).add(index[key])

    def transfer(node_index: int, fact, kind: str):
        if kind == EXC:
            return fact
        node = analysis.cfg.nodes[node_index]
        if node.stmt is None or node.label != "stmt":
            return fact
        kills = stmt_kills.get(id(node.stmt))
        if not kills:
            return fact
        return frozenset(i for i in fact if i not in kills)

    facts = run_forward(analysis.cfg, transfer,
                        frozenset(range(len(keys))))
    avoiding = facts.get(analysis.cfg.exit) or frozenset()
    return {key: index[key] not in avoiding for key in events}


def summarize_function(info: FunctionInfo, graph: CallGraph,
                       summaries: Dict[str, LockEffectSummary],
                       ) -> LockEffectSummary:
    """Build one function's summary against already-computed callees."""
    ctx = InterprocContext(graph, summaries, info)
    analysis = LockAnalysis(info.node, interproc=ctx)
    io_yield = _own_io_yield(info.node)
    if not io_yield:
        spawned = spawn_argument_calls(info.node)
        for call in yielded_calls(info.node):
            if id(call) in spawned:
                continue
            _recv, attr, _bare = normalize_call(call)
            if attr in PRIMITIVE_ATTRS:
                continue
            eff = analysis.call_effect_of(call)
            if eff is not None and eff.io_yield:
                io_yield = True
                break

    held_exit = analysis.held_at_exit()
    held_raise = analysis.held_at_raise()
    acquired: List[AcquiredLock] = []
    held_raise_keys: List[LockKey] = []
    escaping: List[str] = []
    for token in analysis.tokens:
        if token.guarded:
            continue
        key = LockKey(token.receiver, token.args)
        if token.escapes and not token.returned:
            if token.var:
                escaping.append(token.var)
            continue
        site: ChainLink = (info.qname, info.path, token.call.lineno)
        chain = (site,) + tuple(token.chain)
        if token.handoff or token.tid in held_exit:
            acquired.append(AcquiredLock(key, token.kind, token.returned,
                                         chain))
        if token.tid in held_raise and token.kind == "acquire" \
                and not token.handoff:
            held_raise_keys.append(key)

    # Releases of locks this function never acquired: raw unmatched
    # release calls plus callee releases that matched no local token.
    events_must: Dict[LockKey, Set[int]] = {}
    all_released: Set[LockKey] = set()
    for receiver, args, stmt_id, certain in analysis.unmatched_releases:
        key = LockKey(receiver, args)
        all_released.add(key)
        if certain:
            events_must.setdefault(key, set()).add(stmt_id)
    must_map = _must_released(analysis, events_must) if events_must else {}
    released = tuple(sorted(
        (ReleasedLock(key, bool(must_map.get(key))) for key in
         all_released),
        key=lambda r: (r.key.receiver, r.key.args)))

    ywh: Set[LockKey] = set()
    for _node, held in analysis.yields_while_held():
        for token in held:
            ywh.add(LockKey(token.receiver, token.args))

    order_edges: List[OrderEdge] = []
    seen_edges: Set[Tuple] = set()
    for held_tok, acq_tok, stmt in analysis.acquire_order_pairs():
        file_held = file_text_of(held_tok.args)
        file_acq = file_text_of(acq_tok.args)
        if file_held is None or file_held != file_acq:
            continue
        g_held = group_text_of(held_tok.args)
        g_acq = group_text_of(acq_tok.args)
        if g_held is None or g_acq is None:
            continue
        loop_carried = held_tok.tid == acq_tok.tid
        if loop_carried:
            if _loop_direction(info.node, stmt) != "desc":
                continue
            descending = True
        else:
            v_held, v_acq = group_value(g_held), group_value(g_acq)
            if v_held is not None and v_acq is not None:
                if v_held == v_acq:
                    continue
                descending = v_held > v_acq
            elif g_held == g_acq:
                continue
            else:
                descending = False
        line = getattr(stmt, "lineno", acq_tok.call.lineno)
        site: ChainLink = (info.qname, info.path, line)
        chain = (site,) + tuple(acq_tok.chain) + tuple(held_tok.chain)
        dedupe = (file_acq, g_held, g_acq, descending, loop_carried)
        if dedupe in seen_edges:
            continue
        seen_edges.add(dedupe)
        order_edges.append(OrderEdge(
            file_acq, g_held, g_acq, descending, loop_carried,
            info.path, line, chain))

    return LockEffectSummary(
        qname=info.qname,
        path=info.path,
        acquired=tuple(sorted(
            acquired, key=lambda a: (a.key.receiver, a.key.args))),
        released=released,
        held_at_raise=tuple(sorted(
            set(held_raise_keys), key=lambda k: (k.receiver, k.args))),
        yields_while_held=tuple(sorted(
            ywh, key=lambda k: (k.receiver, k.args))),
        io_yield=io_yield,
        escaping=tuple(sorted(set(escaping))),
        order_edges=tuple(sorted(
            order_edges, key=lambda e: (e.path, e.line, e.held,
                                        e.acquired))),
    )


def build_summaries(graph: CallGraph) -> Dict[str, LockEffectSummary]:
    """Summaries for every function, bottom-up over the SCCs."""
    summaries: Dict[str, LockEffectSummary] = {}
    for scc in graph.sccs():
        cyclic = len(scc) > 1 or any(
            q in graph.edges.get(q, ()) for q in scc)
        for _round in range(2 if cyclic else 1):
            for qname in scc:
                info = graph.functions[qname]
                summaries[qname] = summarize_function(info, graph,
                                                      summaries)
    return summaries


# ----------------------------------------------------------------------
# the whole-program bundle
# ----------------------------------------------------------------------
class Program:
    """A call graph plus its lock-effect summaries (one lint run's
    interprocedural state)."""

    def __init__(self, graph: CallGraph,
                 summaries: Dict[str, LockEffectSummary]) -> None:
        self.graph = graph
        self.summaries = summaries

    @classmethod
    def build(cls, files: Iterable[str]) -> "Program":
        graph = CallGraph.from_paths(files)
        return cls(graph, build_summaries(graph))

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Program":
        graph = CallGraph.from_sources(sources)
        return cls(graph, build_summaries(graph))

    def tree_for(self, path: str) -> Optional[ast.Module]:
        return self.graph.trees.get(path)

    def context_for(self, func: ast.FunctionDef) -> Optional[InterprocContext]:
        """An interproc hook for a function of *this* program's parse."""
        info = self.graph.info_of(func)
        if info is None:
            return None
        return InterprocContext(self.graph, self.summaries, info)

    def order_edges(self) -> List[Tuple[str, OrderEdge]]:
        out: List[Tuple[str, OrderEdge]] = []
        for qname in sorted(self.summaries):
            for edge in self.summaries[qname].order_edges:
                out.append((qname, edge))
        return out
