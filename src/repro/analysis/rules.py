"""The ``csar-lint`` rule registry.

Each rule has a stable ``CSAR###`` code, a one-line summary, and a fix-it
hint.  The registry is the single source of truth shared by the linter,
the CLI (``csar-repro lint --list-rules``), the documentation
(``docs/ANALYSIS.md``), and ``pyproject.toml``'s ``[tool.csar-lint]``
``enable`` list.

Rules target the failure modes of the Section 5.1 parity-lock protocol
and of generator-based simulation processes in general: a missed
``release`` leaks a lock forever, an out-of-order acquire defeats the
paper's deadlock-avoidance invariant, and a non-:class:`Event` ``yield``
kills a process with a runtime error only when that path executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Rule:
    """One static check: stable code, summary, and how to fix it."""

    code: str
    name: str
    summary: str
    fixit: str


RULES: Dict[str, Rule] = {
    rule.code: rule for rule in (
        Rule(
            code="CSAR001",
            name="unguarded-acquire",
            summary="lock or resource acquired without a guaranteed "
                    "release on all paths",
            fixit="release in a try/finally (or an except handler that "
                  "cancels the request), or use the request as a context "
                  "manager; if the release is protocol-carried in another "
                  "handler, suppress with a comment explaining why",
        ),
        Rule(
            code="CSAR002",
            name="descending-lock-order",
            summary="parity locks acquired in descending group order "
                    "(violates the Section 5.1 deadlock-avoidance "
                    "invariant)",
            fixit="always acquire parity-group locks in ascending group "
                  "order; sort the groups before locking",
        ),
        Rule(
            code="CSAR003",
            name="non-event-yield",
            summary="process body yields an expression that cannot be an "
                    "Event",
            fixit="yield an Event (env.timeout(...), a Request, a "
                  "Process, ...); plain values terminate the process "
                  "with a SimulationError at run time",
        ),
        Rule(
            code="CSAR004",
            name="wall-clock-in-sim",
            summary="wall-clock or unseeded randomness inside a "
                    "sim/redundancy module breaks determinism",
            fixit="use env.now for time and a seeded random.Random / "
                  "numpy Generator instance for randomness",
        ),
        Rule(
            code="CSAR006",
            name="extent-alloc-in-hot-loop",
            summary="Extent dataclass constructed inside a loop in a "
                    "hw/sim hot-path module",
            fixit="use ExtentMap.overlap_iter/gaps_iter/iter_tuples (or "
                  "plain (start, end) tuples) on hot paths; Extent "
                  "objects are for the public API and tests — suppress "
                  "with a comment when the loop is demonstrably cold",
        ),
        Rule(
            code="CSAR005",
            name="fail-without-defuse",
            summary="Event.fail() on an event that never escapes and is "
                    "never defused — the failure re-raises at the end of "
                    "Environment.run()",
            fixit="yield on the event, hand it to a waiter, or call "
                  ".defused() after .fail() when the failure is "
                  "intentional and handled",
        ),
        Rule(
            code="CSAR007",
            name="lock-held-across-nonlock-yield",
            summary="parity lock held across a yield on disk or link "
                    "I/O outside the read-modify-write window — the "
                    "paper's ~20% locking-cost culprit",
            fixit="release the lock before long-latency I/O, or move "
                  "the I/O ahead of the acquire; only the parity "
                  "read-modify-write itself needs the lock",
        ),
        Rule(
            code="CSAR008",
            name="conditional-release",
            summary="lock released on some control-flow paths but still "
                    "held on at least one normal exit",
            fixit="hoist the release into a finally block (or release "
                  "in every branch) so each normal exit path drops the "
                  "lock; if another handler releases it by protocol, "
                  "suppress with a comment explaining why",
        ),
        Rule(
            code="CSAR010",
            name="interprocedural-lock-leak",
            summary="a call chain can exit with a net-positive lock "
                    "delta — a helper acquires a lock the caller never "
                    "guarantees to release (whole-program mode only)",
            fixit="release the helper-acquired lock on every caller "
                  "path (try/finally around the helper call), make the "
                  "helper release it itself, or baseline the finding "
                  "when the release is protocol-carried by a later "
                  "message handler",
        ),
        Rule(
            code="CSAR011",
            name="static-lock-order-cycle",
            summary="the global acquires-while-holding graph contains a "
                    "cycle or a descending edge against the Section 5.1 "
                    "ascending-group invariant (whole-program mode "
                    "only); the finding names its dynamic LockSan "
                    "witness when the explorer recorded one",
            fixit="acquire parity-group locks in ascending group order "
                  "on every call chain; sort the groups before locking "
                  "and keep helper functions on the same convention",
        ),
        Rule(
            code="CSAR012",
            name="payload-copy-in-hot-loop",
            summary="Payload.concat/to_bytes/assemble inside a loop on "
                    "the data path (pvfs/, redundancy/, hw/) — each call "
                    "materialises a flat copy of the whole payload, "
                    "defeating the zero-copy segment rope",
            fixit="hoist the materialisation out of the loop, build the "
                  "segment list first and assemble once, or walk "
                  "iter_segments()/slice() views instead; suppress with "
                  "a comment when the loop is provably cold or the copy "
                  "is the point (e.g. one merged message per server)",
        ),
        Rule(
            code="CSAR013",
            name="mutate-shared-view",
            summary="in-place mutation (or flags.writeable = True) of a "
                    "buffer that may alias a frozen payload view — the "
                    "zero-copy path shares these bytes with every "
                    "payload sliced from them",
            fixit="take a private copy first (_writable_copy()/.copy()) "
                  "and mutate that; a frozen view's bytes belong to "
                  "every payload that aliases them",
        ),
        Rule(
            code="CSAR014",
            name="writable-escape-without-freeze",
            summary="a private writable buffer escapes (stored into an "
                    "attribute/container or handed to a retaining "
                    "callee) with no dominating freeze — later in-place "
                    "reuse would corrupt whoever kept the reference",
            fixit="freeze before sharing (_freeze(buf) or "
                  "buf.flags.writeable = False), or wrap it in a "
                  "Payload (whose constructor freezes) instead of "
                  "storing the raw array",
        ),
        Rule(
            code="CSAR015",
            name="scratch-alias-across-yield",
            summary="a reference to a shared scratch buffer is live "
                    "across an Event yield — any interleaved process "
                    "can observe or clobber the half-built bytes, and "
                    "payloads captured from it drift on reuse",
            fixit="copy the scratch contents into a fresh buffer (or "
                  "build the Payload from a private copy) before "
                  "yielding; scratch lifetime must stay within one "
                  "scheduling step",
        ),
        Rule(
            code="CSAR009",
            name="overflow-write-in-place",
            summary="hybrid overflow path writes partial-stripe data to "
                    "the home location instead of the overflow region",
            fixit="send OverflowWriteReq (or write the *.ovf overflow "
                  "file) so the home block stays parity-consistent; "
                  "in-place data writes are only legal for full-stripe "
                  "or RMW paths that update parity in the same lock "
                  "window",
        ),
    )
}


def all_codes() -> tuple:
    """Every registered rule code, sorted."""
    return tuple(sorted(RULES))
