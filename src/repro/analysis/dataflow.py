"""Forward dataflow over :mod:`repro.analysis.cfg`, plus the lock
ownership analysis behind CSAR001/CSAR007/CSAR008.

The framework is a standard worklist fixpoint: facts are frozensets, the
join is set union (a *may* analysis), and the transfer function is
edge-sensitive — it sees the edge kind, so a statement's effects can be
withheld on exceptional edges (an aborted acquire never acquired).

The lock analysis tracks *tokens*, one per lexical acquisition site:

* ``X.acquire(...)`` — the Section 5.1 parity-lock idiom
  (:class:`~repro.redundancy.locks.ParityLockTable`);
* ``var = X.request()`` (zero-argument) — a raw
  :class:`~repro.sim.resources.Resource` slot;

matched against ``X.release(...)`` / ``X.cancel(...)`` sites by receiver
text and argument text (acquire tokens) or by the bound variable (request
tokens).  With-statement requests (``with X.request() as r:``) release on
``__exit__`` and are never tracked.  A request variable that *escapes* —
stored into an attribute/subscript/container, returned, yielded, or
passed to a non-release call — hands ownership elsewhere, so the token is
dropped at the escape site: the protocol-carried idiom
(``self._held[key] = request``) analyzes clean by construction.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, \
    Set, Tuple

from repro.analysis.cfg import CFG, EXC, build_cfg

Fact = FrozenSet[int]


def run_forward(cfg: CFG,
                transfer: Callable[[int, Fact, str], Fact],
                initial: Fact = frozenset()) -> Dict[int, Optional[Fact]]:
    """Propagate facts forward to a fixpoint; returns IN facts per node.

    Unreachable nodes map to ``None``.  Termination: facts are finite
    sets joined by union, so per-node facts grow monotonically.
    """
    facts: Dict[int, Optional[Fact]] = {i: None for i in
                                        range(len(cfg.nodes))}
    facts[cfg.entry] = initial
    worklist = deque([cfg.entry])
    while worklist:
        n = worklist.popleft()
        fact = facts[n]
        assert fact is not None
        for succ, kind in cfg.succs.get(n, ()):
            out = transfer(n, fact, kind)
            cur = facts[succ]
            new = out if cur is None else cur | out
            if new != cur:
                facts[succ] = new
                worklist.append(succ)
    return facts


# ----------------------------------------------------------------------
# lock tokens
# ----------------------------------------------------------------------
_ACQUIRE_ATTR = "acquire"
_REQUEST_ATTR = "request"
_RELEASE_ATTRS = ("release", "cancel")


@dataclass
class LockToken:
    """One lexical acquisition site."""

    tid: int
    call: ast.Call                   # the acquire/request call
    kind: str                        # "acquire" | "request"
    receiver: str                    # unparse of the call's receiver
    args: Tuple[str, ...]            # unparsed positional + keyword args
    var: Optional[str] = None        # bound name (request tokens)
    guarded: bool = False            # with-item: released by __exit__
    escapes: bool = False            # ownership handed elsewhere
    release_sites: List[ast.Call] = field(default_factory=list)
    #: any matching release lives in an except handler or finally block
    release_in_cleanup: bool = False
    #: acquired by a callee (interprocedural mode), not a lexical
    #: primitive call — ``call`` is then the helper call site
    derived: bool = False
    #: witness chain below this site: (qname, path, line) per hop
    chain: Tuple = ()
    #: derived token with no local release: the callee hands the lock
    #: to the surrounding protocol (message-carried release); excluded
    #: from rule participation but still exported in summaries
    handoff: bool = False
    #: ownership returned to the caller (``return request``)
    returned: bool = False


def _arg_texts(call: ast.Call) -> Tuple[str, ...]:
    parts = [ast.unparse(a) for a in call.args]
    parts += [f"{kw.arg}={ast.unparse(kw.value)}" for kw in call.keywords]
    return tuple(parts)


def _receiver_text(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return ast.unparse(call.func.value)
    return None


def _call_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _own_stmt_nodes(stmt: ast.stmt) -> Iterable[ast.AST]:
    """All AST nodes of one statement, not descending into nested scopes
    or (for compound statements) into nested blocks."""
    if isinstance(stmt, (ast.If, ast.While)):
        roots: List[ast.AST] = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.target, stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, ast.Try):
        roots = []
    elif isinstance(stmt, _SCOPES):
        roots = []
    else:
        roots = [stmt]
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, _SCOPES):
                continue
            yield node


class LockAnalysis:
    """Lock-ownership dataflow over one generator function.

    After construction:

    * :attr:`tokens` — every acquisition site with its classification
      inputs (release sites, guardedness, escapes);
    * :meth:`held_at_exit` / :meth:`held_at_raise` — may-held facts at
      the two function exits;
    * :meth:`yields_while_held` — ``(yield node, held acquire tokens)``
      pairs for CSAR007.
    """

    def __init__(self, func: ast.FunctionDef, interproc=None) -> None:
        self.func = func
        self.interproc = interproc
        self.cfg = build_cfg(func)
        self.tokens: List[LockToken] = []
        self._token_of_call: Dict[int, LockToken] = {}  # id(call) -> token
        #: id(call) -> CallSiteEffects from the interproc context
        self._call_effects: Dict[int, object] = {}
        #: id(call) -> derived tokens created for that call site
        self._derived_of_call: Dict[int, List[LockToken]] = {}
        #: releases matching no local token, exported to summaries:
        #: (receiver text, arg texts, id(enclosing stmt), certain)
        self.unmatched_releases: List[Tuple[str, Tuple[str, ...],
                                            int, bool]] = []
        self._assigned_var: Dict[int, str] = {}
        self._collect_tokens()
        if interproc is not None:
            self._collect_derived_tokens()
        self._match_releases_and_escapes()
        if interproc is not None:
            self._match_callee_releases()
        self._mark_returns()
        self._mark_handoffs()
        #: per statement object: ordered (op, token id) effects
        self._effects: Dict[int, List[Tuple[str, int]]] = {}
        self._effects_done: Set[int] = set()
        self._collect_effects()
        self.facts = run_forward(self.cfg, self._transfer)

    def call_effect_of(self, call: ast.Call):
        """The substituted callee summary applied at ``call`` (interproc
        mode only; ``None`` when the call contributes nothing)."""
        return self._call_effects.get(id(call))

    # -- token discovery ------------------------------------------------
    def _collect_tokens(self) -> None:
        guarded_calls: Set[int] = set()
        for node in self._walk_function():
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        guarded_calls.add(id(sub))
        assigned_var = self._assigned_var
        for node in self._walk_function():
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                value = node.value
                # ``req = yield from helper()`` binds the helper's
                # return value, so the call is the assignment source.
                if isinstance(value, (ast.Yield, ast.YieldFrom)) \
                        and value.value is not None:
                    value = value.value
                assigned_var[id(value)] = node.targets[0].id
        for node in self._walk_function():
            if not isinstance(node, ast.Call):
                continue
            attr = _call_attr(node)
            receiver = _receiver_text(node)
            if receiver is None:
                continue
            if attr == _ACQUIRE_ATTR:
                kind = "acquire"
            elif attr == _REQUEST_ATTR and not node.args \
                    and not node.keywords:
                kind = "request"
            else:
                continue
            token = LockToken(
                tid=len(self.tokens), call=node, kind=kind,
                receiver=receiver, args=_arg_texts(node),
                var=assigned_var.get(id(node)),
                guarded=id(node) in guarded_calls)
            self.tokens.append(token)
            self._token_of_call[id(node)] = token

    def _walk_function(self) -> Iterable[ast.AST]:
        todo: List[ast.AST] = list(self.func.body)
        while todo:
            node = todo.pop()
            yield node
            if isinstance(node, _SCOPES):
                continue
            todo.extend(ast.iter_child_nodes(node))

    # -- interprocedural tokens -----------------------------------------
    def _collect_derived_tokens(self) -> None:
        """One token per lock a confident callee may leave held."""
        from repro.analysis.callgraph import PRIMITIVE_ATTRS, \
            spawn_argument_calls
        spawned = spawn_argument_calls(self.func)
        for node in self._walk_function():
            if not isinstance(node, ast.Call) or id(node) in spawned:
                continue
            if id(node) in self._token_of_call:
                continue  # a raw primitive site, never a call-graph edge
            if _call_attr(node) in PRIMITIVE_ATTRS:
                continue
            effects = self.interproc.call_effects(node)
            if effects is None:
                continue
            self._call_effects[id(node)] = effects
            for acq in effects.acquired:
                token = LockToken(
                    tid=len(self.tokens), call=node, kind=acq.kind,
                    receiver=acq.key.receiver, args=acq.key.args,
                    var=(self._assigned_var.get(id(node))
                         if acq.returned else None),
                    derived=True, chain=tuple(acq.chain))
                self.tokens.append(token)
                self._derived_of_call.setdefault(id(node), []) \
                    .append(token)

    def _match_callee_releases(self) -> None:
        """Callee release effects count as release sites of local
        tokens, exactly like lexical ``X.release(...)`` calls."""
        cleanup_spans = self._cleanup_line_spans()
        for node in self._walk_function():
            if not isinstance(node, ast.Call):
                continue
            effects = self._call_effects.get(id(node))
            if effects is None:
                continue
            for rel in effects.released:
                for token in self._tokens_matching_key(
                        rel.key.receiver, rel.key.args):
                    token.release_sites.append(node)
                    line = getattr(node, "lineno", 0)
                    if any(lo <= line <= hi for lo, hi in cleanup_spans):
                        token.release_in_cleanup = True

    def _tokens_matching_key(self, receiver: str,
                             args: Tuple[str, ...]) -> List[LockToken]:
        """Local tokens a callee's release of (receiver, args) frees.

        Mirrors :meth:`_tokens_released_by`: bound-variable matches,
        then receiver matches with argument-exact ones preferred.
        """
        arg_names: Set[str] = set()
        for text in args:
            try:
                arg_names |= _names_in(ast.parse(text, mode="eval"))
            except SyntaxError:
                pass
        out = []
        for token in self.tokens:
            if token.guarded:
                continue
            if token.var is not None and (token.var in arg_names
                                          or receiver == token.var):
                out.append(token)
            elif token.kind == "acquire" and receiver == token.receiver:
                out.append(token)
        exact = [t for t in out if t.kind == "acquire" and t.args == args]
        if exact:
            return exact + [t for t in out if t.kind != "acquire"]
        return out

    def _mark_returns(self) -> None:
        """``return request`` transfers ownership to the caller."""
        for node in self._walk_function():
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            if isinstance(node.value, ast.Name):
                for token in self.tokens:
                    if token.var == node.value.id:
                        token.returned = True
            elif isinstance(node.value, ast.Call):
                token = self._token_of_call.get(id(node.value))
                if token is not None:
                    token.returned = True
                for derived in self._derived_of_call.get(
                        id(node.value), ()):
                    derived.returned = True

    def _mark_handoffs(self) -> None:
        for token in self.tokens:
            if token.derived and not token.release_sites \
                    and not token.returned:
                token.handoff = True

    # -- release / escape matching --------------------------------------
    def _match_releases_and_escapes(self) -> None:
        cleanup_spans = self._cleanup_line_spans()
        for node in self._walk_function():
            if isinstance(node, ast.Call) \
                    and _call_attr(node) in _RELEASE_ATTRS:
                for token in self._tokens_released_by(node):
                    token.release_sites.append(node)
                    line = getattr(node, "lineno", 0)
                    if any(lo <= line <= hi for lo, hi in cleanup_spans):
                        token.release_in_cleanup = True
        for token in self.tokens:
            if token.var is not None and self._var_escapes(token):
                token.escapes = True

    def _cleanup_line_spans(self) -> List[Tuple[int, int]]:
        """Line ranges of except-handler bodies and finally blocks."""
        spans: List[Tuple[int, int]] = []
        for node in self._walk_function():
            if not isinstance(node, ast.Try):
                continue
            for blocks in ([h.body for h in node.handlers]
                           + [node.finalbody]):
                if blocks:
                    spans.append((blocks[0].lineno,
                                  max(getattr(s, "end_lineno", s.lineno)
                                      for s in blocks)))
        return spans

    def _tokens_released_by(self, call: ast.Call) -> List[LockToken]:
        receiver = _receiver_text(call)
        arg_names = {n for a in call.args for n in _names_in(a)}
        out = []
        for token in self.tokens:
            if token.guarded:
                continue
            if token.var is not None and (token.var in arg_names
                                          or receiver == token.var):
                out.append(token)
            elif token.kind == "acquire" and receiver == token.receiver:
                out.append(token)
        if not out:
            return out
        # Acquire tokens on the same receiver: prefer argument-exact
        # matches (several groups of one table in one function), fall
        # back to receiver-wide when nothing matches textually.
        release_args = _arg_texts(call)
        exact = [t for t in out if t.kind == "acquire"
                 and t.args == release_args]
        if exact:
            by_var = [t for t in out if t.kind != "acquire"]
            return exact + by_var
        return out

    def _var_escapes(self, token: LockToken) -> bool:
        name = token.var
        assert name is not None
        for node in self._walk_function():
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) \
                    and node.value is not None \
                    and not (isinstance(node.value, ast.Name)
                             and node.value.id == name) \
                    and name in _names_in(node.value):
                # ``yield req`` waits on the request (not an escape);
                # anything wrapping the name hands it away.
                return True
            if isinstance(node, ast.Call) and node is not token.call \
                    and _call_attr(node) not in _RELEASE_ATTRS:
                in_args = any(name in _names_in(a) for a in node.args)
                in_kwargs = any(name in _names_in(k.value)
                                for k in node.keywords)
                if in_args or in_kwargs:
                    return True
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = getattr(node, "value", None)
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                stored = any(isinstance(t, (ast.Attribute, ast.Subscript))
                             for t in targets)
                if stored and value is not None \
                        and name in _names_in(value):
                    return True
            if isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)) \
                    and name in _names_in(node):
                return True
        return False

    # -- per-statement effects ------------------------------------------
    def _collect_effects(self) -> None:
        for cfg_node in self.cfg.nodes:
            stmt = cfg_node.stmt
            if stmt is None or cfg_node.label != "stmt":
                continue
            if id(stmt) in self._effects_done:
                continue  # shared by finally copies; computed once
            self._effects_done.add(id(stmt))
            effects = self._effects.setdefault(id(stmt), [])
            kills: List[Tuple[str, int]] = []
            gens: List[Tuple[str, int]] = []
            for node in _own_stmt_nodes(stmt):
                if not isinstance(node, ast.Call):
                    continue
                token = self._token_of_call.get(id(node))
                if token is not None and not token.guarded:
                    gens.append(("gen", token.tid))
                if _call_attr(node) in _RELEASE_ATTRS:
                    released = self._tokens_released_by(node)
                    for released_token in released:
                        kills.append(("kill", released_token.tid))
                    if not released:
                        receiver = _receiver_text(node)
                        if receiver is not None:
                            self.unmatched_releases.append(
                                (receiver, _arg_texts(node), id(stmt),
                                 True))
                for derived in self._derived_of_call.get(id(node), ()):
                    # Hand-off tokens never enter the facts: the callee
                    # owns the protocol, not this function's paths.
                    if not derived.handoff:
                        gens.append(("gen", derived.tid))
                call_effects = self._call_effects.get(id(node))
                if call_effects is not None:
                    for rel in call_effects.released:
                        matched = self._tokens_matching_key(
                            rel.key.receiver, rel.key.args)
                        if matched:
                            # Only a release on every callee path frees
                            # the token; a conditional one stays a
                            # may-release (release_sites only).
                            if rel.must:
                                for token in matched:
                                    kills.append(("kill", token.tid))
                        else:
                            self.unmatched_releases.append(
                                (rel.key.receiver, rel.key.args,
                                 id(stmt), rel.must))
            # Escapes drop the token where the hand-off happens.
            for token in self.tokens:
                if token.escapes and self._stmt_escapes(stmt, token):
                    kills.append(("kill", token.tid))
            effects.extend(kills + gens)

    def _stmt_escapes(self, stmt: ast.stmt, token: LockToken) -> bool:
        name = token.var
        if name is None:
            return False
        for node in _own_stmt_nodes(stmt):
            if node is token.call:
                continue
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) \
                    and node.value is not None \
                    and not (isinstance(node.value, ast.Name)
                             and node.value.id == name) \
                    and name in _names_in(node.value):
                return True
            if isinstance(node, ast.Call) \
                    and _call_attr(node) not in _RELEASE_ATTRS \
                    and (any(name in _names_in(a) for a in node.args)
                         or any(name in _names_in(k.value)
                                for k in node.keywords)):
                return True
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = getattr(node, "value", None)
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                if any(isinstance(t, (ast.Attribute, ast.Subscript))
                       for t in targets) and value is not None \
                        and name in _names_in(value):
                    return True
            if isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)) \
                    and name in _names_in(node):
                return True
        return False

    # -- transfer --------------------------------------------------------
    def _transfer(self, node_index: int, fact: Fact, kind: str) -> Fact:
        if kind == EXC:
            # The statement aborted mid-evaluation: acquires did not
            # happen (the primitives self-cancel on interrupt) and
            # releases cannot be assumed to have run.
            return fact
        cfg_node = self.cfg.nodes[node_index]
        if cfg_node.stmt is None or cfg_node.label != "stmt":
            return fact
        effects = self._effects.get(id(cfg_node.stmt))
        if not effects:
            return fact
        out = set(fact)
        for op, tid in effects:
            if op == "kill":
                out.discard(tid)
            else:
                out.add(tid)
        return frozenset(out)

    # -- queries ---------------------------------------------------------
    def held_at_exit(self) -> Fact:
        return self.facts.get(self.cfg.exit) or frozenset()

    def held_at_raise(self) -> Fact:
        return self.facts.get(self.cfg.raise_exit) or frozenset()

    def yields_while_held(self) -> List[Tuple[ast.AST, List[LockToken]]]:
        """Yield expressions evaluated while acquire-tokens are held.

        The IN fact of a statement's node excludes the statement's own
        acquisitions, so the acquiring ``yield from`` itself never counts.
        """
        seen: Dict[int, Tuple[ast.AST, Set[int]]] = {}
        for cfg_node in self.cfg.nodes:
            stmt = cfg_node.stmt
            if stmt is None or cfg_node.label != "stmt":
                continue
            fact = self.facts.get(cfg_node.index)
            if not fact:
                continue
            held = [tid for tid in fact
                    if self.tokens[tid].kind == "acquire"]
            if not held:
                continue
            for node in _own_stmt_nodes(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    entry = seen.setdefault(id(node), (node, set()))
                    entry[1].update(held)
        return [(node, [self.tokens[tid] for tid in sorted(tids)])
                for node, tids in seen.values()]

    def acquire_order_pairs(self) -> List[Tuple[LockToken, LockToken,
                                                ast.stmt]]:
        """``(held, acquired, stmt)`` triples: an acquire-kind token
        generated at ``stmt`` while another acquire-kind token may
        already be held.  A token held across its own re-acquisition
        (``held is acquired``) is a loop-carried pair — the loop body
        acquires a fresh group each iteration while keeping the last.
        Feeds the CSAR011 lock-order graph.
        """
        out: List[Tuple[LockToken, LockToken, ast.stmt]] = []
        seen: Set[Tuple[int, int, int]] = set()
        for cfg_node in self.cfg.nodes:
            stmt = cfg_node.stmt
            if stmt is None or cfg_node.label != "stmt":
                continue
            effects = self._effects.get(id(stmt))
            if not effects:
                continue
            gen_tids = [tid for op, tid in effects if op == "gen"]
            if not gen_tids:
                continue
            fact = self.facts.get(cfg_node.index) or frozenset()
            for tid in gen_tids:
                acquired = self.tokens[tid]
                if acquired.kind != "acquire":
                    continue
                for held_tid in sorted(fact):
                    held = self.tokens[held_tid]
                    if held.kind != "acquire":
                        continue
                    key = (held_tid, tid, id(stmt))
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append((held, acquired, stmt))
        return out
