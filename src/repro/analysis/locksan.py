"""LockSan: a runtime sanitizer for the Section 5.1 parity-lock protocol.

When installed (:func:`install`, the CLI's ``run --sanitize``, or the
``CSAR_LOCKSAN=1`` environment variable honored by the test suite's
``conftest``), every new :class:`~repro.sim.engine.Environment` gets a
:class:`LockSan` instance attached as ``env.sanitizer``.  The lock
primitives then report into it:

* :class:`~repro.sim.resources.FifoLock` reports raw request / grant /
  release transitions — the basis of the *leak* check (locks still held
  when :meth:`Environment.run` drains the event heap);
* :class:`~repro.redundancy.locks.ParityLockTable` reports protocol
  events keyed by ``xid`` with ``(file, group)`` labels — the basis of
  the *lock-order inversion* check (acquiring group *g₂ < g₁* while
  holding *g₁* on the same file), the *wait-for cycle* check (true
  deadlock, raised as :class:`DeadlockError` with the process names
  involved **before** the simulation hangs), and the *double-release*
  check.

Tracking is keyed by ``xid`` (the client transaction), not by the server
handler process: a client's two parity-group acquisitions arrive as
separate messages handled by separate server processes, possibly on
different servers, so only the xid view can see a cross-server
inversion or wait-for cycle.

All checks except deadlock *collect* :class:`LockSanReport` entries
rather than raising, so a full test run can finish and report
everything; pass ``strict=True`` to raise on the first report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis import SanitizerRegistry
from repro.errors import DeadlockError, LockSanError

#: Every live sanitizer; lets the CLI and the pytest hook sweep reports
#: across many Environments without threading the instances through.
#: Drains keep live sanitizers registered, so reports made after a
#: drain are still seen.
_REGISTRY = SanitizerRegistry("locksan")

_Key = Tuple[str, int]  # (file, parity group)


@dataclass(frozen=True)
class LockSanReport:
    """One sanitizer observation."""

    kind: str                 # "order-inversion" | "deadlock" |
                              # "double-release" | "leak"
    message: str
    file: Optional[str]
    group: Optional[int]
    processes: Tuple[str, ...]
    #: for order-inversions: the higher-numbered group already held when
    #: ``group`` was acquired — the explorer exports (file, group,
    #: held_group) as a dynamic witness for CSAR011 cross-referencing
    held_group: Optional[int] = None

    def format(self) -> str:
        procs = ", ".join(self.processes) or "<unknown>"
        return f"LockSan[{self.kind}] {self.message} (processes: {procs})"


class LockSan:
    """Per-:class:`Environment` lock-protocol sanitizer."""

    def __init__(self, strict: bool = False,
                 raise_on_deadlock: bool = True) -> None:
        self.strict = strict
        self.raise_on_deadlock = raise_on_deadlock
        self.reports: List[LockSanReport] = []
        # -- xid-keyed protocol state (ParityLockTable) ----------------
        #: xid -> {(file, group): (acquiring process, sim-time acquired)}
        self._held_by_xid: Dict[int, Dict[_Key,
                                          Tuple[str, Optional[float]]]] = {}
        #: (file, group) -> xid currently holding the parity lock
        self._holder: Dict[_Key, int] = {}
        #: (file, group) -> xids queued FIFO behind the holder
        self._waiters: Dict[_Key, List[int]] = {}
        #: xid -> (file, group) it is blocked on
        self._waiting_on: Dict[int, _Key] = {}
        #: xid -> name of the process that last acted for it
        self._proc_of_xid: Dict[int, str] = {}
        # -- raw lock state (FifoLock) ---------------------------------
        #: request id -> (lock, process name) for granted requests
        self._lock_owner: Dict[int, Tuple[Any, str]] = {}
        #: request ids released (or cancelled) before their grant
        #: callback ran — the grant must then be ignored.
        self._dead_requests: Set[int] = set()
        #: lock -> (file, group) label, registered by ParityLockTable
        self._labels: Dict[int, _Key] = {}
        _REGISTRY.register(self)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _report(self, kind: str, message: str, file: Optional[str] = None,
                group: Optional[int] = None,
                processes: Tuple[str, ...] = (),
                held_group: Optional[int] = None) -> LockSanReport:
        report = LockSanReport(kind, message, file, group, processes,
                               held_group)
        self.reports.append(report)
        if self.strict:
            raise LockSanError(report.format())
        return report

    # ------------------------------------------------------------------
    # FifoLock instrumentation (raw holds; feeds the leak check)
    # ------------------------------------------------------------------
    def label_lock(self, lock: Any, file: str, group: int) -> None:
        """Attach ``(file, group)`` so leak reports can name the lock."""
        self._labels[id(lock)] = (file, group)

    def on_lock_granted(self, lock: Any, request: Any,
                        proc_name: str) -> None:
        if id(request) in self._dead_requests:
            self._dead_requests.discard(id(request))
            return
        self._lock_owner[id(request)] = (lock, proc_name)

    def on_lock_released(self, lock: Any, request: Any) -> None:
        if id(request) not in self._lock_owner:
            # Released before the grant callback ran (interrupt delivered
            # between grant and resume) or cancelled while queued.
            self._dead_requests.add(id(request))
            return
        del self._lock_owner[id(request)]

    # ------------------------------------------------------------------
    # ParityLockTable instrumentation (xid-keyed protocol checks)
    # ------------------------------------------------------------------
    def on_wait(self, file: str, group: int, xid: int,
                proc_name: str) -> None:
        """``xid`` queued behind the holder of ``(file, group)``."""
        key = (file, group)
        self._proc_of_xid[xid] = proc_name
        self._waiters.setdefault(key, []).append(xid)
        self._waiting_on[xid] = key
        cycle = self._find_cycle(xid)
        if cycle is not None:
            names = tuple(self._proc_of_xid.get(x, f"xid {x}")
                          for x in cycle)
            chain = " -> ".join(
                f"{self._proc_of_xid.get(x, 'xid ' + str(x))}"
                f"(xid {x})" for x in cycle)
            report = self._report(
                "deadlock",
                f"wait-for cycle on parity locks: {chain} -> back to "
                f"start; blocked on {file}:{group}; "
                f"{self._held_summary(cycle)}",
                file=file, group=group, processes=names)
            if self.raise_on_deadlock and not self.strict:
                raise DeadlockError(report.format())

    def on_cancel(self, file: str, group: int, xid: int,
                  proc_name: str) -> None:
        """``xid``'s queued acquire was interrupted and cancelled."""
        key = (file, group)
        waiters = self._waiters.get(key, [])
        if xid in waiters:
            waiters.remove(xid)
        self._waiting_on.pop(xid, None)

    def on_acquired(self, file: str, group: int, xid: int,
                    proc_name: str, now: Optional[float] = None) -> None:
        key = (file, group)
        self._proc_of_xid[xid] = proc_name
        waiters = self._waiters.get(key, [])
        if xid in waiters:
            waiters.remove(xid)
        self._waiting_on.pop(xid, None)
        held = self._held_by_xid.setdefault(xid, {})
        for (other_file, other_group), (holder_proc, _when) in held.items():
            if other_file == file and other_group > group:
                self._report(
                    "order-inversion",
                    f"xid {xid} acquired parity lock {file}:{group} while "
                    f"holding {other_file}:{other_group} — groups must be "
                    "taken in ascending order (Section 5.1)",
                    file=file, group=group,
                    processes=(proc_name, holder_proc),
                    held_group=other_group)
        held[key] = (proc_name, now)
        self._holder[key] = xid

    def on_released(self, file: str, group: int, xid: int) -> None:
        key = (file, group)
        held = self._held_by_xid.get(xid)
        if held is not None:
            held.pop(key, None)
            if not held:
                del self._held_by_xid[xid]
        if self._holder.get(key) == xid:
            del self._holder[key]

    def on_double_release(self, file: str, group: int, xid: int,
                          proc_name: str) -> None:
        self._report(
            "double-release",
            f"xid {xid} released parity lock {file}:{group} it does not "
            "hold",
            file=file, group=group, processes=(proc_name,))

    def _held_summary(self, cycle: List[int]) -> str:
        """Per-participant held locks (with acquisition sim-times) for
        deadlock reports — what each cycle member refuses to give up."""
        parts: List[str] = []
        for xid in cycle:
            name = self._proc_of_xid.get(xid, f"xid {xid}")
            held = self._held_by_xid.get(xid, {})
            if not held:
                parts.append(f"{name}(xid {xid}) holds nothing")
                continue
            locks = ", ".join(
                f"{f}:{g}" + ("" if when is None
                              else f" (acquired t={when:.6g})")
                for (f, g), (_proc, when) in sorted(held.items()))
            parts.append(f"{name}(xid {xid}) holds [{locks}]")
        return "held: " + "; ".join(parts)

    # ------------------------------------------------------------------
    # wait-for cycle detection
    # ------------------------------------------------------------------
    def _find_cycle(self, start: int) -> Optional[List[int]]:
        """DFS over the xid wait-for graph; a waiter waits for the
        holder of its lock and for every xid queued ahead of it."""

        def edges(xid: int) -> List[int]:
            key = self._waiting_on.get(xid)
            if key is None:
                return []
            out: List[int] = []
            holder = self._holder.get(key)
            if holder is not None:
                out.append(holder)
            queue = self._waiters.get(key, [])
            if xid in queue:
                out.extend(queue[:queue.index(xid)])
            return out

        path: List[int] = []
        on_path: Set[int] = set()
        visited: Set[int] = set()

        def dfs(xid: int) -> Optional[List[int]]:
            if xid in on_path:
                return path[path.index(xid):]
            if xid in visited:
                return None
            visited.add(xid)
            path.append(xid)
            on_path.add(xid)
            for nxt in edges(xid):
                found = dfs(nxt)
                if found is not None:
                    return found
            path.pop()
            on_path.discard(xid)
            return None

        return dfs(start)

    # ------------------------------------------------------------------
    # teardown (wired into Environment.run when the heap drains)
    # ------------------------------------------------------------------
    def on_run_complete(self) -> None:
        """Report every lock still held — a leaked lock can never be
        granted to anyone else."""
        for lock, proc_name in self._lock_owner.values():
            label = self._labels.get(id(lock))
            if label is not None:
                file, group = label
                where = f"parity lock {file}:{group}"
            else:
                file = group = None
                where = f"{type(lock).__name__} 0x{id(lock):x}"
            self._report(
                "leak",
                f"{where} still held by {proc_name!r} when the "
                "simulation drained",
                file=file, group=group, processes=(proc_name,))
        self._lock_owner.clear()


# ----------------------------------------------------------------------
# global installation
# ----------------------------------------------------------------------
def install(strict: bool = False) -> None:
    """Attach a fresh LockSan to every Environment created from now on."""
    from repro.sim import engine

    engine.set_sanitizer_factory(lambda: LockSan(strict=strict))


def uninstall() -> None:
    """Stop sanitizing new Environments."""
    from repro.sim import engine

    engine.set_sanitizer_factory(None)


def installed() -> bool:
    from repro.sim import engine

    return engine.sanitizer_factory() is not None


def drain_reports() -> List[LockSanReport]:
    """Collect (and clear) reports from every live sanitizer."""
    return _REGISTRY.drain()
