"""Systematic schedule exploration for the CSAR protocol.

The event engine is deterministic: same-``(time, priority)`` events fire
in scheduling order.  Real clusters enjoy no such courtesy — message
arrivals race — so a protocol bug that only manifests under an unlucky
interleaving can hide behind the default schedule forever.  This module
drives the engine's tie-break hook
(:func:`repro.sim.engine.set_tie_breaker_factory`) to search over those
interleavings:

* **dfs** — bounded systematic exploration.  Run once with default
  tie-breaks, record every decision point ``(n_choices, chosen)``, then
  depth-first expand untried alternatives as forced prefixes.  The
  engine already prunes commuting events (only events somebody observes
  reach the tie-breaker — a sleep-set style reduction), so the tree
  stays small for protocol-sized scenarios.
* **pct** — PCT-flavoured randomized search: each schedule draws its
  tie-breaks from a seeded :class:`random.Random`, so large spaces get
  probabilistic coverage and every schedule is reproducible from its
  seed.

Every run executes under LockSan, BufSan, *and* ParitySan; a
**violation** is any raised
:class:`~repro.errors.ReproError`/`AssertionError` or any sanitizer
report (reported in that priority order: an exception beats a LockSan
report beats a BufSan report beats a ParitySan report, so an aliasing
bug is attributed to the buffer that drifted rather than to whatever
parity noise it caused downstream).  Violating schedules serialize to ``.sched`` JSON
files (``schema_version`` 1) and replay deterministically with
``csar-repro explore --replay FILE``.

Scenarios live in a registry; the seeded-bug scenarios (built on
:mod:`repro.analysis.seeded_bugs`) double as CI's proof that the
explorer and the sanitizers actually catch the bug classes they claim
to.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import ReproError

#: ``.sched`` file format version (bump on incompatible change).
SCHED_SCHEMA_VERSION = 1

#: LockSan order-inversion observations accumulated across every
#: explored schedule: ``{"file", "group", "held_group"}`` dicts, the
#: dynamic witnesses CSAR011 cross-references (see
#: :func:`repro.analysis.lint.save_witnesses`).
_WITNESSES: List[Dict[str, Any]] = []


def drain_witnesses() -> List[Dict[str, Any]]:
    """Collect (and clear) the dynamic lock-order witnesses."""
    out = list(_WITNESSES)
    _WITNESSES.clear()
    return out


# ----------------------------------------------------------------------
# tie-breakers
# ----------------------------------------------------------------------
class ForcedTieBreaker:
    """Follow a forced decision prefix, then the default (index 0).

    Records every decision as ``(n_choices, chosen)`` so the run's full
    schedule can be re-forced later (replay) or expanded (DFS).
    """

    strategy = "dfs"

    def __init__(self, forced: Tuple[int, ...] = ()) -> None:
        self.forced = tuple(forced)
        self.decisions: List[Tuple[int, int]] = []

    def choose(self, when: float, priority: int,
               events: List[Any]) -> Optional[int]:
        n = len(events)
        i = len(self.decisions)
        pick = self.forced[i] if i < len(self.forced) else 0
        if pick >= n:  # schedule drift: clamp rather than crash
            pick = n - 1
        self.decisions.append((n, pick))
        return pick


class RandomTieBreaker:
    """Pick uniformly among observable tied events, from a fixed seed."""

    strategy = "pct"

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self.decisions: List[Tuple[int, int]] = []

    def choose(self, when: float, priority: int,
               events: List[Any]) -> Optional[int]:
        n = len(events)
        pick = self._rng.randrange(n)
        self.decisions.append((n, pick))
        return pick


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Violation:
    """What went wrong under one explored schedule."""

    kind: str         # exception class name or sanitizer report kind
    description: str

    def format(self) -> str:
        return f"[{self.kind}] {self.description}"


@dataclass(frozen=True)
class ScheduleRecord:
    """A reproducible violating schedule (what ``.sched`` files hold)."""

    scenario: str
    strategy: str
    seed: Optional[int]
    decisions: Tuple[Tuple[int, int], ...]
    violation: Violation

    def to_json(self) -> str:
        return json.dumps({
            "schema_version": SCHED_SCHEMA_VERSION,
            "scenario": self.scenario,
            "strategy": self.strategy,
            "seed": self.seed,
            "decisions": [list(d) for d in self.decisions],
            "violation": {"kind": self.violation.kind,
                          "description": self.violation.description},
        }, indent=2) + "\n"


@dataclass
class ExplorationResult:
    """Outcome of exploring one scenario."""

    scenario: str
    strategy: str
    schedules: int = 0
    record: Optional[ScheduleRecord] = None

    @property
    def found(self) -> bool:
        return self.record is not None


def save_schedule(record: ScheduleRecord, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(record.to_json())


def load_schedule(path: str) -> ScheduleRecord:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    version = data.get("schema_version")
    if version != SCHED_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported .sched schema_version {version!r} "
            f"(expected {SCHED_SCHEMA_VERSION})")
    return ScheduleRecord(
        scenario=data["scenario"],
        strategy=data["strategy"],
        seed=data.get("seed"),
        decisions=tuple((int(n), int(c)) for n, c in data["decisions"]),
        violation=Violation(kind=data["violation"]["kind"],
                            description=data["violation"]["description"]))


# ----------------------------------------------------------------------
# scenario registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A self-contained workload the explorer can rerun per schedule.

    ``run`` builds everything fresh (Environment/System included) so the
    installed tie-breaker and sanitizer factories take effect; it either
    returns normally (clean) or raises.  ``seeded_bug`` marks scenarios
    that *must* produce a violation — they gate CI's explore-smoke job.
    """

    name: str
    description: str
    run: Callable[[], None]
    seeded_bug: bool = False


SCENARIOS: Dict[str, Scenario] = {}


def scenario(name: str, description: str, seeded_bug: bool = False):
    """Register a scenario function under ``name``."""
    def decorate(fn: Callable[[], None]) -> Callable[[], None]:
        SCENARIOS[name] = Scenario(name, description, fn, seeded_bug)
        return fn
    return decorate


def smoke_scenarios() -> List[Scenario]:
    """The seeded-bug scenarios CI must catch within its budget."""
    return [s for s in SCENARIOS.values() if s.seeded_bug]


# ----------------------------------------------------------------------
# built-in scenarios
# ----------------------------------------------------------------------
class _SimLock:
    """A minimal FIFO mutex over engine events (scenario-local)."""

    def __init__(self, env) -> None:
        self.env = env
        self._held = False
        self._waiters: List[Any] = []

    def acquire(self) -> Generator[Any, Any, None]:
        if self._held:
            gate = self.env.event()
            self._waiters.append(gate)
            yield gate
        else:
            self._held = True
            return
            yield  # pragma: no cover - makes this a generator

    def release(self) -> None:
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            self._held = False


@scenario("lock-ties",
          "two clients, disjoint partial-stripe RMWs: lots of ties, "
          "no violation under any schedule")
def _scenario_lock_ties() -> None:
    from repro import CSARConfig, Payload, System

    system = System(CSARConfig(scheme="raid5", num_servers=4, num_clients=2,
                               stripe_unit=1024, content_mode=False,
                               background_flusher=False))
    span = system.layout.group_span

    def body(client, offset):
        yield from client.open("f")
        yield from client.write("f", offset, Payload.virtual(512))

    def setup():
        yield from system.client(0).create("f")

    system.run(setup())
    system.run(body(system.client(0), 0), body(system.client(1), span))


@scenario("race-lock-order",
          "a marker race decides lock order: ascending under the default "
          "schedule, descending (deadlock) when the reader wins the tie")
def _scenario_race_lock_order() -> None:
    from repro.sim.engine import Environment

    env = Environment()
    marker: List[bool] = []
    locks = {3: _SimLock(env), 5: _SimLock(env)}

    def writer():
        yield env.timeout(0)
        marker.append(True)  # publish "ascending" AFTER one scheduler tick
        yield from locks[3].acquire()
        try:
            yield env.timeout(1e-6)
            yield from locks[5].acquire()
            try:
                yield env.timeout(1e-6)
            finally:
                locks[5].release()
        finally:
            locks[3].release()

    def reader():
        yield env.timeout(0)
        # The race: if the writer's tick ran first the marker is visible
        # and both lock ascending; otherwise this process descends.
        first, second = (3, 5) if marker else (5, 3)
        yield from locks[first].acquire()
        try:
            yield env.timeout(1e-6)
            yield from locks[second].acquire()
            try:
                yield env.timeout(1e-6)
            finally:
                locks[second].release()
        finally:
            locks[first].release()

    done = env.all_of([env.process(writer()), env.process(reader())])
    env.run(until=done)


@scenario("buggy-lock-leak",
          "DropReleaseRaid5 drops its second RMW's group unlock: the "
          "next RMW on the group blocks forever",
          seeded_bug=True)
def _scenario_buggy_lock_leak() -> None:
    from repro import CSARConfig, Payload, System
    from repro.analysis import seeded_bugs

    config = CSARConfig(scheme="raid5", num_servers=4, num_clients=1,
                        stripe_unit=1024, content_mode=False,
                        background_flusher=False)
    system = seeded_bugs.inject(
        System(config), seeded_bugs.DropReleaseRaid5(config))
    client = system.client()

    def body():
        yield from client.create("f")
        for _ in range(3):  # third RMW needs the lock the second leaked
            yield from client.write("f", 0, Payload.virtual(512))

    system.run(body())


@scenario("buggy-helper-release-leak",
          "HelperReleaseRaid5 splits its lease acquire/release across "
          "helpers and drops the second release: the third write blocks "
          "on the leaked lease — the interprocedural leak CSAR010 flags",
          seeded_bug=True)
def _scenario_buggy_helper_release_leak() -> None:
    from repro import CSARConfig, Payload, System
    from repro.analysis import seeded_bugs

    config = CSARConfig(scheme="raid5", num_servers=4, num_clients=1,
                        stripe_unit=1024, content_mode=False,
                        background_flusher=False)
    system = seeded_bugs.inject(
        System(config), seeded_bugs.HelperReleaseRaid5(config))
    client = system.client()

    def body():
        yield from client.create("f")
        for _ in range(3):  # third lease blocks on the one #2 leaked
            yield from client.write("f", 0, Payload.virtual(512))

    system.run(body())


@scenario("buggy-lock-order",
          "DescendingLockRaid5 takes its strict-write group locks "
          "highest-first: LockSan witnesses the Section 5.1 "
          "order-inversion CSAR011 flags statically",
          seeded_bug=True)
def _scenario_buggy_lock_order() -> None:
    from repro import CSARConfig, Payload, System
    from repro.analysis import seeded_bugs

    config = CSARConfig(scheme="raid5", num_servers=4, num_clients=1,
                        stripe_unit=1024, content_mode=False,
                        background_flusher=False, strict_locking=True)
    system = seeded_bugs.inject(
        System(config), seeded_bugs.DescendingLockRaid5(config))
    client = system.client()
    span = system.layout.group_span

    def body():
        yield from client.create("f")
        # Two full groups: the seeded _strict_write locks group 1 first.
        yield from client.write("f", 0, Payload.virtual(2 * span))

    system.run(body())


@scenario("buggy-overflow-inplace",
          "InPlaceOverflowHybrid writes partial stripes onto the home "
          "blocks without a parity update: ParitySan flags stale parity",
          seeded_bug=True)
def _scenario_buggy_overflow_inplace() -> None:
    from repro import CSARConfig, Payload, System
    from repro.analysis import seeded_bugs

    config = CSARConfig(scheme="hybrid", num_servers=4, num_clients=1,
                        stripe_unit=1024, content_mode=True,
                        background_flusher=False)
    system = seeded_bugs.inject(
        System(config), seeded_bugs.InPlaceOverflowHybrid(config))
    client = system.client()
    span = system.layout.group_span

    def body():
        yield from client.create("f")
        # Full stripe first: establishes correct parity over group 0 …
        yield from client.write("f", 0, Payload.pattern(span, seed=1))
        # … then a partial overwrite the bug applies in place.
        yield from client.write("f", 100, Payload.pattern(300, seed=2))

    system.run(body())


@scenario("buggy-thawed-view",
          "ThawedViewRaid5 thaws the parity response's frozen buffer "
          "and XORs in place: the final parity bytes are correct "
          "(ParitySan quiet) but every alias of the buffer drifts — "
          "BufSan's fingerprints flag it",
          seeded_bug=True)
def _scenario_buggy_thawed_view() -> None:
    from repro import CSARConfig, Payload, System
    from repro.analysis import seeded_bugs

    config = CSARConfig(scheme="raid5", num_servers=4, num_clients=1,
                        stripe_unit=1024, content_mode=True,
                        background_flusher=False)
    system = seeded_bugs.inject(
        System(config), seeded_bugs.ThawedViewRaid5(config))
    client = system.client()
    span = system.layout.group_span

    def body():
        yield from client.create("f")
        # A full stripe seeds real parity, then a partial overwrite
        # drives the locked RMW whose fold thaws the response buffer.
        yield from client.write("f", 0, Payload.pattern(span, seed=1))
        yield from client.write("f", 100, Payload.pattern(300, seed=2))

    system.run(body())


@scenario("buggy-scratch-leak",
          "ScratchLeakHybrid stages its overflow mirror in a reused "
          "scratch buffer captured into the payload: the second "
          "same-size write rewrites the first mirror's bytes after the "
          "fact — BufSan catches the drift at re-capture",
          seeded_bug=True)
def _scenario_buggy_scratch_leak() -> None:
    from repro import CSARConfig, Payload, System
    from repro.analysis import seeded_bugs

    config = CSARConfig(scheme="hybrid", num_servers=4, num_clients=1,
                        stripe_unit=1024, content_mode=True,
                        background_flusher=False)
    system = seeded_bugs.inject(
        System(config), seeded_bugs.ScratchLeakHybrid(config))
    client = system.client()

    def body():
        yield from client.create("f")
        # Two partial writes of the same length with different content:
        # the second refills the scratch the first mirror still aliases.
        yield from client.write("f", 100, Payload.pattern(300, seed=1))
        yield from client.write("f", 100, Payload.pattern(300, seed=2))

    system.run(body())


# ----------------------------------------------------------------------
# running one schedule
# ----------------------------------------------------------------------
def _run_schedule(scen: Scenario, tie_breaker) \
        -> Tuple[Optional[Violation], Tuple[Tuple[int, int], ...]]:
    """Run ``scen`` once under ``tie_breaker`` with all sanitizers on.

    Returns ``(violation_or_None, decisions)``.
    """
    from repro.analysis import bufsan, locksan, paritysan
    from repro.sim import engine

    engine.set_tie_breaker_factory(lambda: tie_breaker)
    locksan.install()
    bufsan.install()
    paritysan.install()
    try:
        locksan.drain_reports()
        bufsan.drain_reports()
        paritysan.drain_reports()
        violation: Optional[Violation] = None
        try:
            scen.run()
        except (ReproError, AssertionError) as exc:
            violation = Violation(type(exc).__name__, str(exc))
        lock_reports = locksan.drain_reports()
        buf_reports = bufsan.drain_reports()
        parity_reports = paritysan.drain_reports()
        for r in lock_reports:
            if r.kind == "order-inversion":
                _WITNESSES.append({"file": r.file, "group": r.group,
                                   "held_group": r.held_group})
    finally:
        engine.set_tie_breaker_factory(None)
        locksan.uninstall()
        bufsan.uninstall()
        paritysan.uninstall()
    if violation is None and lock_reports:
        r = lock_reports[0]
        violation = Violation(f"locksan:{r.kind}", r.format())
    # BufSan outranks ParitySan: a mutated shared buffer is the root
    # cause of whatever parity mismatch it induces downstream.
    if violation is None and buf_reports:
        r = buf_reports[0]
        violation = Violation(f"bufsan:{r.kind}", r.format())
    if violation is None and parity_reports:
        r = parity_reports[0]
        violation = Violation(f"paritysan:{r.kind}", r.format())
    return violation, tuple(tie_breaker.decisions)


# ----------------------------------------------------------------------
# exploration drivers
# ----------------------------------------------------------------------
def explore(scenario_name: str, strategy: str = "dfs", budget: int = 64,
            depth: int = 12, seed: int = 0,
            ) -> ExplorationResult:
    """Search for a violating schedule of one registered scenario.

    ``budget`` bounds the number of schedules executed; ``depth`` bounds
    (for dfs) how many leading decision points may be branched on;
    ``seed`` is the base seed for pct.  Stops at the first violation.
    """
    scen = SCENARIOS.get(scenario_name)
    if scen is None:
        raise KeyError(f"unknown scenario {scenario_name!r}; "
                       f"known: {', '.join(sorted(SCENARIOS))}")
    result = ExplorationResult(scenario_name, strategy)

    def record(tb, violation, decisions) -> ScheduleRecord:
        return ScheduleRecord(
            scenario=scenario_name, strategy=strategy,
            seed=getattr(tb, "seed", None),
            decisions=decisions, violation=violation)

    if strategy == "pct":
        for i in range(budget):
            tb = RandomTieBreaker(seed + i)
            violation, decisions = _run_schedule(scen, tb)
            result.schedules += 1
            if violation is not None:
                result.record = record(tb, violation, decisions)
                return result
        return result

    if strategy != "dfs":
        raise ValueError(f"unknown strategy {strategy!r} (dfs|pct)")

    # DFS over forced decision prefixes.  A prefix forces the first
    # len(prefix) decisions; the run records the rest, and every untried
    # alternative at indices >= len(prefix) (up to ``depth``) becomes a
    # new prefix.  Index 0's alternative ordering was already covered by
    # whichever run produced the prefix, so alternatives only branch
    # *forward* — each prefix is visited at most once.
    stack: List[Tuple[int, ...]] = [()]
    seen = {()}
    while stack and result.schedules < budget:
        prefix = stack.pop()
        tb = ForcedTieBreaker(prefix)
        violation, decisions = _run_schedule(scen, tb)
        result.schedules += 1
        if violation is not None:
            result.record = record(tb, violation, decisions)
            return result
        for i in range(len(prefix), min(len(decisions), depth)):
            n, chosen = decisions[i]
            base = tuple(d[1] for d in decisions[:i])
            for alt in range(n):
                if alt == chosen:
                    continue
                candidate = base + (alt,)
                if candidate not in seen:
                    seen.add(candidate)
                    stack.append(candidate)
    return result


def replay(record: "ScheduleRecord | str") -> Tuple[bool, Optional[Violation]]:
    """Re-run a saved violating schedule; returns (reproduced, violation).

    ``reproduced`` is True when the forced replay produces a violation of
    the same kind as the recording.
    """
    if isinstance(record, str):
        record = load_schedule(record)
    scen = SCENARIOS.get(record.scenario)
    if scen is None:
        raise KeyError(f".sched references unknown scenario "
                       f"{record.scenario!r}")
    forced = tuple(chosen for _n, chosen in record.decisions)
    violation, _decisions = _run_schedule(scen, ForcedTieBreaker(forced))
    reproduced = (violation is not None
                  and violation.kind == record.violation.kind)
    return reproduced, violation


def explore_smoke(budget: int = 64, depth: int = 12,
                  sched_dir: Optional[str] = None,
                  witness_path: Optional[str] = None,
                  ) -> List[ExplorationResult]:
    """CI gate: every seeded-bug scenario must violate within budget.

    Each violation is additionally replayed from its own record to prove
    the ``.sched`` round-trip is deterministic.  Raises
    :class:`AssertionError` on any miss, so the job fails loudly.  When
    ``witness_path`` is given, every LockSan order-inversion observed
    during the sweep is saved there for CSAR011 cross-referencing
    (``csar-repro lint --witnesses``).
    """
    import os

    drain_witnesses()  # start the sweep with a clean witness slate
    results: List[ExplorationResult] = []
    for scen in smoke_scenarios():
        result = explore(scen.name, strategy="dfs", budget=budget,
                         depth=depth)
        results.append(result)
        if not result.found:
            raise AssertionError(
                f"explore-smoke: seeded bug {scen.name!r} NOT caught "
                f"within {result.schedules} schedules")
        reproduced, _ = replay(result.record)
        if not reproduced:
            raise AssertionError(
                f"explore-smoke: {scen.name!r} violation did not replay "
                f"deterministically")
        if sched_dir is not None:
            os.makedirs(sched_dir, exist_ok=True)
            save_schedule(result.record,
                          os.path.join(sched_dir, f"{scen.name}.sched"))
    if witness_path is not None:
        from repro.analysis import lint

        lint.save_witnesses(drain_witnesses(), witness_path)
    return results
