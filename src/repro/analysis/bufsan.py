"""BufSan: a runtime sanitizer for the zero-copy buffer discipline.

The zero-copy payload path (read-only numpy views, ``SegmentedPayload``
ropes, the one-scratch-buffer ``xor_at_many``) makes every content-mode
payload a *shared alias*: the same bytes may simultaneously back a
client's write, a server's stored block, a parity delta, and an
overflow-mirror entry.  The whole scheme is sound only if a buffer never
changes after a payload captures it.  LockSan checks the lock protocol
and ParitySan checks redundancy *state*; BufSan checks buffer
*identity* — the invariant the other two silently assume.

When installed (:func:`install`, the CLI's ``run --sanitize=buf``, or
``CSAR_BUFSAN=1`` honored by the test suite's ``conftest``), every new
:class:`~repro.sim.engine.Environment` gets a :class:`BufSan` as
``env.bufsan``, and :func:`repro.storage.payload.set_capture_hook`
routes every buffer capture here.  At the moment a
:class:`~repro.storage.payload.Payload` (or rope segment, or
materialized rope cache) captures an array, BufSan fingerprints its
bytes (xxhash when available, BLAKE2b otherwise); the fingerprint is
re-verified

* immediately, whenever the **same array object is captured again** —
  this catches scratch-buffer reuse at the exact process and sim-time
  of the mutating write;
* at the same sync points ParitySan uses: ``on_quiescent()`` from
  ``System.run``, ``on_run_complete()`` when the event heap drains,
  ``on_recovery(index)`` after a rebuild, and (with ``per_write=True``)
  whenever the in-flight write count returns to zero.

Any mismatch means some code thawed (``flags.writeable = True``) or
otherwise mutated a buffer after sharing it — exactly what the static
rules CSAR013–015 (:mod:`repro.analysis.bufflow`) prove absent; BufSan
is the dynamic witness for schedules the static scope misses.
Violations collect as :class:`BufSanReport` entries (swept by
:func:`drain_reports`); pass ``strict=True`` to raise
:class:`~repro.errors.BufSanError` on the first one.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import SanitizerRegistry
from repro.errors import BufSanError

try:  # pragma: no cover - exercised only where xxhash is installed
    import xxhash

    def _digest(data: bytes) -> str:
        return xxhash.xxh64(data).hexdigest()
except ImportError:  # stdlib fallback, same 64-bit width
    def _digest(data: bytes) -> str:
        return hashlib.blake2b(data, digest_size=8).hexdigest()

#: Every live sanitizer; the payload capture hook fans out to these.
_REGISTRY = SanitizerRegistry("bufsan")


@dataclass(frozen=True)
class BufSanReport:
    """One buffer observed to change after a payload captured it."""

    kind: str                 # "fingerprint-drift" | "writable-capture"
    message: str
    file: Optional[str]       # reserved: file attribution when known
    sync_point: str
    #: (process name, sim-time) when the buffer was captured
    captured: Tuple[Optional[str], Optional[float]]
    #: (process name, sim-time) when the drift was detected — at a
    #: re-capture this *is* the mutating write's process and time
    detected: Tuple[Optional[str], Optional[float]]

    def format(self) -> str:
        def _at(ctx: Tuple[Optional[str], Optional[float]]) -> str:
            proc, when = ctx
            return (f"{proc or '<outside sim>'} @ "
                    f"{'?' if when is None else f't={when:g}'}")

        return (f"BufSan[{self.kind}] at {self.sync_point}: {self.message} "
                f"(captured by {_at(self.captured)}; "
                f"detected by {_at(self.detected)})")


class _Tracked:
    """Bookkeeping for one captured buffer."""

    __slots__ = ("ref", "fingerprint", "kind", "nbytes", "captured")

    def __init__(self, ref: "weakref.ref[Any]", fingerprint: str,
                 kind: str, nbytes: int,
                 captured: Tuple[Optional[str], Optional[float]]) -> None:
        self.ref = ref
        self.fingerprint = fingerprint
        self.kind = kind
        self.nbytes = nbytes
        self.captured = captured


class BufSan:
    """Per-:class:`Environment` buffer-identity sanitizer."""

    def __init__(self, strict: bool = False,
                 per_write: bool = False) -> None:
        self.strict = strict
        self.per_write = per_write
        self.reports: List[BufSanReport] = []
        self._system: Optional[Any] = None
        self._inflight = 0
        self._closed = False
        #: id(array) -> tracking entry (weakref keeps buffers collectable)
        self._tracked: Dict[int, _Tracked] = {}
        #: total payload-captured bytes fingerprinted (cost accounting)
        self.bytes_fingerprinted = 0
        _REGISTRY.register(self)

    # ------------------------------------------------------------------
    def attach(self, system: Any) -> None:
        """Called by :class:`System` so drift can be attributed to the
        simulation clock and active process."""
        self._system = system

    def _context(self) -> Tuple[Optional[str], Optional[float]]:
        system = self._system
        if system is None:
            return (None, None)
        env = system.env
        proc = env.active_process
        return (proc.name if proc is not None else None, env.now)

    def _report(self, kind: str, message: str, sync_point: str,
                captured: Tuple[Optional[str], Optional[float]]) -> None:
        report = BufSanReport(kind, message, None, sync_point,
                              captured, self._context())
        self.reports.append(report)
        if self.strict:
            raise BufSanError(report.format())

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def on_capture(self, payload: Any, arr: Any, kind: str) -> None:
        """A payload captured ``arr``: fingerprint it, and verify any
        earlier capture of the same array object first."""
        if self._closed or arr.size == 0:
            return
        key = id(arr)
        entry = self._tracked.get(key)
        if entry is not None and entry.ref() is arr:
            self._verify(entry, arr, f"re-capture({kind})")
            # Track the newest capture context from here on: the buffer
            # now (also) backs this payload.
            entry.captured = self._context()
            return
        if arr.flags.writeable:
            # Payload.__init__/_from_segments freeze before this hook
            # runs, so a writable capture means a caller bypassed the
            # freeze path entirely.
            self._report("writable-capture",
                         f"{kind} captured a writable {arr.size}-byte "
                         f"buffer", f"capture({kind})", self._context())
        fingerprint = _digest(arr.tobytes())
        self.bytes_fingerprinted += arr.nbytes
        self._tracked[key] = _Tracked(weakref.ref(arr), fingerprint, kind,
                                      arr.nbytes, self._context())

    def _verify(self, entry: _Tracked, arr: Any, sync_point: str) -> bool:
        """Re-fingerprint one buffer; report and stop tracking on drift."""
        fingerprint = _digest(arr.tobytes())
        self.bytes_fingerprinted += arr.nbytes
        if fingerprint == entry.fingerprint:
            return True
        self._report(
            "fingerprint-drift",
            f"{entry.kind}-captured {arr.nbytes}-byte buffer changed "
            f"after sharing ({entry.fingerprint} -> {fingerprint})",
            sync_point, entry.captured)
        entry.fingerprint = fingerprint  # report each mutation once
        return False

    # ------------------------------------------------------------------
    # sync points
    # ------------------------------------------------------------------
    def on_quiescent(self) -> None:
        self._check_all("quiescent")

    def on_run_complete(self) -> None:
        self._check_all("run-complete")
        self._closed = True

    def on_recovery(self, index: int) -> None:
        self._check_all(f"post-recovery(server {index})")

    def on_write_start(self, name: str) -> None:
        self._inflight += 1

    def on_write_complete(self, name: str) -> None:
        self._inflight -= 1
        if self.per_write and self._inflight == 0:
            self._check_all(f"post-write({name})")

    # ------------------------------------------------------------------
    def _check_all(self, sync_point: str) -> None:
        """Re-verify every live tracked buffer.

        Unlike ParitySan there is no in-flight or degraded exclusion: a
        captured buffer must never change, not even mid-write or
        mid-rebuild.
        """
        dead: List[int] = []
        for key, entry in self._tracked.items():
            arr = entry.ref()
            if arr is None:
                dead.append(key)
                continue
            self._verify(entry, arr, sync_point)
        for key in dead:
            del self._tracked[key]


# ----------------------------------------------------------------------
# global installation
# ----------------------------------------------------------------------
def _on_payload_capture(payload: Any, arr: Any, kind: str) -> None:
    """The :func:`repro.storage.payload.set_capture_hook` target: fan a
    capture out to every live, still-open sanitizer."""
    for sanitizer in _REGISTRY.live():
        sanitizer.on_capture(payload, arr, kind)


def install(strict: bool = False, per_write: bool = False) -> None:
    """Attach a fresh BufSan to every Environment created from now on
    and start observing payload captures."""
    from repro.sim import engine
    from repro.storage import payload

    engine.set_bufsan_factory(
        lambda: BufSan(strict=strict, per_write=per_write))
    payload.set_capture_hook(_on_payload_capture)


def uninstall() -> None:
    """Stop sanitizing new Environments and observing captures."""
    from repro.sim import engine
    from repro.storage import payload

    engine.set_bufsan_factory(None)
    payload.set_capture_hook(None)


def installed() -> bool:
    from repro.sim import engine

    return engine.bufsan_factory() is not None


def drain_reports() -> List[BufSanReport]:
    """Collect (and clear) reports from every live sanitizer."""
    return _REGISTRY.drain()
