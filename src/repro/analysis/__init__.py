"""Correctness tooling for the CSAR reproduction.

Three cooperating layers guard the Section 5.1 parity-lock protocol,
the redundancy invariants, and the zero-copy buffer discipline:

* :mod:`repro.analysis.lint` — ``csar-lint``, an AST-based static
  checker with CSAR-specific rules (``csar-repro lint src``), including
  the buffer-provenance rules of :mod:`repro.analysis.bufflow`;
* :mod:`repro.analysis.locksan` — LockSan, an opt-in runtime sanitizer
  that tracks held-lock sets and a wait-for graph while a simulation
  runs (``csar-repro run --sanitize=lock``, ``CSAR_LOCKSAN=1``);
* :mod:`repro.analysis.paritysan` — ParitySan, checking parity/mirror/
  overflow consistency at quiescent points (``--sanitize=parity``,
  ``CSAR_PARITYSAN=1``);
* :mod:`repro.analysis.bufsan` — BufSan, fingerprinting every buffer a
  payload captures and re-verifying it at the same sync points
  (``--sanitize=buf``, ``CSAR_BUFSAN=1``).

See ``docs/ANALYSIS.md`` for every rule with an offending snippet and
its fix.
"""

from __future__ import annotations

import importlib
import weakref
from typing import Any, Iterable, List, Tuple


class SanitizerRegistry:
    """Weak-ref registry of the live instances of one sanitizer kind.

    LockSan, ParitySan, and BufSan each keep one module-level registry:
    instances register themselves at construction, and
    ``drain_reports()`` sweeps reports across every live instance
    without threading them through.  Drains keep live sanitizers
    registered (their Environments may keep running), so reports made
    after a drain are still seen; dead ones are swept out.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._active: List["weakref.ref[Any]"] = []

    def register(self, sanitizer: Any) -> None:
        self._active.append(weakref.ref(sanitizer))

    def live(self) -> List[Any]:
        """Every live registered sanitizer (sweeps dead refs)."""
        out: List[Any] = []
        refs: List["weakref.ref[Any]"] = []
        for ref in self._active:
            sanitizer = ref()
            if sanitizer is None:
                continue
            out.append(sanitizer)
            refs.append(ref)
        self._active[:] = refs
        return out

    def drain(self) -> List[Any]:
        """Collect (and clear) reports from every live sanitizer."""
        out: List[Any] = []
        for sanitizer in self.live():
            out.extend(sanitizer.reports)
            sanitizer.reports = []
        return out


# ----------------------------------------------------------------------
# sanitizer mode composition (``--sanitize=lock|parity|buf|all``)
# ----------------------------------------------------------------------
#: mode name -> implementing module; every module exposes the same
#: ``install() / uninstall() / installed() / drain_reports()`` surface.
SANITIZER_MODULES = {
    "lock": "repro.analysis.locksan",
    "parity": "repro.analysis.paritysan",
    "buf": "repro.analysis.bufsan",
}


def sanitize_modes(sanitize: "str | bool | None") -> Tuple[str, ...]:
    """Decode a ``--sanitize`` value into a tuple of mode names.

    Accepts the CLI strings ``"lock"`` / ``"parity"`` / ``"buf"`` /
    ``"all"`` plus the legacy booleans (``True`` meant LockSan only).
    """
    if not sanitize:
        return ()
    if sanitize is True:
        return ("lock",)
    if sanitize == "all":
        return tuple(sorted(SANITIZER_MODULES))
    if sanitize in SANITIZER_MODULES:
        return (str(sanitize),)
    raise ValueError(f"unknown sanitize mode {sanitize!r} "
                     f"(expected {'|'.join(sorted(SANITIZER_MODULES))}|all)")


def sanitizer_module(mode: str):
    """The implementing module of one sanitizer mode."""
    return importlib.import_module(SANITIZER_MODULES[mode])


def install_sanitizers(modes: Iterable[str]) -> None:
    for mode in modes:
        module = sanitizer_module(mode)
        if not module.installed():
            module.install()


def uninstall_sanitizers(modes: Iterable[str]) -> None:
    for mode in modes:
        sanitizer_module(mode).uninstall()


def drain_sanitizer_reports(modes: Iterable[str]) -> List[Any]:
    """Sweep reports (in mode order) across the given sanitizer kinds."""
    out: List[Any] = []
    for mode in modes:
        out.extend(sanitizer_module(mode).drain_reports())
    return out


from repro.analysis.bufsan import BufSan, BufSanReport  # noqa: E402
from repro.analysis.lint import (Finding, format_json, format_text,  # noqa: E402
                                 lint_file, lint_paths, lint_source)
from repro.analysis.locksan import LockSan, LockSanReport, drain_reports  # noqa: E402
from repro.analysis.paritysan import ParitySan, ParitySanReport  # noqa: E402
from repro.analysis.rules import RULES, Rule, all_codes  # noqa: E402

__all__ = [
    "BufSan",
    "BufSanReport",
    "Finding",
    "LockSan",
    "LockSanReport",
    "ParitySan",
    "ParitySanReport",
    "RULES",
    "Rule",
    "SANITIZER_MODULES",
    "SanitizerRegistry",
    "all_codes",
    "drain_reports",
    "drain_sanitizer_reports",
    "format_json",
    "format_text",
    "install_sanitizers",
    "lint_file",
    "lint_paths",
    "lint_source",
    "sanitize_modes",
    "sanitizer_module",
    "uninstall_sanitizers",
]
