"""Correctness tooling for the CSAR reproduction.

Two cooperating layers guard the Section 5.1 parity-lock protocol and
the generator-process style it is written in:

* :mod:`repro.analysis.lint` — ``csar-lint``, an AST-based static
  checker with CSAR-specific rules (``csar-repro lint src``);
* :mod:`repro.analysis.locksan` — LockSan, an opt-in runtime sanitizer
  that tracks held-lock sets and a wait-for graph while a simulation
  runs (``csar-repro run --sanitize``, ``CSAR_LOCKSAN=1`` for tests).

See ``docs/ANALYSIS.md`` for every rule with an offending snippet and
its fix.
"""

from repro.analysis.lint import (Finding, format_json, format_text,
                                 lint_file, lint_paths, lint_source)
from repro.analysis.locksan import LockSan, LockSanReport, drain_reports
from repro.analysis.rules import RULES, Rule, all_codes

__all__ = [
    "Finding",
    "LockSan",
    "LockSanReport",
    "RULES",
    "Rule",
    "all_codes",
    "drain_reports",
    "format_json",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_source",
]
