"""``csar-repro profile``: cProfile one experiment plus kernel counters.

Wraps an experiment run in :mod:`cProfile` and, through the engine's
environment-observer hook, collects the free scheduling/dispatch
counters of every :class:`~repro.sim.engine.Environment` the experiment
creates (one per simulated system/phase).  The counters cost nothing in
the kernel — ``scheduled`` is the heap sequence number the engine keeps
anyway and ``dispatched`` is derived from it — so profiling answers both
"where does the wall clock go?" and "how many events did that cost?".
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import List, Optional, Tuple

from repro.experiments import ExpTable, get_experiment
from repro.sim import engine


def _profile_call(func, title: str, top: int, sort: str):
    """Run ``func`` under cProfile + the env-observer; returns (report,
    func's return value)."""
    envs: List[engine.Environment] = []
    previous = engine.env_observer()

    def observer(env: engine.Environment) -> None:
        envs.append(env)
        if previous is not None:
            previous(env)

    engine.set_env_observer(observer)
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        try:
            result = func()
        finally:
            profiler.disable()
    finally:
        engine.set_env_observer(previous)

    lines = [f"== profile: {title} ==", ""]
    lines.append("-- kernel counters (one environment per simulated "
                 "system/phase) --")
    total_scheduled = total_dispatched = 0
    for i, env in enumerate(envs):
        stats = env.stats()
        total_scheduled += stats["scheduled"]
        total_dispatched += stats["dispatched"]
        lines.append(
            f"env#{i}: scheduled={stats['scheduled']} "
            f"dispatched={stats['dispatched']} "
            f"pending={stats['pending']} sim_time={stats['now']:.3f}s")
    lines.append(f"total: environments={len(envs)} "
                 f"scheduled={total_scheduled} "
                 f"dispatched={total_dispatched}")
    lines.append("")

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    lines.append(f"-- cProfile (top {top} by {sort}) --")
    lines.append(buffer.getvalue().rstrip())
    return "\n".join(lines), result


def profile_experiment(exp_id: str, scale: Optional[float] = None,
                       top: int = 20,
                       sort: str = "cumulative") -> Tuple[str, ExpTable]:
    """Run one experiment under cProfile; returns (report text, table)."""
    exp = get_experiment(exp_id)
    effective = exp.default_scale if scale is None else scale
    return _profile_call(lambda: exp.run(scale=effective),
                         f"{exp_id} (scale {effective:g})", top, sort)


def profile_bench(name: str, top: int = 20,
                  sort: str = "cumulative") -> str:
    """Run one bench scenario (``repro.perf.bench``) under cProfile.

    The scenario runs once unprofiled first so module-level fixtures
    (cached payloads, RNG blocks) are built outside the measurement —
    the profile shows the steady-state cost the ``--check`` gate tracks.
    """
    from repro.errors import ConfigError
    from repro.perf import bench

    scenario = bench.SCENARIOS.get(name)
    if scenario is None:
        raise ConfigError(f"unknown bench scenario {name!r}; known: "
                          f"{', '.join(bench.SCENARIOS)}")
    scenario.func()  # warm fixtures
    report, _value = _profile_call(scenario.func, f"bench:{name}", top, sort)
    return report
