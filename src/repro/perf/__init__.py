"""Performance layer: parallel sweeps, profiling, and the bench harness.

Three pieces, all riding on the deterministic event kernel:

* :mod:`repro.perf.runner` — fan independent experiment sweep points
  across a process pool (``csar-repro run --jobs N``) with deterministic
  result ordering and merged kernel counters;
* :mod:`repro.perf.profiler` — ``csar-repro profile``: cProfile plus the
  kernel's free event/dispatch counters, per environment;
* :mod:`repro.perf.bench` — ``csar-repro bench``: the simulator's own
  micro-benchmarks, appended to ``BENCH_simulator.json`` to seed the
  repo's perf trajectory.
"""

from repro.perf.runner import (SweepPoint, SweepPointError, SweepResult,
                               merge_counters, run_sweep)

__all__ = [
    "SweepPoint",
    "SweepPointError",
    "SweepResult",
    "merge_counters",
    "run_sweep",
]
