"""``csar-repro bench``: the simulator's own perf-trajectory harness.

The scenario bodies here are the single source of truth for simulator
micro-benchmarks: ``benchmarks/test_simulator_perf.py`` wraps the same
callables under pytest-benchmark, and ``csar-repro bench`` times them
with a plain best-of-N :func:`time.perf_counter` loop and appends
machine-readable results to ``BENCH_simulator.json`` so every PR can
record before/after numbers (see ``docs/PERF.md``).

``--check`` compares the fresh numbers against the last committed run
and fails on a >30% wall-clock regression in any scenario — the CI
guard against quietly losing the kernel fast paths.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default location of the perf-trajectory log, relative to the cwd.
DEFAULT_JSON = "BENCH_simulator.json"
#: ``--check`` failure threshold: fractional slowdown vs the baseline.
DEFAULT_THRESHOLD = 0.30


# ----------------------------------------------------------------------
# scenario bodies (shared with benchmarks/test_simulator_perf.py)
# ----------------------------------------------------------------------
def engine_events_once() -> float:
    """50 processes x 200 timeouts through the bare kernel."""
    from repro.sim import Environment

    env = Environment()

    def ticker():
        for _ in range(200):
            yield env.timeout(1.0)

    for _ in range(50):
        env.process(ticker())
    env.run()
    return env.now


def resource_contention_once() -> int:
    """20 workers hammering a capacity-2 FIFO resource."""
    from repro.sim import Environment, Resource

    env = Environment()
    res = Resource(env, capacity=2)

    def worker():
        for _ in range(50):
            with res.request() as req:
                yield req
                yield env.timeout(0.1)

    for _ in range(20):
        env.process(worker())
    env.run()
    return res.total_waits


def parity_kernel_once() -> int:
    """XOR five 1 MiB blocks (the RAID5 parity kernel)."""
    import numpy as np

    from repro.units import MiB
    from repro.util.parity import xor_bytes

    blocks = [np.random.default_rng(i).integers(0, 256, 1 * MiB,
                                                dtype=np.uint8)
              for i in range(5)]
    return len(xor_bytes(blocks))


def extent_map_churn_once() -> int:
    """2000 scattered adds (plus removes) against one ExtentMap."""
    from repro.util.intervals import ExtentMap

    m = ExtentMap()
    for i in range(2000):
        base = (i * 7919) % 100_000
        m.add(base, base + 512)
        if i % 3 == 0:
            m.remove(base + 100, base + 200)
    return m.total()


def end_to_end_write_once() -> float:
    """Simulated bytes/second through the full CSAR hybrid stack."""
    from repro import CSARConfig, Payload, System
    from repro.units import KiB

    system = System(CSARConfig(scheme="hybrid", num_servers=6,
                               num_clients=1, stripe_unit=64 * KiB,
                               content_mode=False))
    client = system.client()
    span = system.layout.group_span
    chunk = 12 * span

    def work():
        yield from client.create("f")
        for i in range(8):
            yield from client.write("f", i * chunk, Payload.virtual(chunk))

    elapsed, _ = system.timed(work())
    return 8 * chunk / elapsed


@dataclass(frozen=True)
class Scenario:
    """One benchmark: a callable plus an optional operation count."""

    name: str
    func: Callable[[], object]
    description: str
    #: Operations per call for ops/sec reporting (None = seconds only).
    ops: Optional[int] = None


SCENARIOS: Dict[str, Scenario] = {
    s.name: s for s in (
        Scenario("engine_event_throughput", engine_events_once,
                 "bare kernel: 50 processes x 200 timeouts",
                 ops=50 * 200),
        Scenario("resource_contention", resource_contention_once,
                 "20 workers on a capacity-2 FIFO resource",
                 ops=20 * 50),
        Scenario("parity_kernel", parity_kernel_once,
                 "XOR of five 1 MiB blocks", ops=5 * (1 << 20)),
        Scenario("extent_map_churn", extent_map_churn_once,
                 "2000 scattered ExtentMap adds/removes", ops=2000),
        Scenario("end_to_end_write", end_to_end_write_once,
                 "full hybrid-stack streaming write (extent mode)"),
    )
}


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def run_scenarios(names: Optional[Sequence[str]] = None,
                  repeats: int = 5) -> Dict[str, Dict[str, float]]:
    """Best-of-``repeats`` wall time per scenario (one warm-up call)."""
    selected = list(names) if names else list(SCENARIOS)
    results: Dict[str, Dict[str, float]] = {}
    for name in selected:
        scenario = SCENARIOS[name]
        scenario.func()  # warm-up: imports, allocator, caches
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            scenario.func()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
        entry: Dict[str, float] = {"seconds": best}
        if scenario.ops is not None:
            entry["ops"] = float(scenario.ops)
            entry["ops_per_sec"] = scenario.ops / best if best > 0 else 0.0
        results[name] = entry
    return results


# ----------------------------------------------------------------------
# the JSON trajectory file
# ----------------------------------------------------------------------
def load(path: str = DEFAULT_JSON) -> Dict:
    if not os.path.exists(path):
        return {"schema": 1, "runs": []}
    with open(path, "r", encoding="utf-8") as fp:
        data = json.load(fp)
    data.setdefault("schema", 1)
    data.setdefault("runs", [])
    return data


def append_run(results: Dict[str, Dict[str, float]],
               path: str = DEFAULT_JSON, note: str = "",
               quick: bool = False) -> Dict:
    """Append one run entry to the trajectory file; returns the entry."""
    data = load(path)
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "note": note,
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
    }
    data["runs"].append(entry)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(data, fp, indent=2)
        fp.write("\n")
    return entry


def baseline_run(data: Dict) -> Optional[Dict]:
    """The run new numbers are compared against: the last recorded one."""
    runs = data.get("runs", [])
    return runs[-1] if runs else None


def check_regression(baseline: Dict,
                     results: Dict[str, Dict[str, float]],
                     threshold: float = DEFAULT_THRESHOLD,
                     ) -> List[Tuple[str, float, float, float]]:
    """Scenarios slower than ``baseline`` by more than ``threshold``.

    Returns ``(name, baseline_seconds, new_seconds, slowdown)`` tuples,
    where slowdown 0.35 means 35% slower.
    """
    failures: List[Tuple[str, float, float, float]] = []
    base_results = baseline.get("results", {})
    for name, entry in results.items():
        base = base_results.get(name)
        if base is None or base.get("seconds", 0) <= 0:
            continue
        slowdown = entry["seconds"] / base["seconds"] - 1.0
        if slowdown > threshold:
            failures.append((name, base["seconds"], entry["seconds"],
                             slowdown))
    return failures


def format_results(results: Dict[str, Dict[str, float]],
                   baseline: Optional[Dict] = None) -> str:
    """Human-readable rendering, with deltas vs a baseline run if any."""
    lines = []
    base_results = (baseline or {}).get("results", {})
    width = max(len(n) for n in results)
    for name, entry in results.items():
        line = f"{name.ljust(width)}  {entry['seconds'] * 1000:8.2f} ms"
        if "ops_per_sec" in entry:
            line += f"  ({entry['ops_per_sec']:,.0f} ops/s)"
        base = base_results.get(name)
        if base and base.get("seconds", 0) > 0:
            delta = entry["seconds"] / base["seconds"] - 1.0
            line += f"  [{delta:+.1%} vs baseline]"
        lines.append(line)
    return "\n".join(lines)
