"""``csar-repro bench``: the simulator's own perf-trajectory harness.

The scenario bodies here are the single source of truth for simulator
micro-benchmarks: ``benchmarks/test_simulator_perf.py`` wraps the same
callables under pytest-benchmark, and ``csar-repro bench`` times them
with a plain best-of-N :func:`time.perf_counter` loop and appends
machine-readable results to ``BENCH_simulator.json`` so every PR can
record before/after numbers (see ``docs/PERF.md``).

``--check`` compares the fresh numbers against the last committed run
and fails on a >30% wall-clock regression in any scenario — the CI
guard against quietly losing the kernel fast paths.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default location of the perf-trajectory log, relative to the cwd.
DEFAULT_JSON = "BENCH_simulator.json"
#: ``--check`` failure threshold: fractional slowdown vs the baseline.
DEFAULT_THRESHOLD = 0.30


# ----------------------------------------------------------------------
# scenario bodies (shared with benchmarks/test_simulator_perf.py)
# ----------------------------------------------------------------------
def engine_events_once() -> float:
    """50 processes x 200 timeouts through the bare kernel."""
    from repro.sim import Environment

    env = Environment()

    def ticker():
        for _ in range(200):
            yield env.timeout(1.0)

    for _ in range(50):
        env.process(ticker())
    env.run()
    return env.now


def resource_contention_once() -> int:
    """20 workers hammering a capacity-2 FIFO resource."""
    from repro.sim import Environment, Resource

    env = Environment()
    res = Resource(env, capacity=2)

    def worker():
        for _ in range(50):
            with res.request() as req:
                yield req
                yield env.timeout(0.1)

    for _ in range(20):
        env.process(worker())
    env.run()
    return res.total_waits


#: Module-level scenario fixtures, built once per process.  Keeping the
#: RNG block generation out of the timed region means the scenarios
#: measure the code under test (XOR kernel, simulator stack) rather than
#: ``default_rng`` — a scenario-semantics change recorded in the
#: BENCH_simulator.json entry that introduced it.
_FIXTURES: Dict[str, object] = {}


def _parity_blocks():
    blocks = _FIXTURES.get("parity_blocks")
    if blocks is None:
        import numpy as np

        from repro.units import MiB

        blocks = _FIXTURES["parity_blocks"] = [
            np.random.default_rng(i).integers(0, 256, 1 * MiB,
                                              dtype=np.uint8)
            for i in range(5)]
    return blocks


def _content_payload(length: int):
    key = ("payload", length)
    payload = _FIXTURES.get(key)
    if payload is None:
        from repro import Payload

        payload = _FIXTURES[key] = Payload.pattern(length, seed=length)
    return payload


def parity_kernel_once() -> int:
    """XOR five 1 MiB blocks (the RAID5 parity kernel).

    The blocks come from a module-level cached fixture so only the XOR
    itself is timed (the RNG used to dominate this scenario).
    """
    from repro.util.parity import xor_bytes

    return len(xor_bytes(_parity_blocks()))


def extent_map_churn_once() -> int:
    """2000 scattered adds (plus removes) against one ExtentMap."""
    from repro.util.intervals import ExtentMap

    m = ExtentMap()
    for i in range(2000):
        base = (i * 7919) % 100_000
        m.add(base, base + 512)
        if i % 3 == 0:
            m.remove(base + 100, base + 200)
    return m.total()


def end_to_end_write_once() -> float:
    """Simulated bytes/second through the full CSAR hybrid stack."""
    from repro import CSARConfig, Payload, System
    from repro.units import KiB

    system = System(CSARConfig(scheme="hybrid", num_servers=6,
                               num_clients=1, stripe_unit=64 * KiB,
                               content_mode=False))
    client = system.client()
    span = system.layout.group_span
    chunk = 12 * span

    def work():
        yield from client.create("f")
        for i in range(8):
            yield from client.write("f", i * chunk, Payload.virtual(chunk))

    elapsed, _ = system.timed(work())
    return 8 * chunk / elapsed


def content_mode_write_once() -> float:
    """Simulated bytes/second through the hybrid stack with real bytes.

    The content-mode twin of ``end_to_end_write``: every payload carries
    a real numpy buffer, so this times the scatter-gather data path —
    slicing, parity XOR, blockfile writes — on top of the event kernel.
    Eight aligned full-stripe chunks plus eight unaligned partials
    exercise both the RAID5-style and the overflow write paths.
    """
    from repro import CSARConfig, System
    from repro.units import KiB

    system = System(CSARConfig(scheme="hybrid", num_servers=6,
                               num_clients=1, stripe_unit=64 * KiB,
                               content_mode=True))
    client = system.client()
    span = system.layout.group_span
    chunk = 12 * span
    big = _content_payload(chunk)
    small = _content_payload(24 * KiB)

    def work():
        yield from client.create("f")
        for i in range(8):
            yield from client.write("f", i * chunk, big)
            yield from client.write("f", i * chunk + 3 * KiB, small)

    elapsed, _ = system.timed(work())
    return 8 * chunk / elapsed


_CONTENT_WRITE_BYTES = 8 * 12 * 5 * 64 * 1024 + 8 * 24 * 1024


def content_mode_degraded_read_once() -> int:
    """Degraded-mode read of a whole file with one server failed.

    Every stripe unit of the failed server's share is reconstructed from
    the survivors plus parity — the per-fragment RPC pattern the request
    coalescer collapses into one vectored message per server.
    """
    from repro import CSARConfig, System
    from repro.units import KiB

    system = System(CSARConfig(scheme="hybrid", num_servers=6,
                               num_clients=1, stripe_unit=64 * KiB,
                               content_mode=True))
    client = system.client()
    span = system.layout.group_span
    chunk = 4 * span
    payload = _content_payload(chunk)

    def setup():
        yield from client.create("f")
        for i in range(4):
            yield from client.write("f", i * chunk, payload)

    system.run(setup())
    system.fail_server(2)

    def reader():
        data = yield from client.read("f", 0, 4 * chunk)
        return data.length

    return system.run(reader())


_DEGRADED_READ_BYTES = 4 * 4 * 5 * 64 * 1024


def payload_sg_churn_once() -> int:
    """Pure payload algebra: slice/concat/assemble/xor_at/overlay churn.

    No simulator involved — this isolates the scatter-gather payload
    representation the data path is built on.
    """
    from repro import Payload
    from repro.units import KiB

    base = _content_payload(256 * KiB)
    unit = 16 * KiB
    total = 0
    for i in range(200):
        at = (i * 7919) % (base.length - 2 * unit)
        a = base.slice(at, at + unit)
        b = base.slice(at + unit, at + 2 * unit)
        joined = a.concat(b)
        gathered = Payload.assemble(
            2 * unit, [(0, a), (unit, b)])
        folded = joined.xor_at(0, gathered)
        patched = folded.overlay(unit // 2, a)
        total += patched.length
    return total


@dataclass(frozen=True)
class Scenario:
    """One benchmark: a callable plus an optional operation count."""

    name: str
    func: Callable[[], object]
    description: str
    #: Operations per call for ops/sec reporting (None = seconds only).
    ops: Optional[int] = None


SCENARIOS: Dict[str, Scenario] = {
    s.name: s for s in (
        Scenario("engine_event_throughput", engine_events_once,
                 "bare kernel: 50 processes x 200 timeouts",
                 ops=50 * 200),
        Scenario("resource_contention", resource_contention_once,
                 "20 workers on a capacity-2 FIFO resource",
                 ops=20 * 50),
        Scenario("parity_kernel", parity_kernel_once,
                 "XOR of five 1 MiB blocks", ops=5 * (1 << 20)),
        Scenario("extent_map_churn", extent_map_churn_once,
                 "2000 scattered ExtentMap adds/removes", ops=2000),
        Scenario("end_to_end_write", end_to_end_write_once,
                 "full hybrid-stack streaming write (extent mode)"),
        Scenario("content_mode_write", content_mode_write_once,
                 "full hybrid-stack write with real bytes (content mode)",
                 ops=_CONTENT_WRITE_BYTES),
        Scenario("content_mode_degraded_read", content_mode_degraded_read_once,
                 "whole-file reconstruction read with one server failed",
                 ops=_DEGRADED_READ_BYTES),
        Scenario("payload_sg_churn", payload_sg_churn_once,
                 "payload slice/concat/assemble/xor_at/overlay algebra",
                 ops=200),
    )
}


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def run_scenarios(names: Optional[Sequence[str]] = None,
                  repeats: int = 5) -> Dict[str, Dict[str, float]]:
    """Best-of-``repeats`` wall time per scenario (one warm-up call).

    ``names=None`` runs everything; an explicit empty selection runs
    nothing and returns an empty dict.  Unknown names raise ``ValueError``
    rather than a bare ``KeyError`` so callers can report them cleanly.
    """
    selected = list(SCENARIOS) if names is None else list(names)
    results: Dict[str, Dict[str, float]] = {}
    for name in selected:
        scenario = SCENARIOS.get(name)
        if scenario is None:
            raise ValueError(
                f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}")
        scenario.func()  # warm-up: imports, allocator, caches
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            scenario.func()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
        entry: Dict[str, float] = {"seconds": best}
        if scenario.ops is not None:
            entry["ops"] = float(scenario.ops)
            entry["ops_per_sec"] = scenario.ops / best if best > 0 else 0.0
        results[name] = entry
    return results


# ----------------------------------------------------------------------
# the JSON trajectory file
# ----------------------------------------------------------------------
def load(path: str = DEFAULT_JSON) -> Dict:
    if not os.path.exists(path):
        return {"schema": 1, "runs": []}
    with open(path, "r", encoding="utf-8") as fp:
        data = json.load(fp)
    data.setdefault("schema", 1)
    data.setdefault("runs", [])
    return data


def append_run(results: Dict[str, Dict[str, float]],
               path: str = DEFAULT_JSON, note: str = "",
               quick: bool = False) -> Dict:
    """Append one run entry to the trajectory file; returns the entry."""
    data = load(path)
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "note": note,
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
    }
    data["runs"].append(entry)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(data, fp, indent=2)
        fp.write("\n")
    return entry


def baseline_run(data: Dict) -> Optional[Dict]:
    """The run new numbers are compared against: the last recorded one."""
    runs = data.get("runs", [])
    return runs[-1] if runs else None


def check_regression(baseline: Dict,
                     results: Dict[str, Dict[str, float]],
                     threshold: float = DEFAULT_THRESHOLD,
                     ) -> List[Tuple[str, float, float, float]]:
    """Scenarios slower than ``baseline`` by more than ``threshold``.

    Returns ``(name, baseline_seconds, new_seconds, slowdown)`` tuples,
    where slowdown 0.35 means 35% slower.
    """
    failures: List[Tuple[str, float, float, float]] = []
    base_results = baseline.get("results", {})
    for name, entry in results.items():
        base = base_results.get(name)
        if base is None or base.get("seconds", 0) <= 0:
            continue
        slowdown = entry["seconds"] / base["seconds"] - 1.0
        if slowdown > threshold:
            failures.append((name, base["seconds"], entry["seconds"],
                             slowdown))
    return failures


def format_results(results: Dict[str, Dict[str, float]],
                   baseline: Optional[Dict] = None) -> str:
    """Human-readable rendering, with deltas vs a baseline run if any.

    An empty results dict (e.g. every requested scenario name was
    unknown) renders as a clear message instead of crashing on
    ``max()`` over an empty sequence.
    """
    if not results:
        return ("no scenarios ran (unknown or empty selection); "
                f"known scenarios: {', '.join(SCENARIOS)}")
    lines = []
    base_results = (baseline or {}).get("results", {})
    width = max(len(n) for n in results)
    for name, entry in results.items():
        line = f"{name.ljust(width)}  {entry['seconds'] * 1000:8.2f} ms"
        if "ops_per_sec" in entry:
            line += f"  ({entry['ops_per_sec']:,.0f} ops/s)"
        base = base_results.get(name)
        if base and base.get("seconds", 0) > 0:
            delta = entry["seconds"] / base["seconds"] - 1.0
            line += f"  [{delta:+.1%} vs baseline]"
        lines.append(line)
    return "\n".join(lines)
