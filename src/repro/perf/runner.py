"""Parallel experiment sweeps over a process pool.

A sweep point — one ``(experiment, scale)`` pair — is an independent,
fully deterministic simulation, so points are embarrassingly parallel:
each worker process runs exactly one simulation at a time and produces
the same tables it would produce sequentially.  :func:`run_sweep` fans
points across a :class:`~concurrent.futures.ProcessPoolExecutor` and
returns results **in submission order** regardless of completion order,
so ``--jobs 4`` output is byte-identical to ``--jobs 1`` (modulo wall
clock, which is reported but not part of any table).

Failures never vanish into the pool: a point whose experiment raises
comes back as a :class:`SweepResult` carrying the original exception,
and :meth:`SweepResult.raise_error` re-raises it wrapped in a
:class:`SweepPointError` naming the point.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments import ExpTable, get_experiment


@dataclass(frozen=True)
class SweepPoint:
    """One independent unit of sweep work: an experiment at a scale."""

    exp_id: str
    scale: Optional[float] = None
    label: Optional[str] = None

    def resolved_label(self) -> str:
        if self.label is not None:
            return self.label
        if self.scale is None:
            return self.exp_id
        return f"{self.exp_id}@{self.scale:g}"


@dataclass
class SweepResult:
    """Outcome of one sweep point (table or error, never both)."""

    point: SweepPoint
    table: Optional[ExpTable]
    wall: float
    #: Kernel counters summed over every Environment the point created:
    #: ``environments``, ``events_scheduled``, ``events_dispatched``,
    #: ``sim_time``.
    counters: Dict[str, float] = field(default_factory=dict)
    error: Optional[BaseException] = None
    sanitizer_reports: List[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.point.resolved_label()

    @property
    def ok(self) -> bool:
        return self.error is None

    def raise_error(self) -> None:
        """Re-raise the point's failure (no-op when the point succeeded)."""
        if self.error is not None:
            raise SweepPointError(self.label, self.error) from self.error


class SweepPointError(RuntimeError):
    """A sweep point failed; names the point and carries the original."""

    def __init__(self, label: str, original: BaseException) -> None:
        super().__init__(
            f"sweep point {label!r} failed: "
            f"{type(original).__name__}: {original}")
        self.label = label
        self.original = original


def _portable_exception(exc: BaseException) -> BaseException:
    """The exception itself if it survives pickling, else a summary.

    Worker results cross a process boundary; an unpicklable exception
    would otherwise take down the whole pool instead of one point.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _run_point(point: SweepPoint,
               sanitize: "str | bool | None" = False) -> SweepResult:
    """Execute one point in the current process (the worker body)."""
    from repro.analysis import (drain_sanitizer_reports, install_sanitizers,
                                sanitize_modes)
    from repro.sim import engine

    modes = sanitize_modes(sanitize)
    # Workers keep sanitizers installed for their lifetime: a fork-started
    # worker runs many points, and install() is idempotent per mode.
    install_sanitizers(modes)

    envs: List[object] = []
    previous = engine.env_observer()

    def observer(env) -> None:
        envs.append(env)
        if previous is not None:
            previous(env)

    engine.set_env_observer(observer)
    table: Optional[ExpTable] = None
    error: Optional[BaseException] = None
    t0 = time.perf_counter()
    try:
        exp = get_experiment(point.exp_id)
        effective = exp.default_scale if point.scale is None else point.scale
        table = exp.run(scale=effective)
    except Exception as exc:
        error = _portable_exception(exc)
    finally:
        wall = time.perf_counter() - t0
        engine.set_env_observer(previous)

    counters: Dict[str, float] = {
        "environments": float(len(envs)),
        "events_scheduled": 0.0,
        "events_dispatched": 0.0,
        "sim_time": 0.0,
    }
    for env in envs:
        stats = env.stats()
        counters["events_scheduled"] += stats["scheduled"]
        counters["events_dispatched"] += stats["dispatched"]
        counters["sim_time"] += stats["now"]

    reports = [r.format() for r in drain_sanitizer_reports(modes)]
    return SweepResult(point=point, table=table, wall=wall,
                       counters=counters, error=error,
                       sanitizer_reports=reports)


def _mp_context():
    """Prefer ``fork``: cheap worker start-up and the parent's experiment
    registry (including anything registered at runtime) is inherited."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sweep(points: Sequence[SweepPoint], jobs: int = 1,
              sanitize: "str | bool | None" = False) -> List[SweepResult]:
    """Run every point; results in submission order.

    ``jobs <= 1`` runs sequentially in-process (identical to the classic
    runner); ``jobs > 1`` fans out over a process pool.  Unknown
    experiment ids raise :class:`~repro.errors.ConfigError` up front,
    before any worker is spawned.
    """
    points = list(points)
    for point in points:
        get_experiment(point.exp_id)  # validate early; raises ConfigError
    if jobs <= 1 or len(points) <= 1:
        return [_run_point(point, sanitize) for point in points]

    results: List[SweepResult] = []
    workers = min(jobs, len(points))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_mp_context()) as pool:
        futures = [pool.submit(_run_point, point, sanitize)
                   for point in points]
        for point, future in zip(points, futures):
            try:
                results.append(future.result())
            except BaseException as exc:
                # The worker process died outright (BrokenProcessPool,
                # unpicklable payload, ...): surface it on its point.
                results.append(SweepResult(
                    point=point, table=None, wall=0.0,
                    error=_portable_exception(exc)))
    return results


def merge_counters(results: Sequence[SweepResult]) -> Dict[str, float]:
    """Sum kernel counters across points, plus ok/failed point counts."""
    merged: Dict[str, float] = {"points_ok": 0.0, "points_failed": 0.0,
                                "wall_seconds": 0.0}
    for result in results:
        merged["points_ok" if result.ok else "points_failed"] += 1
        merged["wall_seconds"] += result.wall
        for key, value in result.counters.items():
            merged[key] = merged.get(key, 0.0) + value
    return merged
