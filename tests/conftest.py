"""Test-suite plumbing: optional LockSan / ParitySan / BufSan sanitization.

Run any part of the suite with ``CSAR_LOCKSAN=1`` to attach the LockSan
lock-protocol sanitizer (:mod:`repro.analysis.locksan`) to every
:class:`Environment` the tests create, ``CSAR_PARITYSAN=1`` to attach
the ParitySan redundancy-invariant sanitizer
(:mod:`repro.analysis.paritysan`), and/or ``CSAR_BUFSAN=1`` to attach
the BufSan buffer-immutability sanitizer (:mod:`repro.analysis.bufsan`).
Autouse fixtures then fail any test whose simulations produced sanitizer
reports — except tests marked ``locksan_expected`` /
``paritysan_expected`` / ``bufsan_expected``, which intentionally
violate the respective invariants.

The plumbing below is generic over :data:`repro.analysis.SANITIZER_MODULES`;
adding a fourth sanitizer means adding one ``_SanitizerHarness`` row.
"""

import os

import pytest


class _SanitizerHarness:
    """One sanitizer's env-var gate, marker name, and module handle."""

    def __init__(self, mode: str, env_var: str, display: str) -> None:
        self.mode = mode
        self.env_var = env_var
        self.display = display
        self.marker = f"{mode}san_expected"

    def requested(self) -> bool:
        return os.environ.get(self.env_var, "") not in ("", "0")

    def module(self):
        from repro.analysis import sanitizer_module

        return sanitizer_module(self.mode)


_HARNESSES = (
    _SanitizerHarness("lock", "CSAR_LOCKSAN", "LockSan"),
    _SanitizerHarness("parity", "CSAR_PARITYSAN", "ParitySan"),
    _SanitizerHarness("buf", "CSAR_BUFSAN", "BufSan"),
)


def pytest_configure(config):
    for harness in _HARNESSES:
        config.addinivalue_line(
            "markers",
            f"{harness.marker}: the test intentionally triggers "
            f"{harness.display} reports; the zero-report check is skipped")
        if harness.requested():
            harness.module().install()


def pytest_unconfigure(config):
    for harness in _HARNESSES:
        if harness.requested():
            harness.module().uninstall()


def _zero_reports_fixture(harness):
    @pytest.fixture(autouse=True)
    def _zero_reports(request):
        if not harness.requested():
            yield
            return
        module = harness.module()
        module.drain_reports()  # isolate from previous test
        yield
        reports = module.drain_reports()
        if reports and request.node.get_closest_marker(
                harness.marker) is None:
            lines = "\n".join(r.format() for r in reports)
            pytest.fail(f"{harness.display} reports:\n{lines}")

    _zero_reports.__name__ = f"_{harness.mode}san_zero_reports"
    return _zero_reports


_locksan_zero_reports = _zero_reports_fixture(_HARNESSES[0])
_paritysan_zero_reports = _zero_reports_fixture(_HARNESSES[1])
_bufsan_zero_reports = _zero_reports_fixture(_HARNESSES[2])
