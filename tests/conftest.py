"""Test-suite plumbing: optional LockSan sanitization.

Run any part of the suite with ``CSAR_LOCKSAN=1`` to attach the LockSan
lock-protocol sanitizer (:mod:`repro.analysis.locksan`) to every
:class:`Environment` the tests create.  An autouse fixture then fails
any test whose simulations produced sanitizer reports — except tests
marked ``locksan_expected``, which intentionally violate the protocol.
"""

import os

import pytest


def _locksan_requested() -> bool:
    return os.environ.get("CSAR_LOCKSAN", "") not in ("", "0")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "locksan_expected: the test intentionally triggers LockSan "
        "reports; the zero-report check is skipped")
    if _locksan_requested():
        from repro.analysis import locksan

        locksan.install()


def pytest_unconfigure(config):
    if _locksan_requested():
        from repro.analysis import locksan

        locksan.uninstall()


@pytest.fixture(autouse=True)
def _locksan_zero_reports(request):
    """With LockSan installed, assert each test ends report-free."""
    if not _locksan_requested():
        yield
        return
    from repro.analysis import locksan

    locksan.drain_reports()  # isolate from previous test
    yield
    reports = locksan.drain_reports()
    if reports and request.node.get_closest_marker(
            "locksan_expected") is None:
        lines = "\n".join(r.format() for r in reports)
        pytest.fail(f"LockSan reports:\n{lines}")
