"""Test-suite plumbing: optional LockSan / ParitySan sanitization.

Run any part of the suite with ``CSAR_LOCKSAN=1`` to attach the LockSan
lock-protocol sanitizer (:mod:`repro.analysis.locksan`) to every
:class:`Environment` the tests create, and/or ``CSAR_PARITYSAN=1`` to
attach the ParitySan redundancy-invariant sanitizer
(:mod:`repro.analysis.paritysan`).  Autouse fixtures then fail any test
whose simulations produced sanitizer reports — except tests marked
``locksan_expected`` / ``paritysan_expected``, which intentionally
violate the respective invariants.
"""

import os

import pytest


def _locksan_requested() -> bool:
    return os.environ.get("CSAR_LOCKSAN", "") not in ("", "0")


def _paritysan_requested() -> bool:
    return os.environ.get("CSAR_PARITYSAN", "") not in ("", "0")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "locksan_expected: the test intentionally triggers LockSan "
        "reports; the zero-report check is skipped")
    config.addinivalue_line(
        "markers",
        "paritysan_expected: the test intentionally triggers ParitySan "
        "reports; the zero-report check is skipped")
    if _locksan_requested():
        from repro.analysis import locksan

        locksan.install()
    if _paritysan_requested():
        from repro.analysis import paritysan

        paritysan.install()


def pytest_unconfigure(config):
    if _locksan_requested():
        from repro.analysis import locksan

        locksan.uninstall()
    if _paritysan_requested():
        from repro.analysis import paritysan

        paritysan.uninstall()


@pytest.fixture(autouse=True)
def _locksan_zero_reports(request):
    """With LockSan installed, assert each test ends report-free."""
    if not _locksan_requested():
        yield
        return
    from repro.analysis import locksan

    locksan.drain_reports()  # isolate from previous test
    yield
    reports = locksan.drain_reports()
    if reports and request.node.get_closest_marker(
            "locksan_expected") is None:
        lines = "\n".join(r.format() for r in reports)
        pytest.fail(f"LockSan reports:\n{lines}")


@pytest.fixture(autouse=True)
def _paritysan_zero_reports(request):
    """With ParitySan installed, assert each test ends report-free."""
    if not _paritysan_requested():
        yield
        return
    from repro.analysis import paritysan

    paritysan.drain_reports()  # isolate from previous test
    yield
    reports = paritysan.drain_reports()
    if reports and request.node.get_closest_marker(
            "paritysan_expected") is None:
        lines = "\n".join(r.format() for r in reports)
        pytest.fail(f"ParitySan reports:\n{lines}")
