"""BufSan, the buffer-immutability sanitizer (repro.analysis.bufsan),
and the sanitizer registry every mode routes through: clean schemes stay
report-free, the two buffer-discipline seeded bugs drift and are
attributed, and install/drain round-trips behave.
"""

import pytest

from repro import CSARConfig, Payload, System
from repro.analysis import (bufsan, drain_sanitizer_reports,
                            install_sanitizers, sanitize_modes,
                            sanitizer_module, seeded_bugs,
                            uninstall_sanitizers)


@pytest.fixture
def sanitizer():
    preinstalled = bufsan.installed()
    if not preinstalled:
        bufsan.install()
    bufsan.drain_reports()
    yield bufsan
    reports = bufsan.drain_reports()
    if not preinstalled:
        bufsan.uninstall()
    del reports


def _run_partial_overwrite(scheme_cls, scheme_name, **config_kwargs):
    config = CSARConfig(scheme=scheme_name, num_servers=4, num_clients=1,
                        stripe_unit=1024, content_mode=True,
                        background_flusher=False, **config_kwargs)
    system = System(config)
    if scheme_cls is not None:
        system = seeded_bugs.inject(system, scheme_cls(config))
    client = system.client()
    span = system.layout.group_span

    def body():
        yield from client.create("f")
        yield from client.write("f", 0, Payload.pattern(span, seed=1))
        yield from client.write("f", 100, Payload.pattern(300, seed=2))

    system.run(body())


def _run_overflow_writes(scheme_cls, scheme_name):
    config = CSARConfig(scheme=scheme_name, num_servers=4, num_clients=1,
                        content_mode=True, background_flusher=False)
    system = System(config)
    if scheme_cls is not None:
        system = seeded_bugs.inject(system, scheme_cls(config))
    client = system.client()

    def body():
        yield from client.create("f")
        yield from client.write("f", 100, Payload.pattern(300, seed=1))
        yield from client.write("f", 100, Payload.pattern(300, seed=2))

    system.run(body())


class TestCleanSchemes:
    @pytest.mark.parametrize("scheme", ["raid0", "raid1", "raid5", "hybrid"])
    def test_correct_schemes_produce_no_reports(self, sanitizer, scheme):
        _run_partial_overwrite(None, scheme)
        assert sanitizer.drain_reports() == []


@pytest.mark.bufsan_expected
class TestSeededBugTraps:
    def test_thawed_view_drifts_the_parity_fingerprint(self, sanitizer):
        _run_partial_overwrite(seeded_bugs.ThawedViewRaid5, "raid5")
        reports = sanitizer.drain_reports()
        assert reports
        assert {r.kind for r in reports} == {"fingerprint-drift"}
        # Attribution: who captured the buffer, and where the drift
        # surfaced — both with simulated-time coordinates.
        formatted = "\n".join(r.format() for r in reports)
        assert "captured" in formatted
        assert "changed" in formatted

    def test_scratch_leak_drifts_the_mirror_fingerprint(self, sanitizer):
        _run_overflow_writes(seeded_bugs.ScratchLeakHybrid, "hybrid")
        reports = sanitizer.drain_reports()
        assert reports
        assert {r.kind for r in reports} == {"fingerprint-drift"}

    def test_reports_drain_once(self, sanitizer):
        _run_partial_overwrite(seeded_bugs.ThawedViewRaid5, "raid5")
        assert sanitizer.drain_reports()
        assert sanitizer.drain_reports() == []


class TestSanitizerRegistry:
    def test_mode_decoding(self):
        assert sanitize_modes(None) == ()
        assert sanitize_modes(False) == ()
        assert sanitize_modes(True) == ("lock",)
        assert sanitize_modes("lock") == ("lock",)
        assert sanitize_modes("parity") == ("parity",)
        assert sanitize_modes("buf") == ("buf",)
        assert sanitize_modes("all") == ("buf", "lock", "parity")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            sanitize_modes("valgrind")

    def test_every_mode_resolves_to_a_module(self):
        for mode in sanitize_modes("all"):
            module = sanitizer_module(mode)
            assert callable(module.install)
            assert callable(module.uninstall)
            assert callable(module.drain_reports)

    def test_install_drain_uninstall_round_trip(self):
        already = tuple(m for m in sanitize_modes("all")
                        if sanitizer_module(m).installed())
        owned = tuple(m for m in sanitize_modes("all") if m not in already)
        install_sanitizers(owned)
        try:
            assert all(sanitizer_module(m).installed()
                       for m in sanitize_modes("all"))
            assert drain_sanitizer_reports(sanitize_modes("all")) == []
        finally:
            uninstall_sanitizers(owned)
        for mode in owned:
            assert not sanitizer_module(mode).installed()
