"""The bufflow provenance domain (repro.analysis.bufflow): tag
propagation through aliases/views/branches, buffer summaries over the
ip_fixtures, and the seeded-bug regression — the two buffer-discipline
bugs are provably invisible to CSAR001-012 and to the intra pass, and
caught by CSAR013/014/015 with full call chains interprocedurally.
"""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint
from repro.analysis.bufflow import (FROZEN_VIEW, PRIVATE_WRITABLE,
                                    SHARED_SCRATCH, buffer_summaries)
from repro.analysis.callgraph import module_name_of
from repro.analysis.summaries import Program

HERE = Path(__file__).resolve().parent
IP_FIXTURES = HERE / "ip_fixtures"
REPO_ROOT = HERE.parent.parent
SEEDED = REPO_ROOT / "src" / "repro" / "analysis" / "seeded_bugs.py"
CHAINS = module_name_of(str(IP_FIXTURES / "buffer_chains.py"))

OLD_CODES = frozenset(f"CSAR{n:03d}" for n in range(1, 13))
BUF_CODES = frozenset(("CSAR013", "CSAR014", "CSAR015"))


def lint_inline(tmp_path, source, **kwargs):
    """Lint a source string from a path the bufflow scope accepts."""
    pkg = tmp_path / "redundancy"
    pkg.mkdir(exist_ok=True)
    path = pkg / "mod.py"
    path.write_text(textwrap.dedent(source))
    return lint.lint_paths([str(path)], **kwargs)


class TestProvenancePropagation:
    """Tag flow the fixtures don't already pin down line-by-line."""

    def test_alias_copies_carry_the_view_tag(self, tmp_path):
        findings = lint_inline(tmp_path, '''
            def f(payload, x):
                a = payload.data
                b = a
                b[0] = x
        ''')
        assert [(f.line, f.code) for f in findings] == [(5, "CSAR013")]

    def test_ifexp_unions_both_branches(self, tmp_path):
        findings = lint_inline(tmp_path, '''
            import numpy as np
            def f(payload, cond, x):
                arr = payload.data if cond else np.zeros(8, dtype=np.uint8)
                arr += x
        ''')
        assert [(f.line, f.code) for f in findings] == [(5, "CSAR013")]

    def test_subscript_views_inherit_base_provenance(self, tmp_path):
        findings = lint_inline(tmp_path, '''
            def f(payload, x):
                arr = payload.data
                v = arr[0:10]
                v += x
        ''')
        assert [(f.line, f.code) for f in findings] == [(5, "CSAR013")]

    def test_iter_segments_loop_var_is_frozen(self, tmp_path):
        findings = lint_inline(tmp_path, '''
            def f(payload):
                for at, seg in payload.iter_segments():
                    seg[0] = 1
        ''')
        assert [(f.line, f.code) for f in findings] == [(4, "CSAR013")]

    def test_payload_ctor_freezes_its_private_argument(self, tmp_path):
        # Payload.__init__ freezes the array in place before capturing
        # it, so the raw name is safely shareable after the wrap — and
        # the int argument must not inherit a buffer tag.
        findings = lint_inline(tmp_path, '''
            import numpy as np
            class C:
                def f(self, n):
                    buf = np.zeros(n, dtype=np.uint8)
                    pay = Payload(n, buf)
                    self._cache = buf
                    n += 1
                    return pay, n
        ''')
        assert findings == []

    def test_private_copies_are_freely_mutable(self, tmp_path):
        findings = lint_inline(tmp_path, '''
            def f(payload, x):
                buf = payload._writable_copy()
                buf ^= x
                dup = payload.data.copy()
                dup[0] = x
        ''')
        assert findings == []

    def test_reassignment_clears_the_scratch_tag(self, tmp_path):
        findings = lint_inline(tmp_path, '''
            class C:
                def f(self, env):
                    buf = self._scratch
                    buf[0] = 1
                    buf = None
                    yield env.timeout(1.0)
        ''')
        assert findings == []

    def test_yield_from_counts_as_a_yield_point(self, tmp_path):
        findings = lint_inline(tmp_path, '''
            class C:
                def f(self, env, calls):
                    buf = self._scratch
                    yield from self._fan_out(env, calls)
                    return buf
        ''')
        assert [(f.line, f.code) for f in findings] == [(5, "CSAR015")]


@pytest.fixture(scope="module")
def summaries():
    program = Program.build(
        list(lint.iter_python_files([str(IP_FIXTURES)])))
    return buffer_summaries(program)


class TestBufferSummaries:
    def test_allocator_returns_private(self, summaries):
        s = summaries[f"{CHAINS}.PrivateEscapesThroughHelpers._alloc"]
        assert [r.tag for r in s.returns] == [PRIVATE_WRITABLE]

    def test_scratch_lease_returns_scratch(self, summaries):
        s = summaries[f"{CHAINS}.ScratchSpansThroughHelpers._lease"]
        assert [r.tag for r in s.returns] == [SHARED_SCRATCH]

    def test_xor_helper_mutates_its_parameter(self, summaries):
        s = summaries[f"{CHAINS}.FrozenFoldsThroughHelpers._xor_into"]
        assert [(e.param, e.op) for e in s.params] == [("dst", "mutate")]

    def test_soften_helper_thaws_its_parameter(self, summaries):
        s = summaries[f"{CHAINS}.FrozenFoldsThroughHelpers._soften"]
        assert [(e.param, e.op) for e in s.params] == [("arr", "thaw")]

    def test_keep_helper_retains_unfrozen(self, summaries):
        s = summaries[f"{CHAINS}.PrivateEscapesThroughHelpers._keep"]
        assert [(e.param, e.op, e.frozen) for e in s.params] \
            == [("arr", "retain", False)]

    def test_effect_chains_name_their_own_site(self, summaries):
        s = summaries[f"{CHAINS}.FrozenFoldsThroughHelpers._xor_into"]
        (effect,) = s.params
        qnames = [link[0] for link in effect.chain]
        assert qnames == [f"{CHAINS}.FrozenFoldsThroughHelpers._xor_into"]


def _seeded_class_span(name):
    tree = ast.parse(SEEDED.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node.lineno, node.end_lineno
    raise AssertionError(f"class {name} not found in seeded_bugs.py")


class TestSeededBugRegression:
    """ThawedViewRaid5 / ScratchLeakHybrid: the static half of the
    acceptance gate — invisible to every pre-existing rule, caught with
    chains by the bufflow rules."""

    @pytest.fixture(scope="class")
    def spans(self):
        return {name: _seeded_class_span(name)
                for name in ("ThawedViewRaid5", "ScratchLeakHybrid")}

    def _within(self, finding, span):
        return span[0] <= finding.line <= span[1]

    def test_intra_pass_reports_nothing(self):
        assert lint.lint_paths([str(SEEDED)]) == []

    def test_old_rules_cannot_see_them_even_interprocedurally(self, spans):
        findings = lint.lint_paths([str(REPO_ROOT / "src")],
                                   enable=OLD_CODES,
                                   interprocedural=True)
        hits = [f for f in findings
                if f.path.endswith("seeded_bugs.py")
                and any(self._within(f, span) for span in spans.values())]
        assert hits == []

    def test_bufflow_rules_catch_both_with_chains(self, spans):
        findings = lint.lint_paths([str(REPO_ROOT / "src")],
                                   enable=BUF_CODES,
                                   interprocedural=True)
        seeded = [f for f in findings if f.path.endswith("seeded_bugs.py")]
        assert {f.code for f in seeded} == BUF_CODES

        thawed = [f for f in seeded
                  if self._within(f, spans["ThawedViewRaid5"])]
        assert {f.code for f in thawed} == {"CSAR013"}
        assert any("_fold_parity" in f.message and "_thaw" in f.message
                   for f in thawed)

        leak = [f for f in seeded
                if self._within(f, spans["ScratchLeakHybrid"])]
        assert {f.code for f in leak} == {"CSAR014", "CSAR015"}
        scratch = next(f for f in leak if f.code == "CSAR015")
        assert "_mirror_copy" in scratch.message
        assert "_fold_buffer" in scratch.message
        for finding in thawed + leak:
            assert "->" in finding.message  # the witness call chain

    def test_every_seeded_finding_is_baselined(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        baseline = lint.load_baseline("tools/lint_baseline.json")
        findings = lint.lint_paths(["src"], interprocedural=True)
        new, suppressed = lint.apply_baseline(findings, baseline)
        assert new == []
        assert suppressed >= 4  # the two buffer bugs' four findings
