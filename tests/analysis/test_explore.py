"""Schedule exploration (repro.analysis.explore): the engine tie-break
hook, the DFS/PCT drivers, .sched serialization, and the seeded-bug
scenarios CI gates on."""

import json

import pytest

from repro.analysis import explore
from repro.sim import engine
from repro.sim.engine import Environment


class TestEngineTieBreak:
    def test_default_order_without_tie_breaker(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(0)
            order.append(tag)

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        assert order == ["a", "b"]

    def test_forced_tie_breaker_reorders_same_time_events(self):
        # Flip only the first tie (the two process-start events) and keep
        # defaults after: "b" starts first, so its timeout fires first.
        tb = explore.ForcedTieBreaker((1,))
        engine.set_tie_breaker_factory(lambda: tb)
        try:
            env = Environment()
            order = []

            def proc(tag):
                yield env.timeout(0)
                order.append(tag)

            env.process(proc("a"))
            env.process(proc("b"))
            env.run()
        finally:
            engine.set_tie_breaker_factory(None)
        assert order == ["b", "a"]
        assert tb.decisions[0] == (2, 1)

    def test_unobservable_events_consume_no_decision(self):
        # Bare timeouts nobody waits on commute; only observed ties
        # reach the tie-breaker.
        decisions = []

        class Recorder:
            def choose(self, when, prio, events):
                decisions.append(len(events))
                return 0

        engine.set_tie_breaker_factory(Recorder)
        try:
            env = Environment()
            env.timeout(1.0)
            env.timeout(1.0)
            env.timeout(1.0)
            env.run()
        finally:
            engine.set_tie_breaker_factory(None)
        assert decisions == []

    def test_explored_run_same_result_as_default_when_forced_default(self):
        tb = explore.ForcedTieBreaker(())
        engine.set_tie_breaker_factory(lambda: tb)
        try:
            env = Environment()
            order = []

            def proc(tag):
                yield env.timeout(0)
                order.append(tag)

            env.process(proc("a"))
            env.process(proc("b"))
            env.run()
        finally:
            engine.set_tie_breaker_factory(None)
        assert order == ["a", "b"]


class TestExploration:
    def test_race_found_only_by_exploration(self):
        # The default schedule is clean …
        explore.SCENARIOS["race-lock-order"].run()
        # … but DFS flips the marker-race tie and hits the deadlock.
        result = explore.explore("race-lock-order", budget=32, depth=8)
        assert result.found
        assert result.schedules > 1  # not the default schedule
        assert result.record.violation.kind == "SimulationError"

    def test_clean_scenario_stays_clean(self):
        result = explore.explore("lock-ties", budget=10, depth=6)
        assert not result.found
        # Budget is an upper bound; DFS may exhaust the tree first.
        assert 1 <= result.schedules <= 10

    def test_pct_is_reproducible_per_seed(self):
        a = explore.explore("race-lock-order", strategy="pct", budget=32,
                            seed=7)
        b = explore.explore("race-lock-order", strategy="pct", budget=32,
                            seed=7)
        assert a.found == b.found
        assert a.schedules == b.schedules
        if a.found:
            assert a.record.decisions == b.record.decisions

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            explore.explore("no-such-scenario")


class TestSeededBugs:
    def test_lock_leak_caught_within_smoke_budget(self):
        result = explore.explore("buggy-lock-leak", budget=16)
        assert result.found
        assert "deadlock" in result.record.violation.description

    def test_overflow_inplace_caught_by_paritysan(self):
        result = explore.explore("buggy-overflow-inplace", budget=16)
        assert result.found
        assert result.record.violation.kind == "paritysan:parity"
        assert "parity mismatch" in result.record.violation.description

    def test_helper_release_leak_caught_within_smoke_budget(self):
        result = explore.explore("buggy-helper-release-leak", budget=16)
        assert result.found
        assert "deadlock" in result.record.violation.description

    def test_lock_order_caught_by_locksan(self):
        explore.drain_witnesses()
        result = explore.explore("buggy-lock-order", budget=16)
        assert result.found
        assert result.record.violation.kind == "locksan:order-inversion"
        # The inversion also lands in the witness stream CSAR011 reads.
        witnesses = explore.drain_witnesses()
        assert {"file": "f", "group": 0, "held_group": 1} in witnesses

    def test_thawed_view_caught_by_bufsan(self):
        result = explore.explore("buggy-thawed-view", budget=16)
        assert result.found
        assert result.record.violation.kind == "bufsan:fingerprint-drift"
        assert "changed" in result.record.violation.description

    def test_scratch_leak_caught_by_bufsan(self):
        result = explore.explore("buggy-scratch-leak", budget=16)
        assert result.found
        assert result.record.violation.kind == "bufsan:fingerprint-drift"

    def test_smoke_passes_and_replays(self, tmp_path):
        witness_path = str(tmp_path / "witnesses.json")
        results = explore.explore_smoke(budget=32,
                                        sched_dir=str(tmp_path / "sched"),
                                        witness_path=witness_path)
        assert {r.scenario for r in results} \
            == {"buggy-lock-leak", "buggy-helper-release-leak",
                "buggy-lock-order", "buggy-overflow-inplace",
                "buggy-thawed-view", "buggy-scratch-leak"}
        assert all(r.found for r in results)
        assert sorted(p.name for p in (tmp_path / "sched").iterdir()) \
            == ["buggy-helper-release-leak.sched", "buggy-lock-leak.sched",
                "buggy-lock-order.sched", "buggy-overflow-inplace.sched",
                "buggy-scratch-leak.sched", "buggy-thawed-view.sched"]
        from repro.analysis import lint
        witnesses = lint.load_witnesses(witness_path)
        assert any(w["held_group"] == 1 and w["group"] == 0
                   for w in witnesses)


class TestSchedFiles:
    def test_round_trip(self, tmp_path):
        result = explore.explore("race-lock-order", budget=32, depth=8)
        assert result.found
        path = str(tmp_path / "race.sched")
        explore.save_schedule(result.record, path)
        loaded = explore.load_schedule(path)
        assert loaded == result.record

    def test_schema_version_field_present(self, tmp_path):
        result = explore.explore("buggy-lock-leak", budget=4)
        path = str(tmp_path / "leak.sched")
        explore.save_schedule(result.record, path)
        with open(path) as fh:
            data = json.load(fh)
        assert data["schema_version"] == explore.SCHED_SCHEMA_VERSION

    def test_unsupported_schema_version_rejected(self, tmp_path):
        path = tmp_path / "bad.sched"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError):
            explore.load_schedule(str(path))

    def test_replay_reproduces_recorded_violation(self, tmp_path):
        result = explore.explore("race-lock-order", budget=32, depth=8)
        path = str(tmp_path / "race.sched")
        explore.save_schedule(result.record, path)
        reproduced, violation = explore.replay(path)
        assert reproduced
        assert violation.kind == result.record.violation.kind
