"""Whole-program fixture: CSAR013/CSAR014/CSAR015 across call chains.

Every violation here needs buffer summaries: the provenance lives in
one function and the offence in another, so the intra pass must report
nothing on this file (test_intra_pass_reports_nothing_on_ip_fixtures).
"""

import numpy as np


class FrozenFoldsThroughHelpers:
    def folds_via_callee(self, payload, other):
        view = payload.slice(0, 64)
        self._xor_into(view, other)  # expect: CSAR013
        return view

    def _xor_into(self, dst, src):
        dst ^= src

    def thaws_via_callee(self, payload):
        arr = payload.data
        self._soften(arr)  # expect: CSAR013
        return arr

    def _soften(self, arr):
        arr.flags.writeable = True


class PrivateEscapesThroughHelpers:
    def caches_helper_allocation(self, length):
        buf = self._alloc(length)
        self._pool = buf  # expect: CSAR014

    def _alloc(self, length):
        return np.zeros(length, dtype=np.uint8)

    def retains_via_callee(self, length):
        buf = np.full(length, 0xAA, dtype=np.uint8)
        self._keep(buf)  # expect: CSAR014

    def _keep(self, arr):
        self._backlog = arr


class ScratchSpansThroughHelpers:
    def pumps_leased_scratch(self, env):
        buf = self._lease()
        yield env.timeout(1.0)  # expect: CSAR015
        return buf

    def _lease(self):
        buf = self._scratch
        return buf
