"""CSAR010: helper-mediated lock leaks the intra pass cannot see.

``take`` acquires on behalf of its caller (legitimately suppressing
CSAR001 — its release is the caller's obligation, the protocol-carried
idiom) and ``drop`` releases a lock it never acquired.  Each function
is clean in isolation; only threading ``take``'s lock-effect summary
through the callers exposes which of them can exit still holding it.
"""

from typing import Any, Generator

Event = Any


def take(table, xid) -> "Generator[Event, Any, None]":
    """Acquire the caller's lease; releasing it is the caller's job."""
    yield from table.acquire('f', 3, xid)  # csar-lint: disable=CSAR001


def drop(table, xid) -> None:
    """Release the lease ``take`` acquired for the caller."""
    table.release('f', 3, xid)


def conditional_leak(table, env, xid, ok) -> "Generator[Event, Any, None]":
    """Releases the helper-acquired lease on one branch only: the
    ``not ok`` exit carries a net-positive lock delta."""
    yield from take(table, xid)  # expect: CSAR010
    yield env.timeout(1.0)
    if ok:
        drop(table, xid)


def interrupt_leak(table, env, xid) -> "Generator[Event, Any, None]":
    """Releases on the straight-line path, but an interrupt delivered
    at the yield leaks the lease: no release on the exceptional edge."""
    yield from take(table, xid)  # expect: CSAR010
    yield env.timeout(1.0)
    drop(table, xid)


def helper_release_clean(table, env, xid) -> "Generator[Event, Any, None]":
    """The false-positive-free pair: the helper-acquired lease is
    released by the helper in a ``finally`` on every path — the old
    intra pass could not prove this safe, the summary pass can."""
    yield from take(table, xid)
    try:
        yield env.timeout(1.0)
    finally:
        drop(table, xid)


def io_helper(client) -> "Generator[Event, Any, None]":
    """Yields on long-latency link I/O (transitively interesting)."""
    yield from client.rpc('server-0', 'payload')


def hold_across_callee(table, client, xid) -> "Generator[Event, Any, None]":
    """Holds a parity lock across a callee that yields on I/O — the
    Section 5.1 locking-cost pattern, one call level removed."""
    yield from table.acquire('f', 1, xid)
    try:
        yield from io_helper(client)  # expect: CSAR007
    finally:
        table.release('f', 1, xid)
