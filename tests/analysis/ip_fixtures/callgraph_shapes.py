"""Call-graph construction shapes: cycles, method resolution, getattr.

No lint findings live here — this module exists so the call-graph
tests have mutual recursion (a non-trivial SCC), an inheritance
diamond-free MRO walk, ``super()`` dispatch, a literal ``getattr``
(folded to a normal method call), and an unknown-receiver call that
only the capped *fallback* resolution can approximate.
"""


def even(n):
    if n == 0:
        return True
    return odd(n - 1)


def odd(n):
    if n == 0:
        return False
    return even(n - 1)


def standalone(n):
    return even(n) or odd(n)


class Base:
    def ping(self):
        return self.pong()

    def pong(self):
        return 0


class Derived(Base):
    def pong(self):
        return super().pong() + 1

    def delegate(self):
        return Base.pong(self)


def literal_getattr(obj: Base):
    return getattr(obj, "ping")()


def duck_call(obj):
    return obj.pong()
