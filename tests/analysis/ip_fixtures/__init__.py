"""Whole-program lint fixtures (interprocedural mode).

Unlike ``fixtures/`` (one function per finding), these modules only
misbehave *across* function boundaries: the acquire and the release of
a lock live in different helpers, or the lock-order inversion is only
visible on the global acquires-while-holding graph.  The round-trip
test lints this tree with ``interprocedural=True`` and asserts the
``# expect: CSAR###`` comments exactly; a second pass without the flag
proves the intra-procedural linter reports nothing here.
"""
