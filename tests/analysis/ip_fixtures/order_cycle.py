"""CSAR011: lock-order cycles on the global acquires-while-holding graph.

Both shapes escape CSAR002's literal-only ordering check: the loop
iterates a symbolic ``range`` downward, and the reversed pair orders
two *symbolic* group expressions inconsistently across two chains.
"""

from typing import Any, Generator

Event = Any


def descending_sweep(table, env, xid, last) -> "Generator[Event, Any, None]":
    """Locks groups ``last .. 0`` highest-first — collides with every
    chain that follows the ascending Section 5.1 convention.  (CSAR008
    is suppressed: it sees only the zero-iteration exit of the release
    loop, which the ``range`` bounds rule out.)"""
    for group in range(last, -1, -1):
        yield from table.acquire('f', group, xid)  # expect: CSAR011 csar-lint: disable=CSAR008
    try:
        yield env.timeout(1.0)
    finally:
        for group in range(0, last + 1):
            table.release('f', group, xid)


def a_then_b(table, env, a, b, xid) -> "Generator[Event, Any, None]":
    """Half of a reversed pair: acquires ``b`` while holding ``a``."""
    yield from table.acquire('f', a, xid)
    try:
        yield from table.acquire('f', b, xid)  # expect: CSAR011
        try:
            yield env.timeout(1.0)
        finally:
            table.release('f', b, xid)
    finally:
        table.release('f', a, xid)


def b_then_a(table, env, a, b, xid) -> "Generator[Event, Any, None]":
    """The other half: acquires ``a`` while holding ``b`` — together
    with :func:`a_then_b` the order graph has a cycle (reported once,
    on the lexicographically smaller edge)."""
    yield from table.acquire('f', b, xid)
    try:
        yield from table.acquire('f', a, xid)
        try:
            yield env.timeout(1.0)
        finally:
            table.release('f', a, xid)
    finally:
        table.release('f', b, xid)


def ascending_sweep(table, env, xid, last) -> "Generator[Event, Any, None]":
    """The clean mirror of :func:`descending_sweep`: ascending order
    produces no order edge and no finding."""
    for group in range(0, last + 1):
        yield from table.acquire('f', group, xid)  # csar-lint: disable=CSAR008
    try:
        yield env.timeout(1.0)
    finally:
        for group in range(0, last + 1):
            table.release('f', group, xid)
