"""Module-level call graph (repro.analysis.callgraph): confident vs
fallback resolution, SCC condensation, and call normalization."""

import ast

from pathlib import Path

from repro.analysis.callgraph import (CallGraph, PRIMITIVE_ATTRS,
                                      module_name_of, normalize_call)

HERE = Path(__file__).resolve().parent
SHAPES = str(HERE / "ip_fixtures" / "callgraph_shapes.py")
LEAKS = str(HERE / "ip_fixtures" / "leak_chain.py")
MOD = module_name_of(SHAPES)
LEAK_MOD = module_name_of(LEAKS)


def shapes_graph():
    return CallGraph.from_paths([SHAPES])


class TestConstruction:
    def test_every_function_and_method_is_a_node(self):
        g = shapes_graph()
        assert {f"{MOD}.{name}" for name in (
            "even", "odd", "standalone", "Base.ping", "Base.pong",
            "Derived.pong", "Derived.delegate", "literal_getattr",
            "duck_call")} <= set(g.functions)

    def test_module_name_strips_through_src(self):
        assert module_name_of("src/repro/pvfs/iod.py") == "repro.pvfs.iod"
        assert module_name_of(
            "tests/analysis/ip_fixtures/leak_chain.py") \
            == "tests.analysis.ip_fixtures.leak_chain"
        assert LEAK_MOD.endswith("ip_fixtures.leak_chain")

    def test_bare_name_calls_resolve_confidently(self):
        g = shapes_graph()
        assert set(g.edges[f"{MOD}.standalone"]) \
            == {f"{MOD}.even", f"{MOD}.odd"}

    def test_super_call_resolves_through_mro(self):
        g = shapes_graph()
        assert f"{MOD}.Base.pong" in g.edges[f"{MOD}.Derived.pong"]

    def test_explicit_class_method_call_resolves(self):
        g = shapes_graph()
        assert f"{MOD}.Base.pong" in g.edges[f"{MOD}.Derived.delegate"]

    def test_self_method_call_resolves_through_mro(self):
        g = shapes_graph()
        assert f"{MOD}.Base.pong" in g.edges[f"{MOD}.Base.ping"]


class TestFallback:
    def test_unknown_receiver_gets_may_edges_only(self):
        g = shapes_graph()
        qname = f"{MOD}.duck_call"
        assert set(g.edges[qname]) == set()
        assert set(g.may_edges[qname]) \
            == {f"{MOD}.Base.pong", f"{MOD}.Derived.pong"}

    def test_literal_getattr_folds_to_attribute_dispatch(self):
        g = shapes_graph()
        qname = f"{MOD}.literal_getattr"
        assert f"{MOD}.Base.ping" in g.may_edges[qname]

    def test_lock_primitives_are_never_call_edges(self):
        assert "acquire" in PRIMITIVE_ATTRS and "release" in PRIMITIVE_ATTRS
        g = CallGraph.from_paths([LEAKS])
        take = f"{LEAK_MOD}.take"
        assert set(g.edges[take]) == set()
        assert set(g.may_edges[take]) == set()


class TestSCCs:
    def test_mutual_recursion_is_one_scc(self):
        g = shapes_graph()
        cycles = [sorted(scc) for scc in g.sccs() if len(scc) > 1]
        assert [f"{MOD}.even", f"{MOD}.odd"] in cycles

    def test_reverse_topological_order(self):
        # Every confident edge must point at an earlier-or-same SCC:
        # callees are summarized before their callers.
        g = shapes_graph()
        position = {}
        for index, scc in enumerate(g.sccs()):
            for qname in scc:
                position[qname] = index
        for src, dsts in g.edges.items():
            for dst in dsts:
                assert position[dst] <= position[src]


class TestNormalizeCall:
    def test_plain_attribute_call(self):
        call = ast.parse("self.locks.acquire(f, g, x)", mode="eval").body
        receiver, attr, bare = normalize_call(call)
        assert ast.unparse(receiver) == "self.locks"
        assert attr == "acquire"
        assert bare is None

    def test_bare_name_call(self):
        call = ast.parse("helper(x)", mode="eval").body
        assert normalize_call(call) == (None, None, "helper")

    def test_literal_getattr_folded(self):
        call = ast.parse("getattr(obj, 'ping')()", mode="eval").body
        receiver, attr, bare = normalize_call(call)
        assert ast.unparse(receiver) == "obj"
        assert attr == "ping"
        assert bare is None
