"""Lock-effect summaries (repro.analysis.summaries): bottom-up
computation over SCCs, parameter substitution, order edges, and the
JSON round-trip."""

from pathlib import Path

import pytest

from repro.analysis import lint
from repro.analysis.summaries import (Program, summaries_from_json,
                                      summaries_to_json)

from repro.analysis.callgraph import module_name_of

HERE = Path(__file__).resolve().parent
IP_FIXTURES = HERE / "ip_fixtures"
LEAKS = module_name_of(str(IP_FIXTURES / "leak_chain.py"))
ORDER = module_name_of(str(IP_FIXTURES / "order_cycle.py"))


@pytest.fixture(scope="module")
def program():
    return Program.build(list(lint.iter_python_files([str(IP_FIXTURES)])))


class TestEffects:
    def test_acquiring_helper_has_positive_net_delta(self, program):
        take = program.summaries[f"{LEAKS}.take"]
        assert take.net_delta == 1
        assert [a.key.format() for a in take.acquired] \
            == ["table.acquire('f', 3, xid)"]

    def test_suppressed_acquire_still_enters_summary(self, program):
        # take's acquire carries `# csar-lint: disable=CSAR001`;
        # suppression silences the *report*, not the effect.
        assert program.summaries[f"{LEAKS}.take"].acquired

    def test_releasing_helper_records_must_release(self, program):
        drop = program.summaries[f"{LEAKS}.drop"]
        assert [(r.key.format(), r.must) for r in drop.released] \
            == [("table.acquire('f', 3, xid)", True)]

    def test_caller_with_finally_release_is_balanced(self, program):
        clean = program.summaries[f"{LEAKS}.helper_release_clean"]
        assert clean.net_delta == 0
        assert not clean.acquired

    def test_conditional_release_leaves_lease_escaping_upward(self, program):
        leaky = program.summaries[f"{LEAKS}.conditional_leak"]
        assert leaky.net_delta == 1
        (acq,) = leaky.acquired
        # Substitution rewrote the helper's formals into caller terms...
        assert acq.key.format() == "table.acquire('f', 3, xid)"
        # ...and the chain names the helper hop for the CSAR010 message.
        assert any(qname == f"{LEAKS}.take" for qname, _p, _l in acq.chain)

    def test_io_yield_propagates_through_yielded_callees(self, program):
        assert program.summaries[f"{LEAKS}.io_helper"].io_yield
        assert program.summaries[f"{LEAKS}.hold_across_callee"].io_yield


class TestOrderEdges:
    def test_descending_range_loop_is_a_descending_edge(self, program):
        sweep = program.summaries[f"{ORDER}.descending_sweep"]
        (edge,) = sweep.order_edges
        assert edge.descending and edge.loop_carried
        assert edge.file_text == "'f'"

    def test_ascending_range_loop_has_no_edges(self, program):
        assert not program.summaries[f"{ORDER}.ascending_sweep"].order_edges

    def test_symbolic_pair_recorded_without_direction(self, program):
        (edge,) = program.summaries[f"{ORDER}.a_then_b"].order_edges
        assert (edge.held, edge.acquired) == ("a", "b")
        assert not edge.descending and not edge.loop_carried
        (rev,) = program.summaries[f"{ORDER}.b_then_a"].order_edges
        assert (rev.held, rev.acquired) == ("b", "a")

    def test_program_exposes_global_edge_list(self, program):
        owners = {qname for qname, _edge in program.order_edges()}
        assert {f"{ORDER}.descending_sweep", f"{ORDER}.a_then_b",
                f"{ORDER}.b_then_a"} <= owners


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self, program):
        payload = summaries_to_json(program.summaries)
        assert summaries_from_json(payload) == program.summaries

    def test_round_trip_preserves_chains_and_edges(self, program):
        restored = summaries_from_json(summaries_to_json(program.summaries))
        leaky = restored[f"{LEAKS}.conditional_leak"]
        assert leaky.acquired[0].chain \
            == program.summaries[f"{LEAKS}.conditional_leak"] \
            .acquired[0].chain
        sweep = restored[f"{ORDER}.descending_sweep"]
        assert sweep.order_edges \
            == program.summaries[f"{ORDER}.descending_sweep"].order_edges
