"""The CFG builder (repro.analysis.cfg) that underpins the
flow-sensitive lint rules: edge structure for straight-line code,
branches, loops (including the runs-at-least-once refinement), and the
interrupt-driven exception model (exceptional edges only at yields)."""

import ast

from repro.analysis.cfg import EXC, build_cfg


def cfg_of(source):
    tree = ast.parse(source)
    return build_cfg(tree.body[0])


def stmts_of(cfg):
    """Map node index -> first unparsed line (synthetics excluded)."""
    out = {}
    for node in cfg.nodes:
        if node.stmt is not None and node.label == "stmt":
            out[node.index] = ast.unparse(node.stmt).splitlines()[0]
    return out


def edges(cfg, kind=None):
    out = []
    for src, succs in cfg.succs.items():
        for dst, k in succs:
            if kind is None or k == kind:
                out.append((src, dst))
    return out


def path_avoiding(cfg, start, goal, avoid):
    """Is there a path start -> goal that touches no node in ``avoid``?"""
    seen = {start}
    todo = [start]
    while todo:
        n = todo.pop()
        if n == goal:
            return True
        for succ, _kind in cfg.succs.get(n, ()):
            if succ not in seen and succ not in avoid:
                seen.add(succ)
                todo.append(succ)
    return False


def only(stmts, text):
    matches = [i for i, s in stmts.items() if s == text]
    assert len(matches) >= 1, f"no node for {text!r}"
    return matches[0]


class TestStraightLine:
    def test_linear_statements_reachable(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = 2\n    return b\n")
        stmts = stmts_of(cfg)
        reach = set(cfg.reachable())
        assert only(stmts, "a = 1") in reach
        assert only(stmts, "b = 2") in reach
        assert cfg.exit in reach

    def test_branch_arms_both_reachable(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n")
        stmts = stmts_of(cfg)
        reach = set(cfg.reachable())
        assert only(stmts, "a = 1") in reach
        assert only(stmts, "a = 2") in reach


class TestLoops:
    def test_general_loop_has_zero_iteration_path(self):
        cfg = cfg_of(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        use(x)\n"
            "    return 1\n")
        stmts = stmts_of(cfg)
        body = {i for i, s in stmts.items() if s == "use(x)"}
        # `xs` may be empty: entry must reach the return without the body.
        assert path_avoiding(cfg, cfg.entry, only(stmts, "return 1"), body)

    def test_literal_tuple_loop_always_enters_body(self):
        cfg = cfg_of(
            "def f():\n"
            "    for g in (3, 5):\n"
            "        use(g)\n"
            "    return 1\n")
        stmts = stmts_of(cfg)
        body = {i for i, s in stmts.items() if s == "use(g)"}
        # Non-empty literal iterable: no zero-iteration phantom path.
        assert not path_avoiding(cfg, cfg.entry, only(stmts, "return 1"),
                                 body)

    def test_while_true_always_enters_body(self):
        cfg = cfg_of(
            "def f():\n"
            "    while True:\n"
            "        if done():\n"
            "            break\n"
            "    return 1\n")
        stmts = stmts_of(cfg)
        body = {i for i, s in stmts.items() if s.startswith("if ")}
        assert not path_avoiding(cfg, cfg.entry, only(stmts, "return 1"),
                                 body)

    def test_break_exits_literal_loop(self):
        cfg = cfg_of(
            "def f():\n"
            "    for g in (3, 5):\n"
            "        break\n"
            "    return 1\n")
        stmts = stmts_of(cfg)
        assert only(stmts, "return 1") in set(cfg.reachable())


class TestExceptionModel:
    def test_yield_has_exceptional_edge(self):
        cfg = cfg_of(
            "def f(env):\n"
            "    yield env.timeout(1)\n"
            "    return 1\n")
        stmts = stmts_of(cfg)
        y = only(stmts, "yield env.timeout(1)")
        assert (y, cfg.raise_exit) in edges(cfg, EXC)

    def test_plain_call_has_no_exceptional_edge(self):
        cfg = cfg_of(
            "def f():\n"
            "    helper()\n"
            "    return 1\n")
        assert edges(cfg, EXC) == []

    def test_catch_all_handler_removes_propagation(self):
        cfg = cfg_of(
            "def f(env):\n"
            "    try:\n"
            "        yield env.timeout(1)\n"
            "    except Exception:\n"
            "        cleanup()\n"
            "    return 1\n")
        assert cfg.raise_exit not in set(cfg.reachable())

    def test_typed_handler_keeps_propagation(self):
        cfg = cfg_of(
            "def f(env):\n"
            "    try:\n"
            "        yield env.timeout(1)\n"
            "    except ValueError:\n"
            "        cleanup()\n"
            "    return 1\n")
        assert cfg.raise_exit in set(cfg.reachable())

    def test_finally_duplicated_per_continuation(self):
        cfg = cfg_of(
            "def f(env):\n"
            "    try:\n"
            "        yield env.timeout(1)\n"
            "    finally:\n"
            "        release()\n"
            "    return 1\n")
        stmts = stmts_of(cfg)
        # Normal completion and exception propagation each need a copy.
        copies = [i for i, s in stmts.items() if s == "release()"]
        assert len(copies) >= 2
        reach = set(cfg.reachable())
        assert any(c in reach for c in copies)
        assert cfg.raise_exit in reach
