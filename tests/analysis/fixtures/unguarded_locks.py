"""csar-lint fixture: CSAR001 (unguarded-acquire).

Never imported — parsed by tests/analysis/test_lint.py, which asserts
each ``# expect:`` comment matches exactly one finding on that line.
"""


def leak_on_interrupt(table, env, xid) -> "Generator[Event, Any, None]":
    yield from table.acquire("f", 0, xid)  # expect: CSAR001
    yield env.timeout(1.0)
    table.release("f", 0, xid)


def unguarded_request(resource, env) -> "Generator[Event, Any, None]":
    req = resource.request()  # expect: CSAR001
    yield req
    yield env.timeout(1.0)
    resource.release(req)


def acquire_and_forget(table, env, xid) -> "Generator[Event, Any, None]":
    yield from table.acquire("f", 2, xid)  # expect: CSAR001
    yield env.timeout(1.0)


def guarded_with_context_manager(resource,
                                 env) -> "Generator[Event, Any, None]":
    with resource.request() as req:
        yield req
        yield env.timeout(1.0)


def guarded_with_finally(table, env, xid) -> "Generator[Event, Any, None]":
    yield from table.acquire("f", 0, xid)
    try:
        yield env.timeout(1.0)
    finally:
        table.release("f", 0, xid)


def guarded_with_interrupt_handler(lock,
                                   env) -> "Generator[Event, Any, None]":
    request = lock.request()
    try:
        yield request
    except Exception:
        lock.release(request)
        raise
    yield env.timeout(1.0)
    lock.release(request)
