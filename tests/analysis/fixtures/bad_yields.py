"""csar-lint fixture: CSAR003 (non-event-yield)."""


def yields_literal(env) -> "Generator[Event, Any, None]":
    yield env.timeout(1.0)
    yield 42  # expect: CSAR003


def yields_arithmetic(env) -> "Generator[Event, Any, None]":
    yield 1 + 2  # expect: CSAR003


def bare_yield(env) -> "Generator[Event, Any, None]":
    yield env.timeout(1.0)
    yield  # expect: CSAR003


def yields_tuple(env) -> "Generator[Event, Any, None]":
    yield (env.timeout(1.0), env.timeout(2.0))  # expect: CSAR003


def untyped_but_yields_timeouts(env):
    yield env.timeout(1.0)
    yield "done"  # expect: CSAR003


def ok_yields_events(env) -> "Generator[Event, Any, None]":
    yield env.timeout(1.0)
    value = yield env.event()
    return value


def ok_plain_data_generator(values):
    # Not a process body: a plain iterator may yield anything.
    for value in values:
        yield value * 2


def ok_generator_forcing_idiom(env) -> "Generator[Event, Any, None]":
    raise RuntimeError("unsupported")
    yield  # unreachable: the standard make-this-a-generator idiom
