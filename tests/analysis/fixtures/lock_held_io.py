"""csar-lint fixture: CSAR007 (lock-held-across-nonlock-yield).

Never imported — parsed by tests/analysis/test_lint.py.  Holding a
parity lock across long-latency link/disk I/O stretches the
serialization window (the paper's ~20% locking cost); holding it across
a timeout (hold-duration modeling) or the RMW's own ``fs.read`` is
deliberate and clean.
"""


def rpc_under_lock(table, net, env, xid) -> "Generator[Event, Any, None]":
    yield from table.acquire("f", 0, xid)
    try:
        yield net.rpc("server-1", b"payload")  # expect: CSAR007
    finally:
        table.release("f", 0, xid)


def transfer_under_lock(table, link, env,
                        xid) -> "Generator[Event, Any, None]":
    yield from table.acquire("f", 2, xid)
    try:
        yield env.timeout(0.5)
        yield from link.transfer(1 << 20)  # expect: CSAR007
    finally:
        table.release("f", 2, xid)


def rmw_window_is_clean(table, fs, env, xid) -> "Generator[Event, Any, None]":
    # The read-modify-write window: local disk I/O under the lock is the
    # protocol, not a smell.
    yield from table.acquire("f", 1, xid)
    try:
        old = yield from fs.read("f.red", 0, 4096)
        yield from fs.write("f.red", 0, old)
    finally:
        table.release("f", 1, xid)


def rpc_after_release_is_clean(table, net, env,
                               xid) -> "Generator[Event, Any, None]":
    yield from table.acquire("f", 4, xid)
    try:
        yield env.timeout(0.1)
    finally:
        table.release("f", 4, xid)
    yield net.rpc("server-2", b"done")
