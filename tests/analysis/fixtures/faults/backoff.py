"""csar-lint fixture: determinism and lock order in fault/retry code.

Lives under a ``faults/`` path segment, so the CSAR004 wall-clock ban
applies: a fault plan must re-fire at the same sim instants on replay,
and retry backoff jitter must come from a seeded stream, never the wall
clock.  The lock-order rule (CSAR002) is path-independent and covers a
recovery helper that grabs parity-group locks highest-first.
"""

import random
import time


def fire_at_wall_clock(env, spec) -> "Generator[Event, Any, None]":
    deadline = time.time() + spec.delay  # expect: CSAR004
    yield env.timeout(deadline - env.now)


def unseeded_backoff(attempt):
    return 0.002 * (2 ** attempt) * random.random()  # expect: CSAR004


def unseeded_victim(servers):
    return random.choice(servers)  # expect: CSAR004


def seeded_backoff_ok(attempt, seed, index):
    rng = random.Random(seed * 1000003 + index)
    return 0.002 * (2 ** attempt) * rng.random()


def quiesce_locks_descending(table, env,
                             xid) -> "Generator[Event, Any, None]":
    try:
        yield from table.acquire("f", 4, xid)
        yield from table.acquire("f", 2, xid)  # expect: CSAR002
        yield env.timeout(1.0)
    finally:
        table.release("f", 2, xid)
        table.release("f", 4, xid)


def quiesce_locks_ascending_ok(table, env,
                               xid) -> "Generator[Event, Any, None]":
    try:
        yield from table.acquire("f", 2, xid)
        yield from table.acquire("f", 4, xid)
        yield env.timeout(1.0)
    finally:
        table.release("f", 4, xid)
        table.release("f", 2, xid)
