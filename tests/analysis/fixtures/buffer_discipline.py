"""csar-lint fixture: CSAR013/CSAR014/CSAR015 (buffer provenance).

Every violation here is visible to the *intra*-procedural bufflow pass:
the provenance (a frozen ``.data`` / ``.slice()`` view, a private
``np.zeros`` allocation, a ``self._scratch`` alias) and the offence
happen inside one function body.
"""

import numpy as np


class MutatesFrozenViews:
    def augments_materialized_bytes(self, payload, other):
        arr = payload.data
        arr ^= other  # expect: CSAR013

    def stores_into_a_slice(self, payload):
        view = payload.slice(0, 16)
        view[0] = 255  # expect: CSAR013

    def folds_with_out_kwarg(self, payload, other):
        dst = payload.data
        np.bitwise_xor(dst, other, out=dst)  # expect: CSAR013

    def thaws_shared_bytes(self, payload):
        arr = payload.data
        arr.flags.writeable = True  # expect: CSAR013

    def ok_mutates_a_private_copy(self, payload, other):
        buf = payload._writable_copy()
        buf ^= other
        return buf


class LeaksWritableBuffers:
    def caches_raw_allocation(self, length):
        buf = np.zeros(length, dtype=np.uint8)
        self._cache = buf  # expect: CSAR014

    def queues_raw_allocation(self, length, queue):
        buf = np.empty(length, dtype=np.uint8)
        queue.append(buf)  # expect: CSAR014

    def ok_freezes_before_sharing(self, length):
        buf = np.zeros(length, dtype=np.uint8)
        buf.flags.writeable = False
        self._cache = buf
        return buf


class HoldsScratchAcrossYield:
    def pumps_with_scratch_live(self, env):
        buf = self._scratch
        buf[0] = 1
        yield env.timeout(1.0)  # expect: CSAR015
        return buf

    def ok_scratch_dropped_before_yield(self, env):
        buf = self._scratch
        buf[0] = 1
        buf = None
        yield env.timeout(1.0)
