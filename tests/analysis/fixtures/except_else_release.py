"""csar-lint fixture: CSAR001 regression — release in except + else.

Never imported — parsed by tests/analysis/test_lint.py.  No ``# expect``
comments on purpose: every function here is *correct* and must lint
clean.  The old try/finally-shape heuristic flagged
``release_in_else_branch`` (it looked for a release inside a handler or
finally block and found neither); the CFG engine proves every path
drops the lock: the interrupt path never acquired (the table cancels
its own request), the success path releases in ``else`` before any
further yield.
"""


def release_in_else_branch(table, env, xid) -> "Generator[Event, Any, None]":
    try:
        yield from table.acquire("f", 0, xid)
    except Interrupt:
        return
    else:
        table.release("f", 0, xid)
    yield env.timeout(1.0)


def release_in_handler_and_else(lock, env) -> "Generator[Event, Any, None]":
    request = lock.request()
    try:
        yield request
    except Exception:
        lock.release(request)
        raise
    else:
        yield env.timeout(1.0)
        lock.release(request)
