"""csar-lint fixture: per-line suppression comments (zero findings)."""


def protocol_carried_lock(table, env,
                          xid) -> "Generator[Event, Any, None]":
    # The matching release arrives in a later message handler.
    yield from table.acquire("f", 0, xid)  # csar-lint: disable=CSAR001
    yield env.timeout(1.0)


def suppress_everything(env) -> "Generator[Event, Any, None]":
    yield env.timeout(1.0)
    yield 42  # csar-lint: disable


def suppress_code_list(table, env,
                       xid) -> "Generator[Event, Any, None]":
    yield from table.acquire("f", 1, xid)  # csar-lint: disable=CSAR001,CSAR002
    yield "token"  # csar-lint: disable=CSAR003
