"""csar-lint fixture: CSAR005 (fail-without-defuse)."""


def lost_failure(env):
    ev = env.event()
    ev.fail(RuntimeError("boom"))  # expect: CSAR005


def defused_ok(env):
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    ev.defused()


def escapes_by_return_ok(env):
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    return ev


def handed_to_waiter_ok(env, watcher):
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    watcher.watch(ev)


def stored_on_self_ok(env, state):
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    state.pending = ev
