"""csar-lint fixture: CSAR002 (descending-lock-order).

Both offenders release in a ``finally`` so only the ordering rule
fires, not CSAR001.
"""


def two_groups_descending(table, env,
                          xid) -> "Generator[Event, Any, None]":
    try:
        yield from table.acquire("f", 5, xid)
        yield from table.acquire("f", 3, xid)  # expect: CSAR002
        yield env.timeout(1.0)
    finally:
        table.release("f", 3, xid)
        table.release("f", 5, xid)


def loop_over_descending_groups(table, env,
                                xid) -> "Generator[Event, Any, None]":
    try:
        for group in (5, 3):
            yield from table.acquire("f", group, xid)  # expect: CSAR002
        yield env.timeout(1.0)
    finally:
        for group in (3, 5):
            table.release("f", group, xid)


def two_groups_ascending(table, env,
                         xid) -> "Generator[Event, Any, None]":
    try:
        yield from table.acquire("f", 3, xid)
        yield from table.acquire("f", 5, xid)
        yield env.timeout(1.0)
    finally:
        table.release("f", 5, xid)
        table.release("f", 3, xid)


def reacquire_after_release_is_fine(table, env,
                                    xid) -> "Generator[Event, Any, None]":
    # Group 5's window closes before group 3 opens: no ordering hazard
    # (and each window releases in its own finally).
    yield from table.acquire("f", 5, xid)
    try:
        yield env.timeout(1.0)
    finally:
        table.release("f", 5, xid)
    yield from table.acquire("f", 3, xid)
    try:
        yield env.timeout(1.0)
    finally:
        table.release("f", 3, xid)
