"""csar-lint fixture: CSAR009 (overflow-write-in-place).

Never imported — parsed by tests/analysis/test_lint.py.  Lives under a
``redundancy/`` directory because CSAR009 is scoped to redundancy
modules and to functions named ``*overflow*``: a hybrid overflow path
must never write partial-stripe data to the home location.
"""


def write_overflow_in_place(msg, sr, env) -> "Generator[Event, Any, None]":
    req = msg.WriteReq(sr.name, offset=sr.start,  # expect: CSAR009
                       payload=sr.payload, kind="data")
    yield sr.server.send(req)


def write_overflow_via_home_file(fs, name, start,
                                 payload) -> "Generator[Event, Any, None]":
    yield from fs.write(data_file(name), start, payload)  # expect: CSAR009


def write_overflow_correctly(msg, sr, env) -> "Generator[Event, Any, None]":
    # OverflowWriteReq targets the overflow region: clean.
    req = msg.OverflowWriteReq(sr.name, ranges=sr.ranges,
                               payload=sr.payload)
    yield sr.server.send(req)


def rebuild_overflow_file(fs, name, blob) -> "Generator[Event, Any, None]":
    # Recovery writes the overflow file itself, not the home location.
    yield from fs.write(f"{name}.ovf", 0, blob)
