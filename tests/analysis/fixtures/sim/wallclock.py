"""csar-lint fixture: CSAR004 (wall-clock-in-sim).

Lives under a ``sim/`` path segment so the determinism rule applies.
"""

import random
import time


def measure(env) -> "Generator[Event, Any, None]":
    t0 = time.time()  # expect: CSAR004
    yield env.timeout(1.0)
    time.sleep(0.1)  # expect: CSAR004
    return t0


def jitter():
    return random.random()  # expect: CSAR004


def pick(items):
    return random.choice(items)  # expect: CSAR004


def seeded_ok(seed):
    rng = random.Random(seed)
    return rng.random()
