"""csar-lint fixture: CSAR012 (payload-copy-in-hot-loop).

Lives under a ``pvfs/`` path segment so the data-path payload rule
applies.  ``Payload`` here is a stand-in — the rule is name-based, like
CSAR006.
"""


class Payload:
    @staticmethod
    def concat(parts):
        return parts

    @staticmethod
    def assemble(length, parts):
        return parts


def per_fragment_concat(chunks):
    acc = Payload.concat([])
    for chunk in chunks:
        acc = Payload.concat([acc, chunk])  # expect: CSAR012
    return acc


def flatten_each_reply(replies):
    return [r.payload.to_bytes() for r in replies]  # expect: CSAR012


def assemble_per_iteration(runs):
    out = []
    while runs:
        parts = runs.pop()
        out.append(Payload.assemble(len(parts), parts))  # expect: CSAR012
    return out


def nested_loops(batches):
    out = []
    for batch in batches:
        for run in batch:
            out.append(run.to_bytes())  # expect: CSAR012
    return out


def assemble_once_is_fine(chunks):
    # Build the segment list in the loop, materialise once at the end.
    parts = []
    at = 0
    for chunk in chunks:
        parts.append((at, chunk))
        at += chunk.length
    return Payload.assemble(at, parts)


def cold_loop_suppressed(manifests):
    out = []
    for m in manifests:
        # Startup-only manifest decode; runs once per mounted file.
        out.append(m.to_bytes())  # csar-lint: disable=CSAR012
    return out


def bare_call_is_not_ours(rows):
    # A plain function named assemble (no attribute receiver) is some
    # other module's business, not a Payload flattening.
    def assemble(row):
        return row

    return [assemble(row) for row in rows]
