"""csar-lint fixture: CSAR008 (conditional-release).

Never imported — parsed by tests/analysis/test_lint.py.  A release
exists in the function, but at least one *normal* exit path keeps the
lock: the dataflow engine reports the acquire site.
"""


def release_only_on_success(table, env, xid) -> "Generator[Event, Any, None]":
    yield from table.acquire("f", 0, xid)  # expect: CSAR008
    result = yield env.timeout(1.0)
    if result:
        table.release("f", 0, xid)
    return result


def early_return_skips_release(table, env,
                               xid, fast) -> "Generator[Event, Any, None]":
    yield from table.acquire("f", 3, xid)  # expect: CSAR008
    if fast:
        return None
    yield env.timeout(1.0)
    table.release("f", 3, xid)
    return True


def released_in_both_branches(table, env,
                              xid, fast) -> "Generator[Event, Any, None]":
    # Every normal exit drops the lock: no finding.
    yield from table.acquire("f", 5, xid)
    if fast:
        table.release("f", 5, xid)
        return None
    table.release("f", 5, xid)
    yield env.timeout(1.0)
    return True
