"""csar-lint fixture: CSAR006 (extent-alloc-in-hot-loop).

Lives under a ``hw/`` path segment so the hot-path allocation rule
applies.
"""

from repro.util.intervals import Extent, ExtentMap


def per_block_extents(blocks):
    out = []
    for lo, hi in blocks:
        out.append(Extent(lo, hi))  # expect: CSAR006
    return out


def comprehension_extents(blocks):
    return [Extent(lo, hi) for lo, hi in blocks]  # expect: CSAR006


def nested_loops(rows):
    out = []
    for row in rows:
        while row:
            lo, hi = row.pop()
            out.append(Extent(lo, hi))  # expect: CSAR006
    return out


def single_extent_is_fine(lo, hi):
    # Constructed once, outside any loop: not a hot-path allocation.
    return Extent(lo, hi)


def cold_loop_suppressed(blocks):
    out = []
    for lo, hi in blocks:
        # Startup-only configuration parsing; runs once per system.
        out.append(Extent(lo, hi))  # csar-lint: disable=CSAR006
    return out


def tuple_walk_is_fine(extmap: ExtentMap, start: int, end: int) -> int:
    total = 0
    for s, e in extmap.overlap_iter(start, end):
        total += e - s
    return total
