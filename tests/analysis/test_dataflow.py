"""The forward dataflow framework and the lock-ownership analysis
(repro.analysis.dataflow) behind CSAR001/007/008."""

import ast

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import LockAnalysis, run_forward


def analysis_of(source):
    tree = ast.parse(source)
    return LockAnalysis(tree.body[0])


class TestFramework:
    def test_union_join_is_a_may_analysis(self):
        # gens on one branch only must survive to the join point.
        source = (
            "def f(x, table):\n"
            "    if x:\n"
            "        yield from table.acquire('f', 3, xid=1)\n"
            "    done()\n")
        la = analysis_of(source)
        stmts = {i: n.stmt for i, n in enumerate(la.cfg.nodes)
                 if n.stmt is not None and n.label == "stmt"}
        done_node = next(i for i, s in stmts.items()
                         if "done()" in ast.unparse(s))
        assert la.facts[done_node]  # held-on-one-branch reaches the join

    def test_unreachable_nodes_have_none_fact(self):
        source = (
            "def f():\n"
            "    return 1\n"
            "    dead()\n")
        tree = ast.parse(source)
        cfg = build_cfg(tree.body[0])
        facts = run_forward(cfg, lambda n, fact, kind: fact)
        dead = next(i for i, node in enumerate(cfg.nodes)
                    if node.stmt is not None
                    and "dead" in ast.unparse(node.stmt))
        assert facts[dead] is None


class TestTokenCollection:
    def test_acquire_token_with_receiver_and_args(self):
        la = analysis_of(
            "def f(table):\n"
            "    yield from table.acquire('f', 3, xid=1)\n"
            "    table.release('f', 3, xid=1)\n")
        assert len(la.tokens) == 1
        token = la.tokens[0]
        assert token.kind == "acquire"
        assert token.receiver == "table"
        assert token.release_sites

    def test_with_guarded_request_not_tracked_as_leak(self):
        la = analysis_of(
            "def f(lock):\n"
            "    with lock.request() as req:\n"
            "        yield req\n")
        assert all(t.guarded for t in la.tokens)
        assert not la.held_at_exit()

    def test_escaping_request_drops_ownership(self):
        la = analysis_of(
            "def f(self, lock):\n"
            "    req = lock.request()\n"
            "    self._held[0] = req\n"
            "    yield req\n")
        token = la.tokens[0]
        assert token.escapes
        assert not la.held_at_exit()


class TestHeldQueries:
    def test_balanced_acquire_release_clean(self):
        la = analysis_of(
            "def f(table, env):\n"
            "    yield from table.acquire('f', 3, xid=1)\n"
            "    try:\n"
            "        yield env.timeout(1)\n"
            "    finally:\n"
            "        table.release('f', 3, xid=1)\n")
        assert not la.held_at_exit()
        assert not la.held_at_raise()

    def test_missing_release_held_at_exit(self):
        la = analysis_of(
            "def f(table, env):\n"
            "    yield from table.acquire('f', 3, xid=1)\n"
            "    yield env.timeout(1)\n")
        assert la.held_at_exit()

    def test_interrupt_path_leak_held_at_raise_only(self):
        # Released on the normal path, but the yield in the window can
        # raise and the release is not in cleanup.
        la = analysis_of(
            "def f(table, env):\n"
            "    yield from table.acquire('f', 3, xid=1)\n"
            "    yield env.timeout(1)\n"
            "    table.release('f', 3, xid=1)\n")
        assert not la.held_at_exit()
        assert la.held_at_raise()
        assert not la.tokens[0].release_in_cleanup

    def test_conditional_release_held_on_one_exit_path(self):
        la = analysis_of(
            "def f(ok, table, env):\n"
            "    yield from table.acquire('f', 3, xid=1)\n"
            "    if ok:\n"
            "        table.release('f', 3, xid=1)\n")
        assert la.held_at_exit()  # the no-release arm reaches exit held

    def test_exc_edge_propagates_pre_state(self):
        # An aborted acquire never acquired: the raise-exit fact from
        # the acquiring statement's own exception must be empty.
        la = analysis_of(
            "def f(table):\n"
            "    yield from table.acquire('f', 3, xid=1)\n"
            "    table.release('f', 3, xid=1)\n")
        assert not la.held_at_raise()

    def test_argument_exact_release_matching(self):
        # Two groups on one table: releasing group 3 must not release
        # group 5's token.
        la = analysis_of(
            "def f(table, env):\n"
            "    yield from table.acquire('f', 3, xid=1)\n"
            "    yield from table.acquire('f', 5, xid=1)\n"
            "    table.release('f', 3, xid=1)\n"
            "    yield env.timeout(1)\n")
        assert la.held_at_exit()
        held = {la.tokens[t].args for t in la.held_at_exit()}
        assert ("'f'", "5", "xid=1") in held
        assert ("'f'", "3", "xid=1") not in held


class TestYieldsWhileHeld:
    def test_yield_in_window_is_reported(self):
        la = analysis_of(
            "def f(table, net):\n"
            "    yield from table.acquire('f', 3, xid=1)\n"
            "    yield net.rpc(1)\n"
            "    table.release('f', 3, xid=1)\n")
        pairs = la.yields_while_held()
        texts = [ast.unparse(node) for node, _held in pairs]
        assert any("net.rpc" in t for t in texts)

    def test_acquiring_yield_itself_not_reported(self):
        la = analysis_of(
            "def f(table):\n"
            "    yield from table.acquire('f', 3, xid=1)\n"
            "    table.release('f', 3, xid=1)\n")
        assert la.yields_while_held() == []
