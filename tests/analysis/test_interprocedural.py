"""Whole-program lint mode: the ip_fixtures round-trip, the seeded-bug
regression the intra pass provably misses, CSAR011 x LockSan witness
cross-referencing, baselines, SARIF, and the CLI flags."""

import json
import re
from pathlib import Path

import pytest

from repro.analysis import explore, lint

HERE = Path(__file__).resolve().parent
IP_FIXTURES = HERE / "ip_fixtures"
REPO_ROOT = HERE.parent.parent
SEEDED = REPO_ROOT / "src" / "repro" / "analysis" / "seeded_bugs.py"

_EXPECT = re.compile(r"#\s*expect:\s*(CSAR\d+(?:\s*,\s*CSAR\d+)*)")


def expected_ip_findings():
    expected = set()
    for path in sorted(IP_FIXTURES.rglob("*.py")):
        for lineno, text in enumerate(
                path.read_text().splitlines(), start=1):
            match = _EXPECT.search(text)
            if match:
                for code in re.split(r"\s*,\s*", match.group(1)):
                    expected.add((str(path), lineno, code))
    return expected


class TestFixtureRoundTrip:
    def test_interprocedural_findings_exactly_as_expected(self):
        expected = expected_ip_findings()
        findings = lint.lint_paths([str(IP_FIXTURES)],
                                   interprocedural=True)
        actual = {(f.path, f.line, f.code) for f in findings}
        missing = expected - actual
        surprise = actual - expected
        assert not missing, f"expected findings not produced: {missing}"
        assert not surprise, f"unexpected findings: {surprise}"

    def test_intra_pass_reports_nothing_on_ip_fixtures(self):
        # The whole point of the package: every bug needs the summaries.
        assert lint.lint_paths([str(IP_FIXTURES)]) == []

    def test_fixtures_exercise_the_new_rules(self):
        codes = {code for _p, _l, code in expected_ip_findings()}
        assert {"CSAR007", "CSAR010", "CSAR011"} <= codes


class TestSeededBugRegression:
    """The helper-release leak the old intra-only pass provably misses."""

    def test_intra_pass_misses_the_helper_release_leak(self):
        assert lint.lint_paths([str(SEEDED)]) == []

    def test_interprocedural_pass_catches_it(self):
        findings = lint.lint_paths([str(REPO_ROOT / "src")],
                                   interprocedural=True)
        seeded = [f for f in findings if f.path.endswith("seeded_bugs.py")]
        codes = {f.code for f in seeded}
        assert "CSAR010" in codes  # HelperReleaseRaid5's leaked lease
        assert "CSAR011" in codes  # DescendingLockRaid5's loop
        leak = next(f for f in seeded if f.code == "CSAR010")
        assert "_take_lease" in leak.message
        assert "->" in leak.message  # the witness call chain

    def test_repo_src_still_clean_intra(self):
        assert lint.lint_paths([str(REPO_ROOT / "src")]) == []


class TestWitnessCrossReference:
    def test_every_locksan_inversion_is_part_of_a_static_cycle(self):
        # Acceptance gate: run the seeded-bug suite, collect every
        # LockSan order-inversion, and require CSAR011 to name each one
        # as the dynamic witness of a static cycle.
        explore.drain_witnesses()
        for scen in explore.smoke_scenarios():
            explore.explore(scen.name, budget=16)
        witnesses = explore.drain_witnesses()
        assert witnesses, "seeded-bug suite produced no order-inversions"
        findings = lint.lint_paths([str(REPO_ROOT / "src")],
                                   interprocedural=True,
                                   witnesses=witnesses)
        cycles = [f for f in findings if f.code == "CSAR011"]
        for witness in witnesses:
            note = (f"held group {witness['held_group']} while acquiring "
                    f"group {witness['group']}")
            assert any(note in f.witness for f in cycles), \
                f"no CSAR011 finding claims witness {witness}"

    def test_unwitnessed_cycle_says_so(self):
        findings = lint.lint_paths([str(IP_FIXTURES)],
                                   interprocedural=True, witnesses=[])
        cycle = next(f for f in findings if f.code == "CSAR011")
        assert "no dynamic witness recorded" in cycle.witness

    def test_witness_file_round_trip(self, tmp_path):
        path = str(tmp_path / "witnesses.json")
        witnesses = [{"file": "f", "group": 0, "held_group": 1}]
        lint.save_witnesses(witnesses, path)
        assert lint.load_witnesses(path) == witnesses

    def test_witness_schema_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError):
            lint.load_witnesses(str(path))


class TestBaseline:
    def findings(self):
        return lint.lint_paths([str(IP_FIXTURES)], interprocedural=True)

    def test_write_load_apply_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        findings = self.findings()
        lint.write_baseline(findings, path)
        entries = lint.load_baseline(path)
        new, suppressed = lint.apply_baseline(findings, entries)
        assert new == []
        assert suppressed == len(findings)

    def test_baseline_keys_survive_line_drift(self, tmp_path):
        # Keys are (path, code, message) — moving a finding to another
        # line (code above it changed) must not resurface it.
        path = str(tmp_path / "baseline.json")
        findings = self.findings()
        lint.write_baseline(findings, path)
        drifted = [lint.Finding(f.path, f.line + 7, f.col, f.code,
                                f.message, f.witness)
                   for f in findings]
        new, suppressed = lint.apply_baseline(
            drifted, lint.load_baseline(path))
        assert new == []
        assert suppressed == len(findings)

    def test_new_findings_are_not_suppressed(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        findings = self.findings()
        lint.write_baseline(findings[1:], path)
        new, suppressed = lint.apply_baseline(
            findings, lint.load_baseline(path))
        assert new == [findings[0]]
        assert suppressed == len(findings) - 1

    def test_schema_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError):
            lint.load_baseline(str(path))

    def test_repo_baseline_covers_the_seeded_bugs(self, monkeypatch):
        # The committed baseline is exactly why `csar-repro lint src`
        # exits 0 while the seeded-bug modules deliberately trip rules.
        monkeypatch.chdir(REPO_ROOT)
        entries = lint.load_baseline("tools/lint_baseline.json")
        findings = lint.lint_paths(["src"], interprocedural=True)
        assert {lint.baseline_key(f) for f in findings} == entries


class TestDeduplication:
    def test_file_passed_twice_reports_once(self):
        once = lint.lint_paths([str(IP_FIXTURES / "leak_chain.py")],
                               interprocedural=True)
        twice = lint.lint_paths([str(IP_FIXTURES / "leak_chain.py"),
                                 str(IP_FIXTURES / "leak_chain.py")],
                                interprocedural=True)
        assert twice == once

    def test_file_and_parent_directory_report_once(self):
        tree = lint.lint_paths([str(IP_FIXTURES)], interprocedural=True)
        overlap = lint.lint_paths(
            [str(IP_FIXTURES), str(IP_FIXTURES / "leak_chain.py")],
            interprocedural=True)
        assert overlap == tree


class TestSarif:
    def test_sarif_document_structure(self):
        findings = lint.lint_paths([str(IP_FIXTURES)],
                                   interprocedural=True)
        doc = json.loads(lint.format_sarif(findings))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in
                    run["tool"]["driver"]["rules"]}
        assert {"CSAR010", "CSAR011"} <= rule_ids
        results = run["results"]
        assert len(results) == len(findings)
        for result, finding in zip(results, findings):
            assert result["ruleId"] == finding.code
            location = result["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] == finding.line

    def test_sarif_of_no_findings_is_valid(self):
        doc = json.loads(lint.format_sarif([]))
        assert doc["runs"][0]["results"] == []


class TestCli:
    def test_default_lint_is_interprocedural_and_baselined(
            self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src"]) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_no_interprocedural_flag(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src", "--no-interprocedural"]) == 0

    def test_write_then_consume_baseline(self, capsys, monkeypatch,
                                         tmp_path):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", str(IP_FIXTURES),
                     "--write-baseline", baseline]) == 0
        capsys.readouterr()
        assert main(["lint", str(IP_FIXTURES),
                     "--baseline", baseline]) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_missing_baseline_exits_two(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src", "--baseline", "no/such.json"]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_missing_witness_file_exits_two(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src", "--witnesses", "no/such.json"]) == 2
        assert "witness" in capsys.readouterr().err

    def test_sarif_format(self, capsys, monkeypatch, tmp_path):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", str(IP_FIXTURES), "--format=sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]

    def test_explore_witness_file_flag(self, capsys, monkeypatch,
                                       tmp_path):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        witness_file = str(tmp_path / "wit.json")
        assert main(["explore", "buggy-lock-order", "--budget", "8",
                     "--witness-file", witness_file]) == 1
        witnesses = lint.load_witnesses(witness_file)
        assert {"file": "f", "group": 0, "held_group": 1} in witnesses
