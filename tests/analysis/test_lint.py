"""csar-lint: the static protocol checker (repro.analysis.lint).

The fixture files under ``fixtures/`` carry ``# expect: CSAR###``
comments on every line that must produce exactly that finding; the
round-trip test asserts the linter reports *all* of them and *nothing
else*.  The clean-tree test is the repo's own gate: ``src/`` must lint
clean.
"""

import json
import re
from pathlib import Path

import pytest

from repro.analysis import lint
from repro.analysis.rules import RULES, all_codes

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
IP_FIXTURES = HERE / "ip_fixtures"
REPO_ROOT = HERE.parent.parent

_EXPECT = re.compile(r"#\s*expect:\s*(CSAR\d+(?:\s*,\s*CSAR\d+)*)")


def expected_findings(root=FIXTURES):
    """(path, line, code) triples declared by fixture comments."""
    expected = set()
    for path in sorted(root.rglob("*.py")):
        for lineno, text in enumerate(
                path.read_text().splitlines(), start=1):
            match = _EXPECT.search(text)
            if match:
                for code in re.split(r"\s*,\s*", match.group(1)):
                    expected.add((str(path), lineno, code))
    return expected


class TestFixtureRoundTrip:
    def test_every_rule_fires_exactly_where_expected(self):
        expected = expected_findings()
        findings = lint.lint_paths([str(FIXTURES)])
        actual = {(f.path, f.line, f.code) for f in findings}
        missing = expected - actual
        surprise = actual - expected
        assert not missing, f"expected findings not produced: {missing}"
        assert not surprise, f"unexpected findings: {surprise}"

    def test_every_registered_rule_is_exercised(self):
        # Intra rules fire in fixtures/; the whole-program rules only
        # in ip_fixtures/ (that is their point) — together they cover
        # the full registry.
        codes = {code for _p, _l, code in expected_findings()}
        codes |= {code for _p, _l, code in
                  expected_findings(IP_FIXTURES)}
        assert codes == set(all_codes())

    def test_findings_carry_fixits(self):
        for finding in lint.lint_paths([str(FIXTURES)]):
            assert finding.fixit == RULES[finding.code].fixit
            assert finding.code in finding.format()


class TestCleanTree:
    def test_repo_src_lints_clean(self):
        findings = lint.lint_paths([str(REPO_ROOT / "src")])
        assert findings == [], lint.format_text(findings)

    def test_pyproject_registry_matches_rules(self):
        enable = lint.enabled_codes_from_pyproject(str(REPO_ROOT))
        assert enable is not None
        assert sorted(enable) == sorted(all_codes())


class TestSuppression:
    def test_line_suppression_by_code(self):
        source = (
            "def p(table, env, xid) -> 'Generator[Event, Any, None]':\n"
            "    yield from table.acquire('f', 0, xid)"
            "  # csar-lint: disable=CSAR001\n"
            "    yield env.timeout(1.0)\n")
        assert lint.lint_source(source) == []

    def test_suppressing_one_code_keeps_others(self):
        source = (
            "def p(table, env, xid) -> 'Generator[Event, Any, None]':\n"
            "    yield from table.acquire('f', 0, xid)"
            "  # csar-lint: disable=CSAR003\n"
            "    yield env.timeout(1.0)\n")
        findings = lint.lint_source(source)
        assert [f.code for f in findings] == ["CSAR001"]

    def test_bare_disable_suppresses_everything(self):
        source = (
            "def p(env) -> 'Generator[Event, Any, None]':\n"
            "    yield 42  # csar-lint: disable\n")
        assert lint.lint_source(source) == []

    def test_combined_pragma_comment(self):
        source = (
            "def p(env) -> 'Generator[Event, Any, None]':\n"
            "    yield 42  # pragma: no cover - csar-lint: "
            "disable=CSAR003\n")
        assert lint.lint_source(source) == []


class TestRuleEdges:
    def test_syntax_error_reported_not_raised(self):
        findings = lint.lint_source("def broken(:\n", path="x.py")
        assert len(findings) == 1
        assert findings[0].code == "CSAR000"

    def test_wall_clock_rule_only_in_sim_paths(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert lint.lint_source(source, path="src/repro/util/x.py") == []
        findings = lint.lint_source(source, path="src/repro/sim/x.py")
        assert [f.code for f in findings] == ["CSAR004"]
        findings = lint.lint_source(
            source, path="src/repro/redundancy/x.py")
        assert [f.code for f in findings] == ["CSAR004"]

    def test_enable_filter(self):
        source = (
            "def p(env) -> 'Generator[Event, Any, None]':\n"
            "    yield 42\n")
        assert lint.lint_source(source, enable=["CSAR001"]) == []
        assert [f.code for f in lint.lint_source(
            source, enable=["CSAR003"])] == ["CSAR003"]

    def test_descending_kwarg_group_detected(self):
        source = (
            "def p(table, env, xid) -> 'Generator[Event, Any, None]':\n"
            "    try:\n"
            "        yield from table.acquire('f', group=7, xid=xid)\n"
            "        yield from table.acquire('f', group=2, xid=xid)\n"
            "    finally:\n"
            "        table.release('f', group=2, xid=xid)\n"
            "        table.release('f', group=7, xid=xid)\n")
        findings = lint.lint_source(source)
        assert [f.code for f in findings] == ["CSAR002"]
        assert findings[0].line == 4

    def test_format_json_round_trips(self):
        source = (
            "def p(env) -> 'Generator[Event, Any, None]':\n"
            "    yield 42\n")
        findings = lint.lint_source(source, path="mod.py")
        payload = json.loads(lint.format_json(findings))
        assert payload["schema_version"] == lint.LINT_SCHEMA_VERSION
        items = payload["findings"]
        assert items[0]["code"] == "CSAR003"
        assert items[0]["path"] == "mod.py"
        assert items[0]["line"] == 2
        assert items[0]["fixit"]

    def test_format_text_counts(self):
        source = (
            "def p(env) -> 'Generator[Event, Any, None]':\n"
            "    yield 42\n")
        text = lint.format_text(lint.lint_source(source, path="mod.py"))
        assert "mod.py:2" in text
        assert "1 finding" in text
        assert lint.format_text([]) == ""


class TestCli:
    def test_lint_clean_tree_exits_zero(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src"]) == 0

    def test_lint_fixture_tree_exits_one(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "CSAR001" in out and "CSAR004" in out

    def test_lint_json_format(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", str(FIXTURES / "bad_yields.py"),
                     "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert all(item["code"] == "CSAR003"
                   for item in payload["findings"])

    def test_lint_missing_path_exits_two(self, capsys):
        from repro.cli import main

        assert main(["lint", "no/such/path"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in all_codes():
            assert code in out
