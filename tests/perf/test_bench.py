"""The bench harness (repro.perf.bench) and its trajectory file."""

import json

import pytest

from repro.perf import bench


class TestScenarios:
    def test_registry_matches_pytest_benchmarks(self):
        # The pytest-benchmark suite wraps the same callables; keep the
        # two views of "the simulator's perf" in sync.
        assert set(bench.SCENARIOS) == {
            "engine_event_throughput", "resource_contention",
            "parity_kernel", "extent_map_churn", "end_to_end_write",
            "content_mode_write", "content_mode_degraded_read",
            "payload_sg_churn"}

    def test_engine_scenario_runs_to_completion(self):
        assert bench.engine_events_once() == 200.0

    def test_extent_churn_scenario_is_deterministic(self):
        assert bench.extent_map_churn_once() == bench.extent_map_churn_once()

    def test_run_scenarios_subset(self):
        results = bench.run_scenarios(["extent_map_churn"], repeats=1)
        assert set(results) == {"extent_map_churn"}
        entry = results["extent_map_churn"]
        assert entry["seconds"] > 0
        assert entry["ops_per_sec"] > 0


class TestTrajectoryFile:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "bench.json")
        results = {"extent_map_churn": {"seconds": 0.002}}
        bench.append_run(results, path=path, note="first", quick=True)
        bench.append_run(results, path=path, note="second")
        data = bench.load(path)
        assert data["schema"] == 1
        assert [run["note"] for run in data["runs"]] == ["first", "second"]
        assert data["runs"][0]["quick"] is True
        assert data["runs"][1]["quick"] is False
        # File is plain JSON (machine-readable for CI artifacts).
        with open(path) as fp:
            assert json.load(fp)["runs"][1]["results"] == results

    def test_load_missing_file_is_empty(self, tmp_path):
        data = bench.load(str(tmp_path / "absent.json"))
        assert data == {"schema": 1, "runs": []}

    def test_baseline_is_last_run(self, tmp_path):
        path = str(tmp_path / "bench.json")
        assert bench.baseline_run(bench.load(path)) is None
        bench.append_run({"a": {"seconds": 1.0}}, path=path, note="old")
        bench.append_run({"a": {"seconds": 2.0}}, path=path, note="new")
        assert bench.baseline_run(bench.load(path))["note"] == "new"


class TestRegressionCheck:
    BASELINE = {"results": {"a": {"seconds": 1.0}, "b": {"seconds": 1.0}}}

    def test_no_failures_within_threshold(self):
        fresh = {"a": {"seconds": 1.25}, "b": {"seconds": 0.5}}
        assert bench.check_regression(self.BASELINE, fresh) == []

    def test_regression_beyond_threshold_fails(self):
        fresh = {"a": {"seconds": 1.5}, "b": {"seconds": 1.0}}
        failures = bench.check_regression(self.BASELINE, fresh)
        assert len(failures) == 1
        name, base_s, new_s, slowdown = failures[0]
        assert name == "a"
        assert (base_s, new_s) == (1.0, 1.5)
        assert slowdown == pytest.approx(0.5)

    def test_new_scenarios_are_not_regressions(self):
        fresh = {"unheard_of": {"seconds": 99.0}}
        assert bench.check_regression(self.BASELINE, fresh) == []

    def test_custom_threshold(self):
        fresh = {"a": {"seconds": 1.2}}
        assert bench.check_regression(self.BASELINE, fresh,
                                      threshold=0.1) != []


class TestFormat:
    def test_format_shows_delta_vs_baseline(self):
        fresh = {"a": {"seconds": 1.5}}
        text = bench.format_results(
            fresh, {"results": {"a": {"seconds": 1.0}}})
        assert "a" in text
        assert "+50.0% vs baseline" in text
