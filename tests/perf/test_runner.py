"""The parallel sweep runner (repro.perf.runner).

The load-bearing guarantees: a parallel sweep is *bit-identical* to the
sequential one (tables, CSV, kernel counters), results come back in
submission order, and a worker crash surfaces the original experiment
exception labeled with its point.
"""

import pytest

from repro.errors import ConfigError
from repro.perf.runner import (SweepPoint, SweepPointError, SweepResult,
                               merge_counters, run_sweep)

#: A 4-point sweep of cheap, sim-exercising experiments.
POINTS = [
    SweepPoint("fig1"),
    SweepPoint("fig2"),
    SweepPoint("fig3", scale=0.05),
    SweepPoint("fig3", scale=0.1),
]


class TestDeterminism:
    def test_jobs4_bit_identical_to_jobs1(self):
        sequential = run_sweep(POINTS, jobs=1)
        parallel = run_sweep(POINTS, jobs=4)
        assert len(sequential) == len(parallel) == len(POINTS)
        for seq, par in zip(sequential, parallel):
            assert seq.ok and par.ok
            assert seq.point == par.point
            # Bit-identical CSV (the artifact --csv-dir would write) ...
            assert seq.table.to_csv() == par.table.to_csv()
            assert seq.table.format() == par.table.format()
            # ... and identical kernel counters (events are the metric
            # wall clock is not part of).
            assert seq.counters == par.counters

    def test_results_in_submission_order(self):
        results = run_sweep(POINTS, jobs=4)
        assert [r.point for r in results] == POINTS

    def test_sequential_matches_direct_experiment_run(self):
        from repro.experiments import get_experiment

        [result] = run_sweep([SweepPoint("fig3", scale=0.05)], jobs=1)
        direct = get_experiment("fig3").run(scale=0.05)
        assert result.table.to_csv() == direct.to_csv()

    def test_merged_counters_identical_across_jobs(self):
        merged_seq = merge_counters(run_sweep(POINTS, jobs=1))
        merged_par = merge_counters(run_sweep(POINTS, jobs=4))
        for key in ("points_ok", "points_failed", "environments",
                    "events_scheduled", "events_dispatched", "sim_time"):
            assert merged_seq[key] == merged_par[key], key
        assert merged_seq["points_ok"] == len(POINTS)
        assert merged_seq["events_dispatched"] > 0


class TestErrorSurfacing:
    @pytest.fixture
    def failing_experiment(self, monkeypatch):
        from repro.experiments.base import REGISTRY, Experiment

        def boom(scale=None):
            raise RuntimeError("kaput")

        monkeypatch.setitem(
            REGISTRY, "boom", Experiment("boom", "always fails", boom))

    def test_worker_crash_surfaces_original_exception_with_label(
            self, failing_experiment):
        points = [SweepPoint("fig1"), SweepPoint("boom", scale=0.5)]
        results = run_sweep(points, jobs=2)
        assert results[0].ok
        failed = results[1]
        assert not failed.ok
        assert isinstance(failed.error, RuntimeError)
        assert str(failed.error) == "kaput"
        assert failed.label == "boom@0.5"
        with pytest.raises(SweepPointError) as excinfo:
            failed.raise_error()
        assert "boom@0.5" in str(excinfo.value)
        assert "kaput" in str(excinfo.value)
        assert excinfo.value.original is failed.error

    def test_failure_does_not_poison_other_points(self, failing_experiment):
        points = [SweepPoint("boom"), SweepPoint("fig1"), SweepPoint("fig2")]
        results = run_sweep(points, jobs=2)
        assert [r.ok for r in results] == [False, True, True]
        merged = merge_counters(results)
        assert merged["points_failed"] == 1
        assert merged["points_ok"] == 2

    def test_sequential_failure_surfaces_identically(
            self, failing_experiment):
        [result] = run_sweep([SweepPoint("boom")], jobs=1)
        assert isinstance(result.error, RuntimeError)
        assert str(result.error) == "kaput"

    def test_unknown_experiment_rejected_before_spawning(self):
        with pytest.raises(ConfigError):
            run_sweep([SweepPoint("fig1"), SweepPoint("no-such-fig")],
                      jobs=4)

    def test_raise_error_is_noop_on_success(self):
        result = SweepResult(point=SweepPoint("fig1"), table=None, wall=0.0)
        result.raise_error()  # must not raise


class TestLabels:
    def test_default_labels(self):
        assert SweepPoint("fig3").resolved_label() == "fig3"
        assert SweepPoint("fig3", scale=0.25).resolved_label() == "fig3@0.25"
        assert SweepPoint("fig3", label="x").resolved_label() == "x"
