"""csar-repro profile: cProfile plus kernel counters."""

import pytest

from repro.errors import ConfigError
from repro.perf.profiler import profile_experiment
from repro.sim import engine


class TestProfileExperiment:
    def test_report_contains_profile_and_counters(self):
        report, table = profile_experiment("fig3", scale=0.05, top=5)
        assert "cProfile" in report
        assert "kernel counters" in report
        # fig3 runs real simulations: at least one environment with a
        # non-trivial event count must show up.
        assert "env#0" in report
        assert "scheduled=" in report
        assert table.rows

    def test_unknown_experiment_raises_config_error(self):
        with pytest.raises(ConfigError):
            profile_experiment("fig99")

    def test_observer_restored_after_profiling(self):
        sentinel_calls = []
        sentinel = sentinel_calls.append
        previous = engine.env_observer()
        engine.set_env_observer(sentinel)
        try:
            profile_experiment("fig2")
            assert engine.env_observer() is sentinel
        finally:
            engine.set_env_observer(previous)


class TestEnvironmentStats:
    def test_stats_track_schedule_and_dispatch(self):
        env = engine.Environment()

        def proc():
            yield env.timeout(1.0)
            yield env.timeout(1.0)

        env.process(proc())
        before = env.stats()
        assert before["scheduled"] == before["pending"] == 1  # Initialize
        assert before["dispatched"] == 0
        env.run()
        after = env.stats()
        # Initialize + 2 timeouts + process termination, all dispatched.
        assert after["scheduled"] == 4
        assert after["dispatched"] == 4
        assert after["pending"] == 0
        assert after["now"] == 2.0
