"""Tests for the command-line front end."""

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out
        assert "table2" in out


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "fill_minutes" in out

    def test_run_with_scale(self, capsys):
        assert main(["run", "fig3", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "RAID5" in out
        assert "scale 0.1" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "fig1", "ablation-parity"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "ablation-parity" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestCsvExport:
    def test_csv_dir_writes_files(self, tmp_path, capsys):
        assert main(["run", "fig1", "--csv-dir", str(tmp_path)]) == 0
        csv = (tmp_path / "fig1.csv").read_text()
        assert csv.splitlines()[0].startswith("year,drive,")
        assert "Seagate ST-412" in csv

    def test_table_to_csv_quotes_commas(self):
        from repro.experiments.base import ExpTable

        t = ExpTable("x", "t", ["a", "b"])
        t.add_row('has,comma', 'has"quote')
        csv = t.to_csv()
        assert '"has,comma"' in csv
        assert '"has""quote"' in csv

    def test_fig2_layout_matches_paper(self):
        from repro.experiments import get_experiment

        table = get_experiment("fig2").run()
        assert table.cell(0, "iod2.red") == "P[0-1]"
        assert table.cell(0, "iod0.data") == "D0"
        assert table.cell(0, "iod1.red") == "P[2-3]"
