"""Tests for the command-line front end."""

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out
        assert "table2" in out


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "fill_minutes" in out

    def test_run_with_scale(self, capsys):
        assert main(["run", "fig3", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "RAID5" in out
        assert "scale 0.1" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "fig1", "ablation-parity"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "ablation-parity" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_failing_experiment_exits_nonzero(self, capsys, monkeypatch):
        from repro.experiments.base import REGISTRY, Experiment

        def boom(scale=None):
            raise RuntimeError("kaput")

        monkeypatch.setitem(
            REGISTRY, "boom", Experiment("boom", "always fails", boom))
        assert main(["run", "boom"]) == 1
        err = capsys.readouterr().err
        assert "boom" in err and "kaput" in err

    def test_failure_does_not_abort_later_experiments(self, capsys,
                                                      monkeypatch):
        from repro.experiments.base import REGISTRY, Experiment

        def boom(scale=None):
            raise RuntimeError("kaput")

        monkeypatch.setitem(
            REGISTRY, "boom", Experiment("boom", "always fails", boom))
        assert main(["run", "boom", "fig1"]) == 1
        captured = capsys.readouterr()
        assert "kaput" in captured.err
        assert "fig1" in captured.out  # later experiment still ran


class TestSanitize:
    @pytest.mark.locksan_expected
    def test_sanitize_reports_leak_and_fails(self, capsys, monkeypatch):
        from repro.experiments.base import REGISTRY, Experiment, ExpTable

        def leaky(scale=None):
            from repro.redundancy.locks import ParityLockTable
            from repro.sim import Environment

            env = Environment()
            table = ParityLockTable(env)

            def proc():
                yield from table.acquire("f", 0, xid=1)
                yield env.timeout(1.0)
                # ... and never releases.

            env.process(proc(), name="leaker")
            env.run()
            t = ExpTable("leaky", "leaky experiment", ["col"])
            t.add_row("value")
            return t

        monkeypatch.setitem(
            REGISTRY, "leaky", Experiment("leaky", "leaky", leaky))
        assert main(["run", "leaky", "--sanitize"]) == 1
        err = capsys.readouterr().err
        assert "leak" in err
        assert "leaker" in err

    def test_sanitize_clean_experiment_exits_zero(self, capsys):
        assert main(["run", "fig2", "--sanitize"]) == 0

    def test_sanitize_restores_prior_factory(self):
        from repro.sim import engine

        before = engine.sanitizer_factory()
        main(["run", "fig2", "--sanitize"])
        assert engine.sanitizer_factory() is before

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestCsvExport:
    def test_csv_dir_writes_files(self, tmp_path, capsys):
        assert main(["run", "fig1", "--csv-dir", str(tmp_path)]) == 0
        csv = (tmp_path / "fig1.csv").read_text()
        assert csv.splitlines()[0].startswith("year,drive,")
        assert "Seagate ST-412" in csv

    def test_table_to_csv_quotes_commas(self):
        from repro.experiments.base import ExpTable

        t = ExpTable("x", "t", ["a", "b"])
        t.add_row('has,comma', 'has"quote')
        csv = t.to_csv()
        assert '"has,comma"' in csv
        assert '"has""quote"' in csv

    def test_fig2_layout_matches_paper(self):
        from repro.experiments import get_experiment

        table = get_experiment("fig2").run()
        assert table.cell(0, "iod2.red") == "P[0-1]"
        assert table.cell(0, "iod0.data") == "D0"
        assert table.cell(0, "iod1.red") == "P[2-3]"
