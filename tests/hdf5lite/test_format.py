"""Unit tests for the HDF5-lite binary format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.hdf5lite import format as fmt


class TestSuperblock:
    def test_roundtrip(self):
        raw = fmt.pack_superblock(3, 9000, 200_000, 512)
        assert len(raw) == fmt.SUPERBLOCK_SIZE
        assert fmt.unpack_superblock(raw) == (3, 9000, 200_000, 512)

    def test_bad_magic_rejected(self):
        raw = b"XXXX" + fmt.pack_superblock(0, 0, 0, 0)[4:]
        with pytest.raises(ProtocolError):
            fmt.unpack_superblock(raw)

    def test_short_block_rejected(self):
        with pytest.raises(ProtocolError):
            fmt.unpack_superblock(b"H5")


class TestDatasetHeader:
    def test_roundtrip(self):
        info = fmt.DatasetInfo(name="unk01", dtype_size=8,
                               shape=(8, 8, 8, 100), data_addr=65536,
                               data_bytes=4096, n_attrs=2)
        raw = fmt.pack_dataset_header(info)
        assert len(raw) == fmt.HEADER_SIZE
        back = fmt.unpack_dataset_header(raw)
        assert back == info
        assert back.n_elems == 8 * 8 * 8 * 100

    def test_scalar_dataset(self):
        info = fmt.DatasetInfo(name="t", dtype_size=8, shape=(),
                               data_addr=0, data_bytes=0)
        assert fmt.unpack_dataset_header(
            fmt.pack_dataset_header(info)).n_elems == 1

    def test_long_name_rejected(self):
        info = fmt.DatasetInfo(name="x" * 100, dtype_size=8, shape=(1,),
                               data_addr=0, data_bytes=0)
        with pytest.raises(ProtocolError):
            fmt.pack_dataset_header(info)

    def test_too_many_dims_rejected(self):
        info = fmt.DatasetInfo(name="d", dtype_size=8, shape=(1,) * 9,
                               data_addr=0, data_bytes=0)
        with pytest.raises(ProtocolError):
            fmt.pack_dataset_header(info)


class TestAttributes:
    def test_heap_roundtrip(self):
        heap = (fmt.pack_attribute(0, "units", b"cm")
                + fmt.pack_attribute(2, "time", b"12.5"))
        records = fmt.unpack_attributes(heap)
        assert records == [(0, "units", b"cm"), (2, "time", b"12.5")]

    def test_empty_heap(self):
        assert fmt.unpack_attributes(b"") == []

    def test_truncated_heap_rejected(self):
        with pytest.raises(ProtocolError):
            fmt.unpack_attributes(b"\x01\x02\x03")


@settings(max_examples=80, deadline=None)
@given(name=st.text(alphabet=st.characters(min_codepoint=97,
                                           max_codepoint=122),
                    min_size=1, max_size=30),
       dtype=st.integers(1, 16),
       shape=st.lists(st.integers(1, 64), max_size=4),
       addr=st.integers(0, 1 << 40),
       nbytes=st.integers(0, 1 << 30),
       nattrs=st.integers(0, 100))
def test_header_roundtrip_property(name, dtype, shape, addr, nbytes, nattrs):
    info = fmt.DatasetInfo(name=name, dtype_size=dtype, shape=tuple(shape),
                           data_addr=addr, data_bytes=nbytes,
                           n_attrs=nattrs)
    assert fmt.unpack_dataset_header(fmt.pack_dataset_header(info)) == info
