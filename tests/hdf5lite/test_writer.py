"""End-to-end HDF5-lite tests over a CSAR cluster."""

import pytest

from repro import CSARConfig, Payload, System
from repro.errors import ProtocolError
from repro.hdf5lite import H5File, H5Reader
from repro.units import KiB
from repro.util.trace import TraceRecorder


def make_system(scheme="hybrid"):
    return System(CSARConfig(scheme=scheme, num_servers=6, num_clients=1,
                             stripe_unit=16 * KiB, content_mode=True))


class TestWriteRead:
    def test_dataset_roundtrip(self):
        system = make_system()
        client = system.client()
        data = Payload.pattern(8 * 8 * 8 * 8, seed=1)

        def work():
            f = H5File(client, "ckpt.h5")
            yield from f.create()
            yield from f.create_dataset("dens", shape=(8, 8, 8), dtype_size=8)
            yield from f.write_chunk("dens", 0, data)
            r = H5Reader(client, "ckpt.h5")
            yield from r.open()
            out = yield from r.read_data("dens")
            return r, out

        reader, out = system.run(work())
        assert out == data
        info = reader.dataset("dens")
        assert info.shape == (8, 8, 8)
        assert info.data_bytes == data.length

    def test_multiple_datasets_do_not_overlap(self):
        system = make_system()
        client = system.client()
        a = Payload.pattern(4096, seed=2)
        b = Payload.pattern(4096, seed=3)

        def work():
            f = H5File(client, "x.h5")
            yield from f.create()
            yield from f.create_dataset("a", shape=(512,), dtype_size=8)
            yield from f.create_dataset("b", shape=(512,), dtype_size=8)
            yield from f.write_chunk("a", 0, a)
            yield from f.write_chunk("b", 0, b)
            r = H5Reader(client, "x.h5")
            yield from r.open()
            out_a = yield from r.read_data("a")
            out_b = yield from r.read_data("b")
            return out_a, out_b

        out_a, out_b = system.run(work())
        assert out_a == a and out_b == b

    def test_partial_chunked_writes(self):
        system = make_system()
        client = system.client()
        chunks = [Payload.pattern(1024, seed=10 + i) for i in range(4)]

        def work():
            f = H5File(client, "x.h5")
            yield from f.create()
            yield from f.create_dataset("v", shape=(512,), dtype_size=8)
            for i, chunk in enumerate(chunks):
                yield from f.write_chunk("v", i * 128, chunk)
            r = H5Reader(client, "x.h5")
            yield from r.open()
            out = yield from r.read_data("v")
            return out

        out = system.run(work())
        expected = Payload.assemble(4096, [(i * 1024, c)
                                           for i, c in enumerate(chunks)])
        assert out == expected

    def test_attributes_roundtrip(self):
        system = make_system()
        client = system.client()

        def work():
            f = H5File(client, "x.h5")
            yield from f.create()
            yield from f.create_dataset("v", shape=(16,), dtype_size=8)
            yield from f.set_attribute("v", "units", b"g/cm^3")
            yield from f.set_attribute("v", "time", b"0.125")
            yield from f.create_dataset("w", shape=(16,), dtype_size=8)
            yield from f.set_attribute("w", "units", b"K")
            r = H5Reader(client, "x.h5")
            yield from r.open()
            return r

        reader = system.run(work())
        assert reader.attributes("v") == {"units": b"g/cm^3",
                                          "time": b"0.125"}
        assert reader.attributes("w") == {"units": b"K"}

    def test_chunk_outside_extent_rejected(self):
        system = make_system()
        client = system.client()

        def work():
            f = H5File(client, "x.h5")
            yield from f.create()
            yield from f.create_dataset("v", shape=(8,), dtype_size=8)
            with pytest.raises(ProtocolError):
                yield from f.write_chunk("v", 0, Payload.zeros(1000))

        system.run(work())

    def test_duplicate_dataset_rejected(self):
        system = make_system()
        client = system.client()

        def work():
            f = H5File(client, "x.h5")
            yield from f.create()
            yield from f.create_dataset("v", shape=(8,))
            with pytest.raises(ProtocolError):
                yield from f.create_dataset("v", shape=(8,))

        system.run(work())


class TestEmergentAccessPattern:
    def test_flash_like_checkpoint_produces_papers_request_mix(self):
        # A FLASH-style checkpoint (24 variables, annotated, written in
        # block-sized chunks) must organically produce HDF5's signature:
        # many sub-2 KB metadata writes at low offsets interleaved with
        # large data writes — what Section 6.6/6.7 reports.
        system = System(CSARConfig(scheme="raid0", num_servers=6,
                                   num_clients=1, stripe_unit=64 * KiB,
                                   content_mode=False))
        client = system.client()
        recorder = TraceRecorder(system)
        n_vars = 24
        blocks = 16
        cells_per_block = 16 ** 3  # 4096 elems x 8 B = 32 KiB per chunk

        def work():
            f = H5File(client, "flash.h5")
            yield from f.create()
            for v in range(n_vars):
                name = f"unk{v:02d}"
                yield from f.create_dataset(
                    name, shape=(blocks, cells_per_block), dtype_size=8)
                yield from f.set_attribute(name, "units", b"cgs")
                for b in range(blocks):
                    yield from f.write_chunk(
                        name, b * cells_per_block,
                        Payload.virtual(cells_per_block * 8))

        system.run(work())
        trace = recorder.detach()
        stats = trace.stats("write")
        # Small metadata writes are a large fraction of all requests
        # (FLASH: 37-46% in the paper)...
        assert 0.3 < stats["small_fraction_2k"] < 0.75
        # ...while the bytes are dominated by the 32 KiB data chunks.
        assert stats["median"] <= 2048
        assert stats["max"] == cells_per_block * 8
        # Metadata rewrites hammer the file head (superblock at 0).
        superblock_writes = sum(1 for r in trace
                                if r.op == "write" and r.offset == 0)
        assert superblock_writes >= n_vars

    def test_hybrid_storage_overhead_emerges_from_hdf5_metadata(self):
        # The Table 2 FLASH-at-64K effect, reproduced from first
        # principles: HDF5-lite's header rewrites burn overflow slots.
        def total(scheme):
            system = System(CSARConfig(scheme=scheme, num_servers=6,
                                       num_clients=1, stripe_unit=64 * KiB,
                                       content_mode=False))
            client = system.client()

            def work():
                f = H5File(client, "x.h5")
                yield from f.create()
                for v in range(16):
                    name = f"v{v}"
                    yield from f.create_dataset(name, shape=(4096,),
                                                dtype_size=8)
                    yield from f.write_chunk(name, 0,
                                             Payload.virtual(4096 * 8))

            system.run(work())
            return system.storage_report("x.h5")["total"]

        assert total("hybrid") > total("raid1")


class TestReaderRobustness:
    def test_reader_rejects_non_hdf5_file(self):
        system = make_system()
        client = system.client()

        def work():
            yield from client.create("garbage")
            yield from client.write("garbage", 0,
                                    Payload.from_bytes(b"not an h5 file" * 40))
            r = H5Reader(client, "garbage")
            with pytest.raises(ProtocolError):
                yield from r.open()

        system.run(work())

    def test_unknown_dataset_rejected(self):
        system = make_system()
        client = system.client()

        def work():
            f = H5File(client, "x.h5")
            yield from f.create()
            r = H5Reader(client, "x.h5")
            yield from r.open()
            with pytest.raises(ProtocolError):
                r.dataset("ghost")

        system.run(work())

    def test_header_table_capacity_enforced(self):
        system = make_system()
        client = system.client()

        def work():
            f = H5File(client, "x.h5")
            yield from f.create(max_datasets=2)
            yield from f.create_dataset("a", shape=(4,))
            yield from f.create_dataset("b", shape=(4,))
            with pytest.raises(ProtocolError):
                yield from f.create_dataset("c", shape=(4,))

        system.run(work())

    def test_file_survives_server_failure_under_hybrid(self):
        # The whole point of running HDF5 over CSAR: a container file's
        # metadata *and* data survive a disk failure byte-exactly.
        system = make_system(scheme="hybrid")
        client = system.client()
        data = Payload.pattern(8 * 512, seed=77)

        def build():
            f = H5File(client, "x.h5")
            yield from f.create()
            yield from f.create_dataset("v", shape=(512,), dtype_size=8)
            yield from f.set_attribute("v", "units", b"K")
            yield from f.write_chunk("v", 0, data)

        system.run(build())
        system.fail_server(0)

        def reopen():
            r = H5Reader(client, "x.h5")
            yield from r.open()
            out = yield from r.read_data("v")
            return r, out

        reader, out = system.run(reopen())
        assert out == data
        assert reader.attributes("v") == {"units": b"K"}
