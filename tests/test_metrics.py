"""Tests for the metrics collector."""

from repro.metrics import Metrics


class TestCounters:
    def test_add_and_get(self):
        m = Metrics()
        m.add("x")
        m.add("x", 2.5)
        assert m.get("x") == 3.5

    def test_missing_key_is_zero(self):
        assert Metrics().get("nope") == 0.0

    def test_tx_rx_tracking(self):
        m = Metrics()
        m.record_tx("a", 100)
        m.record_tx("a", 50)
        m.record_rx("b", 150)
        assert m.node_tx_bytes["a"] == 150
        assert m.node_rx_bytes["b"] == 150
        assert m.get("net.bytes") == 150

    def test_bandwidth(self):
        m = Metrics()
        m.add("bytes", 10_000_000)
        assert m.bandwidth("bytes", 2.0) == 5.0


class TestSnapshots:
    def test_snapshot_includes_node_bytes(self):
        m = Metrics()
        m.add("k", 1)
        m.record_tx("n", 10)
        snap = m.snapshot()
        assert snap["k"] == 1
        assert snap["tx.n"] == 10

    def test_diff(self):
        m = Metrics()
        m.add("k", 5)
        before = m.snapshot()
        m.add("k", 3)
        m.add("new", 1)
        diff = m.diff(before)
        assert diff == {"k": 3, "new": 1}

    def test_diff_skips_unchanged(self):
        m = Metrics()
        m.add("same", 2)
        before = m.snapshot()
        assert m.diff(before) == {}
