"""The Section 5.1 stronger-consistency extension: strict group locking.

Plain CSAR (like PVFS) gives no guarantees for overlapping concurrent
writes — the parity or mirror can go inconsistent.  With
``strict_locking=True`` every write holds the locks of the parity groups
it touches, serializing conflicting writers.
"""

import pytest

from repro import CSARConfig, Payload, System
from repro.redundancy import scrub
from repro.units import KiB

UNIT = 4 * KiB


def make_system(scheme="raid5", strict=False, clients=2):
    return System(CSARConfig(scheme=scheme, num_servers=6,
                             num_clients=clients, stripe_unit=UNIT,
                             content_mode=True, strict_locking=strict))


def overlapping_writers(system, rounds=4):
    """Two clients repeatedly rewrite the SAME partial-stripe range."""
    span = system.layout.group_span

    def creator():
        yield from system.client(0).create("f")
        yield from system.client(0).write("f", 0,
                                          Payload.pattern(2 * span, seed=0))

    system.run(creator())

    def writer(k):
        client = system.client(k)
        yield from client.open("f")
        for i in range(rounds):
            yield from client.write("f", UNIT // 2,
                                    Payload.pattern(UNIT, seed=10 * k + i))

    system.run(*[writer(k) for k in range(2)])


class TestStrictLocking:
    @pytest.mark.paritysan_expected
    def test_overlapping_writers_corrupt_parity_without_strict(self):
        # Demonstrates the gap the paper acknowledges: concurrent
        # overlapping writes leave RAID5 parity inconsistent.
        system = make_system(strict=False)
        overlapping_writers(system)
        assert scrub.check_parity(system, "f") != []

    def test_overlapping_writers_consistent_with_strict(self):
        system = make_system(strict=True)
        overlapping_writers(system)
        assert scrub.check_parity(system, "f") == []

    def test_strict_hybrid_overlapping_writers_consistent(self):
        system = make_system(scheme="hybrid", strict=True)
        overlapping_writers(system)
        assert scrub.scrub(system, "f") == []

    def test_final_content_is_one_writers_data(self):
        # Serializability per group: the surviving bytes are exactly some
        # writer's complete payload, never an interleaving.
        system = make_system(strict=True)
        overlapping_writers(system, rounds=3)
        client = system.client(0)

        def read():
            out = yield from client.read("f", UNIT // 2, UNIT)
            return out

        out = system.run(read())
        candidates = [Payload.pattern(UNIT, seed=10 * k + i)
                      for k in range(2) for i in range(3)]
        assert any(out == c for c in candidates)

    def test_strict_mode_still_correct_for_disjoint_writers(self):
        system = make_system(scheme="hybrid", strict=True, clients=4)
        span = system.layout.group_span

        def creator():
            yield from system.client(0).create("f")

        system.run(creator())
        payloads = [Payload.pattern(span + 99, seed=k) for k in range(4)]

        def writer(k):
            client = system.client(k)
            yield from client.open("f")
            yield from client.write("f", k * (span + 99), payloads[k])

        system.run(*[writer(k) for k in range(4)])
        for k in range(4):
            def read(k=k):
                out = yield from system.client(0).read(
                    "f", k * (span + 99), span + 99)
                return out

            assert system.run(read()) == payloads[k]
        assert scrub.scrub(system, "f") == []

    def test_strict_locking_costs_bandwidth(self):
        # The extension is not free: extra round trips + serialization.
        def bw(strict):
            system = System(CSARConfig(scheme="raid5", num_servers=6,
                                       num_clients=1, stripe_unit=UNIT,
                                       content_mode=False,
                                       strict_locking=strict))
            client = system.client()
            span = system.layout.group_span

            def work():
                yield from client.create("f")
                for i in range(20):
                    yield from client.write("f", i * span,
                                            Payload.virtual(span))

            elapsed, _ = system.timed(work())
            return 20 * span / elapsed

        assert bw(strict=True) < bw(strict=False)

    def test_single_writer_unaffected_by_strictness_semantics(self):
        for strict in (False, True):
            system = make_system(strict=strict, clients=1)
            span = system.layout.group_span
            data = Payload.pattern(3 * span + 77, seed=42)

            def work():
                client = system.client(0)
                yield from client.create("f")
                yield from client.write("f", 13, data)
                out = yield from client.read("f", 13, data.length)
                return out

            assert system.run(work()) == data
            assert scrub.scrub(system, "f") == []


class TestStrictLockingDuringFailure:
    def test_strict_write_survives_data_server_failure(self):
        # Strict locks live on parity servers; a failed *data* server
        # degrades the write but the locks still cycle correctly.
        system = make_system(strict=True, clients=1)
        span = system.layout.group_span
        client = system.client(0)

        def setup():
            yield from client.create("f")
            yield from client.write("f", 0, Payload.pattern(2 * span, seed=1))

        system.run(setup())
        system.fail_server(0)
        patch = Payload.pattern(span + 500, seed=2)

        def degraded():
            yield from client.write("f", UNIT, patch)
            out = yield from client.read("f", UNIT, patch.length)
            return out

        assert system.run(degraded()) == patch
        # No lock is left dangling on any surviving server.
        for iod in system.iods:
            assert not iod.locks._held
