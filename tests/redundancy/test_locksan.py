"""LockSan: the runtime lock-protocol sanitizer (repro.analysis.locksan).

Covers the lock-protocol edge cases the sanitizer formalizes:
double-acquire by the same xid, release-without-hold, interrupt while
queued, order inversion, wait-for cycles (true deadlock), and the leak
check at the end of a run — plus a constructed two-client
ascending-order scenario proving no wait-for cycle forms.
"""

import pytest

from repro.analysis.locksan import LockSan
from repro.errors import DeadlockError, LockProtocolError, LockSanError
from repro.redundancy.locks import ParityLockTable
from repro.sim import Environment
from repro.sim.engine import Interrupt
from repro.sim.resources import FifoLock

# Many tests here construct deliberate protocol violations; opt out of
# the suite-wide zero-report check (clean tests assert [] themselves).
pytestmark = pytest.mark.locksan_expected


@pytest.fixture
def env():
    e = Environment()
    e.sanitizer = LockSan()
    return e


def reports(env, kind=None):
    out = env.sanitizer.reports
    if kind is not None:
        out = [r for r in out if r.kind == kind]
    return out


class TestCleanProtocol:
    def test_clean_acquire_release_reports_nothing(self, env):
        table = ParityLockTable(env)

        def proc():
            yield from table.acquire("f", 0, xid=1)
            yield env.timeout(1.0)
            table.release("f", 0, xid=1)

        env.process(proc())
        env.run()
        assert reports(env) == []

    def test_two_clients_ascending_order_no_cycle(self, env):
        # Both clients need groups {2, 7} and follow the Section 5.1
        # rule (ascending): one serializes behind the other, the
        # wait-for graph stays acyclic, and the run completes clean.
        table = ParityLockTable(env)
        finished = []

        def client(xid, start_delay):
            yield env.timeout(start_delay)
            for group in (2, 7):
                yield from table.acquire("f", group, xid=xid)
                yield env.timeout(0.5)
            yield env.timeout(1.0)
            for group in (2, 7):
                table.release("f", group, xid=xid)
            finished.append((xid, env.now))

        env.process(client(1, 0.0), name="client1")
        env.process(client(2, 0.1), name="client2")
        env.run()
        assert [x for x, _t in finished] == [1, 2]
        assert reports(env) == []
        assert env.sanitizer._holder == {}
        assert env.sanitizer._waiting_on == {}


class TestInversion:
    def test_descending_acquire_reports_inversion(self, env):
        table = ParityLockTable(env)

        def proc():
            yield from table.acquire("f", 5, xid=1)
            yield from table.acquire("f", 3, xid=1)
            table.release("f", 3, xid=1)
            table.release("f", 5, xid=1)

        env.process(proc(), name="descender")
        env.run()
        inversions = reports(env, "order-inversion")
        assert len(inversions) == 1
        report = inversions[0]
        assert report.file == "f"
        assert report.group == 3
        assert "5" in report.message
        assert "descender" in report.processes

    def test_ascending_acquire_is_clean(self, env):
        table = ParityLockTable(env)

        def proc():
            yield from table.acquire("f", 3, xid=1)
            yield from table.acquire("f", 5, xid=1)
            table.release("f", 3, xid=1)
            table.release("f", 5, xid=1)

        env.process(proc())
        env.run()
        assert reports(env, "order-inversion") == []

    def test_different_files_do_not_invert(self, env):
        table = ParityLockTable(env)

        def proc():
            yield from table.acquire("a", 5, xid=1)
            yield from table.acquire("b", 3, xid=1)
            table.release("a", 5, xid=1)
            table.release("b", 3, xid=1)

        env.process(proc())
        env.run()
        assert reports(env) == []

    def test_strict_mode_raises_on_inversion(self, env):
        env.sanitizer = LockSan(strict=True)
        table = ParityLockTable(env)

        def proc():
            yield from table.acquire("f", 5, xid=1)
            yield from table.acquire("f", 3, xid=1)

        env.process(proc())
        with pytest.raises(LockSanError):
            env.run()


class TestDeadlock:
    def test_wait_for_cycle_raises_before_hang(self, env):
        # xid 1 holds g3 and wants g5; xid 2 holds g5 and wants g3.
        # Without LockSan, env.run() would return with both processes
        # parked forever; with it, the second wait edge closes the
        # cycle and DeadlockError names both processes.
        table = ParityLockTable(env)

        def client(name, xid, first, second):
            yield from table.acquire("f", first, xid=xid)
            yield env.timeout(1.0)
            yield from table.acquire("f", second, xid=xid)
            table.release("f", first, xid=xid)
            table.release("f", second, xid=xid)

        env.process(client("c1", 1, 3, 5), name="c1")
        env.process(client("c2", 2, 5, 3), name="c2")
        with pytest.raises(DeadlockError) as exc:
            env.run()
        assert "c1" in str(exc.value)
        assert "c2" in str(exc.value)
        deadlocks = reports(env, "deadlock")
        assert len(deadlocks) == 1
        assert set(deadlocks[0].processes) == {"c1", "c2"}

    def test_deadlock_report_lists_held_locks_with_times(self, env):
        # The report must name what each participant already holds (and
        # when it took it), not just who is in the cycle — that's the
        # actionable half of a deadlock diagnosis.
        table = ParityLockTable(env)

        def client(xid, delay, first, second):
            yield env.timeout(delay)
            yield from table.acquire("f", first, xid=xid)
            yield env.timeout(1.0)
            yield from table.acquire("f", second, xid=xid)

        env.process(client(1, 0.0, 3, 5), name="c1")
        env.process(client(2, 0.25, 5, 3), name="c2")
        with pytest.raises(DeadlockError) as exc:
            env.run()
        message = str(exc.value)
        assert "held:" in message
        assert "c1(xid 1) holds [f:3 (acquired t=0)]" in message
        assert "c2(xid 2) holds [f:5 (acquired t=0.25)]" in message

    def test_cross_table_cycle_detected(self, env):
        # Each group's parity lives on a different server (its own
        # ParityLockTable); the wait-for graph must span tables.
        table_a = ParityLockTable(env)
        table_b = ParityLockTable(env)

        def client(xid, first, second):
            ft, fg = first
            st, sg = second
            yield from ft.acquire("f", fg, xid=xid)
            yield env.timeout(1.0)
            yield from st.acquire("f", sg, xid=xid)

        env.process(client(1, (table_a, 0), (table_b, 1)), name="west")
        env.process(client(2, (table_b, 1), (table_a, 0)), name="east")
        with pytest.raises(DeadlockError) as exc:
            env.run()
        assert "west" in str(exc.value) and "east" in str(exc.value)

    def test_fifo_contention_is_not_a_cycle(self, env):
        table = ParityLockTable(env)
        order = []

        def writer(xid):
            yield from table.acquire("f", 0, xid=xid)
            order.append(xid)
            yield env.timeout(1.0)
            table.release("f", 0, xid=xid)

        for xid in range(4):
            env.process(writer(xid))
        env.run()
        assert order == [0, 1, 2, 3]
        assert reports(env) == []


class TestDoubleReleaseAndDoubleAcquire:
    def test_release_without_hold_reported(self, env):
        table = ParityLockTable(env)
        with pytest.raises(LockProtocolError):
            table.release("f", 0, xid=9)
        doubles = reports(env, "double-release")
        assert len(doubles) == 1
        assert doubles[0].file == "f"
        assert doubles[0].group == 0

    def test_double_release_reported(self, env):
        table = ParityLockTable(env)

        def proc():
            yield from table.acquire("f", 1, xid=4)
            table.release("f", 1, xid=4)
            with pytest.raises(LockProtocolError):
                table.release("f", 1, xid=4)

        env.process(proc())
        env.run()
        assert len(reports(env, "double-release")) == 1

    def test_double_acquire_same_xid_still_rejected(self, env):
        table = ParityLockTable(env)

        def proc():
            yield from table.acquire("f", 0, xid=7)
            with pytest.raises(LockProtocolError):
                yield from table.acquire("f", 0, xid=7)
            table.release("f", 0, xid=7)

        env.process(proc())
        env.run()
        assert reports(env) == []


class TestLeak:
    def test_leaked_parity_lock_reported_at_run_end(self, env):
        table = ParityLockTable(env)

        def leaker():
            yield from table.acquire("data.bin", 6, xid=11)
            yield env.timeout(1.0)
            # ... and never releases.

        env.process(leaker(), name="leaky-writer")
        env.run()
        leaks = reports(env, "leak")
        assert len(leaks) == 1
        assert leaks[0].file == "data.bin"
        assert leaks[0].group == 6
        assert leaks[0].processes == ("leaky-writer",)
        assert "data.bin:6" in leaks[0].message

    def test_leaked_raw_fifolock_reported(self, env):
        lock = FifoLock(env)

        def leaker():
            req = lock.request()
            yield req

        env.process(leaker(), name="raw-leaker")
        env.run()
        leaks = reports(env, "leak")
        assert len(leaks) == 1
        assert leaks[0].file is None
        assert "FifoLock" in leaks[0].message
        assert leaks[0].processes == ("raw-leaker",)

    def test_interrupt_while_queued_leaves_no_leak(self, env):
        table = ParityLockTable(env)

        def holder():
            yield from table.acquire("f", 0, xid=1)
            yield env.timeout(5.0)
            table.release("f", 0, xid=1)

        def victim():
            try:
                yield from table.acquire("f", 0, xid=2)
            except Interrupt:
                pass

        def canceller(proc):
            yield env.timeout(1.0)
            proc.interrupt()

        env.process(holder())
        v = env.process(victim())
        env.process(canceller(v))
        env.run()
        assert reports(env) == []

    def test_held_at_deadline_is_not_a_leak(self, env):
        # Stopping at a deadline mid-simulation is not a drain: locks
        # legitimately held at that instant are not reported.
        table = ParityLockTable(env)

        def writer():
            yield from table.acquire("f", 0, xid=1)
            yield env.timeout(10.0)
            table.release("f", 0, xid=1)

        env.process(writer())
        env.run(until=5.0)
        assert reports(env, "leak") == []
        env.run()
        assert reports(env, "leak") == []


class TestSystemUnderLockSan:
    def test_hybrid_write_read_is_clean(self, env):
        # End-to-end: a real System run (RMW parity traffic included)
        # produces zero sanitizer reports.
        from repro import CSARConfig, Payload, System
        from repro.analysis import locksan

        locksan.install()
        try:
            system = System(CSARConfig(scheme="raid5", num_servers=4,
                                       content_mode=True))
            client = system.client()

            def work():
                yield from client.create("demo")
                yield from client.write("demo", 0,
                                        Payload.pattern(1 << 16, seed=3))
                data = yield from client.read("demo", 0, 1 << 16)
                return data

            system.timed(work())
            # (No bare env.run(): the page-cache flusher keeps the heap
            # alive forever; reports accumulate as violations happen.)
            assert system.env.sanitizer is not None
            assert system.env.sanitizer.reports == []
        finally:
            locksan.uninstall()
            locksan.drain_reports()
