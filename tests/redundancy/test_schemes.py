"""End-to-end behaviour of the four redundancy schemes on real bytes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CSARConfig, DataLoss, Payload, System
from repro.redundancy import scrub
from repro.units import KiB

UNIT = 4 * KiB  # small stripe unit keeps content-mode tests fast


def make_system(scheme, servers=6, clients=1, **kw):
    return System(CSARConfig(scheme=scheme, num_servers=servers,
                             num_clients=clients, stripe_unit=UNIT,
                             content_mode=True, **kw))


def write_file(system, name, chunks, client=0):
    """chunks: list of (offset, Payload); creates the file if needed."""
    from repro.errors import FileExists

    c = system.client(client)

    def work():
        try:
            yield from c.create(name)
        except FileExists:
            yield from c.open(name)
        for offset, payload in chunks:
            yield from c.write(name, offset, payload)

    system.run(work())


def read_file(system, name, offset, length, client=0):
    c = system.client(client)

    def work():
        out = yield from c.read(name, offset, length)
        return out

    return system.run(work())


ALL_SCHEMES = ["raid0", "raid1", "raid5", "hybrid"]
REDUNDANT = ["raid1", "raid5", "hybrid"]


class TestRoundtrip:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_large_aligned_write(self, scheme):
        system = make_system(scheme)
        data = Payload.pattern(system.layout.group_span * 4, seed=1)
        write_file(system, "f", [(0, data)])
        assert read_file(system, "f", 0, data.length) == data

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_unaligned_write(self, scheme):
        system = make_system(scheme)
        data = Payload.pattern(3 * UNIT + 123, seed=2)
        write_file(system, "f", [(517, data)])
        assert read_file(system, "f", 517, data.length) == data

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_sparse_hole_reads_zero(self, scheme):
        system = make_system(scheme)
        write_file(system, "f", [(10 * UNIT, Payload.pattern(100, seed=3))])
        head = read_file(system, "f", 0, 10 * UNIT)
        assert head == Payload.zeros(10 * UNIT)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_overwrite_returns_latest(self, scheme):
        system = make_system(scheme)
        first = Payload.pattern(2 * system.layout.group_span, seed=4)
        write_file(system, "f", [(0, first)])
        patch = Payload.pattern(333, seed=5)
        write_file(system, "f", [(UNIT + 17, patch)])
        out = read_file(system, "f", 0, first.length)
        expected = first.overlay(UNIT + 17, patch)
        assert out == expected

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_tiny_write(self, scheme):
        system = make_system(scheme)
        write_file(system, "f", [(0, Payload.from_bytes(b"x"))])
        assert read_file(system, "f", 0, 1).to_bytes() == b"x"

    @pytest.mark.parametrize("scheme", ["raid5", "hybrid"])
    def test_exactly_one_group(self, scheme):
        system = make_system(scheme)
        data = Payload.pattern(system.layout.group_span, seed=6)
        write_file(system, "f", [(0, data)])
        assert read_file(system, "f", 0, data.length) == data

    @pytest.mark.parametrize("scheme", ["raid5", "hybrid"])
    def test_write_crossing_boundary_no_full_group(self, scheme):
        system = make_system(scheme)
        span = system.layout.group_span
        data = Payload.pattern(200, seed=7)
        write_file(system, "f", [(span - 100, data)])
        assert read_file(system, "f", span - 100, 200) == data


class TestInvariants:
    @pytest.mark.parametrize("scheme", REDUNDANT)
    def test_scrub_clean_after_mixed_writes(self, scheme):
        system = make_system(scheme)
        span = system.layout.group_span
        chunks = [
            (0, Payload.pattern(3 * span, seed=10)),        # aligned full
            (3 * span + 100, Payload.pattern(500, seed=11)),  # small
            (2 * span - 50, Payload.pattern(span + 100, seed=12)),  # mixed
            (0, Payload.pattern(span // 2, seed=13)),       # head overwrite
        ]
        write_file(system, "f", chunks)
        assert scrub.scrub(system, "f") == []

    def test_raid1_storage_is_double(self):
        system = make_system("raid1")
        data = Payload.pattern(100_000, seed=20)
        write_file(system, "f", [(0, data)])
        report = system.storage_report("f")
        assert report["data"] == 100_000
        assert report["red"] == 100_000

    def test_raid5_storage_overhead_one_over_width(self):
        # 6 servers -> parity adds 1/5 = 20% for full-group writes.
        system = make_system("raid5")
        span = system.layout.group_span
        write_file(system, "f", [(0, Payload.pattern(10 * span, seed=21))])
        report = system.storage_report("f")
        assert report["red"] == pytest.approx(report["data"] / 5, rel=0.01)

    def test_hybrid_full_stripe_matches_raid5_storage(self):
        span_data = None
        reports = {}
        for scheme in ("raid5", "hybrid"):
            system = make_system(scheme)
            span = system.layout.group_span
            span_data = span_data or Payload.pattern(8 * span, seed=22)
            write_file(system, "f", [(0, span_data)])
            reports[scheme] = system.storage_report("f")
        assert reports["hybrid"]["total"] == reports["raid5"]["total"]
        assert reports["hybrid"]["ovf"] == 0

    def test_hybrid_small_writes_are_mirrored_in_overflow(self):
        system = make_system("hybrid")
        write_file(system, "f", [(0, Payload.pattern(1000, seed=23))])
        report = system.storage_report("f")
        assert report["data"] == 0       # nothing written in place
        assert report["ovf"] == 1000
        assert report["ovfm"] == 1000

    def test_hybrid_full_stripe_invalidates_overflow(self):
        system = make_system("hybrid")
        span = system.layout.group_span
        write_file(system, "f", [(0, Payload.pattern(span // 2, seed=24))])
        assert system.overflow_stats("f")["live"] > 0
        write_file(system, "f", [(0, Payload.pattern(span, seed=25))])
        stats = system.overflow_stats("f")
        assert stats["live"] == 0
        assert stats["fragmentation"] > 0  # space is not reclaimed

    def test_hybrid_read_prefers_overflow_over_stale_data(self):
        system = make_system("hybrid")
        span = system.layout.group_span
        base = Payload.pattern(span, seed=26)
        write_file(system, "f", [(0, base)])           # in place via RAID5
        patch = Payload.pattern(777, seed=27)
        write_file(system, "f", [(100, patch)])        # to overflow
        out = read_file(system, "f", 0, span)
        assert out == base.overlay(100, patch)
        # In-place data still holds the OLD bytes (needed for recovery).
        from repro.pvfs.iod import data_file
        lay = system.layout
        piece = lay.pieces(100, 1)[0]
        raw = system.iods[piece.server].fs.files[data_file("f")] \
            .read(piece.local_offset, 1)
        assert raw == base.slice(100, 101)


class TestTraffic:
    def _bytes_sent_by_client(self, scheme, payload_len):
        system = make_system(scheme)
        data = Payload.pattern(payload_len, seed=30)
        write_file(system, "f", [(0, data)])
        return system.metrics.node_tx_bytes["client0"]

    def test_raid1_sends_twice_the_bytes(self):
        span_len = 20 * 5 * UNIT
        raid0 = self._bytes_sent_by_client("raid0", span_len)
        raid1 = self._bytes_sent_by_client("raid1", span_len)
        assert raid1 / raid0 == pytest.approx(2.0, rel=0.05)

    def test_raid5_sends_one_fifth_extra(self):
        span_len = 20 * 5 * UNIT  # aligned full groups at 6 servers
        raid0 = self._bytes_sent_by_client("raid0", span_len)
        raid5 = self._bytes_sent_by_client("raid5", span_len)
        assert raid5 / raid0 == pytest.approx(1.2, rel=0.05)

    def test_hybrid_full_stripes_cost_like_raid5(self):
        span_len = 20 * 5 * UNIT
        raid5 = self._bytes_sent_by_client("raid5", span_len)
        hybrid = self._bytes_sent_by_client("hybrid", span_len)
        assert hybrid == pytest.approx(raid5, rel=0.05)

    def test_hybrid_small_writes_cost_like_raid1(self):
        small = UNIT  # single block: partial stripe
        raid1 = self._bytes_sent_by_client("raid1", small)
        hybrid = self._bytes_sent_by_client("hybrid", small)
        assert hybrid == pytest.approx(raid1, rel=0.05)


class TestConcurrency:
    def test_disjoint_writers_same_stripe_raid5_consistent(self):
        # Five clients write the five distinct blocks of one stripe (the
        # Fig 3 scenario); parity must come out consistent with locking on.
        system = make_system("raid5", clients=5)
        lay = system.layout

        def writer(k):
            c = system.client(k)
            if k == 0:
                yield from c.create("f")
            else:
                yield from c.open("f")
            yield from c.write("f", k * UNIT, Payload.pattern(UNIT, seed=40 + k))

        system.run(writer(0))  # create first
        system.run(*[writer(k) for k in range(1, 5)])
        # Rewrite block 0 concurrently with nothing; then scrub.
        assert scrub.check_parity(system, "f") == []

    @pytest.mark.paritysan_expected
    def test_disjoint_writers_without_locking_corrupt_parity(self):
        # The R5 NO LOCK configuration from Fig 3: same traffic, but
        # concurrent read-modify-writes race on the parity block.
        system = make_system("raid5", clients=5, locking=False)

        def writer(k):
            c = system.client(k)
            yield from c.open("f")
            yield from c.write("f", k * UNIT,
                               Payload.pattern(UNIT, seed=50 + k))

        def creator():
            yield from system.client(0).create("f")

        system.run(creator())
        system.run(*[writer(k) for k in range(5)])
        assert scrub.check_parity(system, "f") != []

    @pytest.mark.parametrize("scheme", REDUNDANT)
    def test_concurrent_disjoint_regions_roundtrip(self, scheme):
        system = make_system(scheme, clients=4)
        region = 3 * UNIT + 77
        payloads = [Payload.pattern(region, seed=60 + k) for k in range(4)]

        def creator():
            yield from system.client(0).create("f")

        def writer(k):
            c = system.client(k)
            yield from c.open("f")
            yield from c.write("f", k * region, payloads[k])

        system.run(creator())
        system.run(*[writer(k) for k in range(4)])
        for k in range(4):
            assert read_file(system, "f", k * region, region) == payloads[k]


class TestDegradedReads:
    @pytest.mark.parametrize("scheme", REDUNDANT)
    def test_single_failure_survivable(self, scheme):
        system = make_system(scheme)
        span = system.layout.group_span
        data = Payload.pattern(4 * span + 333, seed=70)
        write_file(system, "f", [(0, data)])
        system.fail_server(2)
        assert read_file(system, "f", 0, data.length) == data
        assert system.metrics.get("client.degraded_reads") > 0

    def test_raid0_failure_loses_data(self):
        system = make_system("raid0")
        data = Payload.pattern(10 * UNIT, seed=71)
        write_file(system, "f", [(0, data)])
        system.fail_server(1)
        with pytest.raises(DataLoss):
            read_file(system, "f", 0, data.length)

    @pytest.mark.parametrize("failed", range(6))
    def test_hybrid_survives_any_single_failure(self, failed):
        system = make_system("hybrid")
        span = system.layout.group_span
        chunks = [
            (0, Payload.pattern(2 * span, seed=80)),
            (2 * span + 100, Payload.pattern(600, seed=81)),   # overflow
            (span // 3, Payload.pattern(span // 2, seed=82)),  # overwrite->ovf
        ]
        write_file(system, "f", chunks)
        expected = Payload.zeros(3 * span)
        for offset, payload in chunks:
            expected = expected.overlay(offset, payload)
        expected = expected.slice(0, 3 * span)
        system.fail_server(failed)
        assert read_file(system, "f", 0, 3 * span) == expected

    def test_hybrid_failure_does_not_resurrect_invalidated_overflow(self):
        system = make_system("hybrid")
        span = system.layout.group_span
        old = Payload.pattern(span // 2, seed=90)
        write_file(system, "f", [(0, old)])                 # overflow
        new = Payload.pattern(span, seed=91)
        write_file(system, "f", [(0, new)])                 # full stripe
        system.fail_server(0)
        assert read_file(system, "f", 0, span) == new

    def test_raid1_failure_of_every_server(self):
        for failed in range(4):
            system = make_system("raid1", servers=4)
            data = Payload.pattern(8 * UNIT + 99, seed=92)
            write_file(system, "f", [(0, data)])
            system.fail_server(failed)
            assert read_file(system, "f", 0, data.length) == data


@settings(max_examples=15, deadline=None)
@given(
    scheme=st.sampled_from(REDUNDANT),
    writes=st.lists(
        st.tuples(st.integers(0, 6 * 5 * UNIT),
                  st.integers(1, 2 * 5 * UNIT),
                  st.integers(0, 10_000)),
        min_size=1, max_size=6),
)
def test_random_write_sequences_roundtrip_and_scrub(scheme, writes):
    system = make_system(scheme)
    limit = 8 * system.layout.group_span
    reference = Payload.zeros(limit)
    chunks = []
    for offset, length, seed in writes:
        payload = Payload.pattern(min(length, limit - offset), seed=seed)
        if payload.length == 0:
            continue
        chunks.append((offset, payload))
        reference = reference.overlay(offset, payload).slice(0, limit)
    if not chunks:
        return
    write_file(system, "f", chunks)
    assert read_file(system, "f", 0, limit) == reference
    assert scrub.scrub(system, "f") == []
